"""Random-parameter generation and the concurrent emulated-browser driver.

The paper runs every query "using random valid parameters"; the
:class:`ParameterGenerator` draws those parameters from a seeded generator
so runs are reproducible.

:class:`ConcurrentDriver` goes beyond the paper's single-threaded protocol:
it runs N emulated-browser worker threads in a closed loop, each with its
own connection (or EntityManager) and parameter stream, and reports
throughput in interactions per second.  An optional fraction of write
interactions ("buy confirm"-style stock transfers executed inside real
transactions) exercises the engine's concurrent write path: each transfer
either commits atomically or rolls back, so the total stock across the item
table is invariant — a property the concurrency tests assert.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.sqlengine.errors import TransactionConflictError
from repro.tpcw import queries_queryll, queries_sql
from repro.tpcw.population import PopulationScale, customer_uname
from repro.tpcw.schema import TPCW_SUBJECTS

#: How many times a browser retries a stock transfer that lost a
#: write-write conflict before giving up on the run.
CONFLICT_RETRY_LIMIT = 50

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tpcw.database import TpcwDatabase


@dataclass
class ParameterGenerator:
    """Draws random valid parameters for each benchmark query."""

    scale: PopulationScale
    seed: int = 7
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def customer_id(self) -> int:
        """A random valid customer id (getName)."""
        return self._rng.randint(1, self.scale.num_customers)

    def customer_username(self) -> str:
        """A random valid customer user name (getCustomer)."""
        return customer_uname(self._rng.randint(1, self.scale.num_customers))

    def subject(self) -> str:
        """A random valid item subject (doSubjectSearch)."""
        return self._rng.choice(TPCW_SUBJECTS)

    def item_id(self) -> int:
        """A random valid item id (doGetRelated)."""
        return self._rng.randint(1, self.scale.num_items)

    def reset(self) -> None:
        """Restart the sequence (so two variants see identical parameters)."""
        self._rng = random.Random(self.seed)


# ---------------------------------------------------------------------------
# Concurrent emulated-browser driver
# ---------------------------------------------------------------------------

#: Browsing-mix weights for the paper's four read-only interactions.
READ_MIX: tuple[tuple[str, float], ...] = (
    ("getName", 0.30),
    ("getCustomer", 0.30),
    ("doSubjectSearch", 0.25),
    ("doGetRelated", 0.15),
)


@dataclass
class ThroughputResult:
    """Aggregate outcome of one multi-threaded driver run."""

    variant: str
    threads: int
    interactions: int
    writes: int
    rollbacks: int
    elapsed_s: float
    per_thread: list[int]
    #: Write-write conflicts browsers hit (each aborted one transfer
    #: attempt) and the retries that re-ran those attempts to completion.
    conflicts: int = 0
    retries: int = 0
    #: ``in-process`` or ``remote`` (pooled network connections).
    mode: str = "in-process"
    #: Engine statements executed during the run (both modes).
    statements: int = 0
    #: Wire round trips during the run (remote mode only).
    wire_round_trips: int = 0
    #: Replica-aware routing counters (replicated remote mode only):
    #: where read/write interactions landed, read-your-writes waits, and
    #: primary failovers absorbed mid-run.
    reads_on_replicas: int = 0
    reads_on_primary: int = 0
    writes_on_primary: int = 0
    read_your_writes_waits: int = 0
    failovers: int = 0

    @property
    def interactions_per_sec(self) -> float:
        """Completed interactions per wall-clock second across all threads."""
        if self.elapsed_s <= 0:
            return float("inf")
        return self.interactions / self.elapsed_s

    def as_dict(self) -> dict[str, object]:
        """The JSON row shape the throughput benchmarks emit (shared here
        so the BENCH_*.json artifacts cannot drift apart field by field)."""
        return {
            "variant": self.variant,
            "mode": self.mode,
            "threads": self.threads,
            "interactions": self.interactions,
            "writes": self.writes,
            "rollbacks": self.rollbacks,
            "conflicts": self.conflicts,
            "retries": self.retries,
            "elapsed_s": self.elapsed_s,
            "interactions_per_sec": self.interactions_per_sec,
            "statements": self.statements,
            "wire_round_trips": self.wire_round_trips,
            "reads_on_replicas": self.reads_on_replicas,
            "reads_on_primary": self.reads_on_primary,
            "writes_on_primary": self.writes_on_primary,
            "read_your_writes_waits": self.read_your_writes_waits,
            "failovers": self.failovers,
        }


class _SharedBudget:
    """A pool of interactions the browser threads drain together.

    Fixed per-thread quotas make the run's elapsed time the *straggler's*
    finish time — at higher thread counts the scheduler spread between the
    first and last finisher (measured at 13-17% of elapsed on one core)
    reads as a throughput loss that has nothing to do with the engine.
    Claiming interactions from a shared pool keeps every thread busy until
    the work is gone, so the curve measures the engine, not the harness.
    """

    __slots__ = ("_lock", "_remaining")

    def __init__(self, total: int) -> None:
        self._lock = threading.Lock()
        self._remaining = total

    def claim(self) -> bool:
        with self._lock:
            if self._remaining <= 0:
                return False
            self._remaining -= 1
            return True


class _EmulatedBrowser(threading.Thread):
    """One closed-loop worker: its own session state, parameters and mix."""

    def __init__(
        self,
        index: int,
        database: "TpcwDatabase",
        variant: str,
        interactions: int,
        write_fraction: float,
        seed: int,
        barrier: threading.Barrier,
        per_interaction: bool = False,
        budget: _SharedBudget | None = None,
    ) -> None:
        super().__init__(name=f"emulated-browser-{index}", daemon=True)
        self._index = index
        self._database = database
        self._variant = variant
        self._interactions = interactions
        self._write_fraction = write_fraction
        self._seed = seed
        self._barrier = barrier
        # Remote mode: check a pooled connection (or EntityManager session)
        # out per interaction — the middleware request pattern — instead of
        # pinning one connection per browser for the whole run.
        self._per_interaction = per_interaction
        self._budget = budget
        self.completed = 0
        self.writes = 0
        self.rollbacks = 0
        self.conflicts = 0
        self.retries = 0
        self.error: BaseException | None = None

    def run(self) -> None:  # pragma: no cover - exercised via ConcurrentDriver
        try:
            self._run()
        except BaseException as exc:  # propagate to the driver thread
            self.error = exc
            try:
                self._barrier.abort()
            except threading.BrokenBarrierError:
                pass

    def _run(self) -> None:
        parameters = ParameterGenerator(self._database.scale, seed=self._seed)
        rng = random.Random((self._seed * 2654435761) & 0xFFFFFFFF)
        operations = self._build_operations(parameters)
        names = [name for name, _ in READ_MIX]
        weights = [weight for _, weight in READ_MIX]
        # Writes always go through the SQL connection: stock transfers are
        # expressed as relative UPDATEs inside one transaction.  Under MVCC
        # the engine detects write-write conflicts (first updater wins) and
        # the browser retries the losing transfer (an ORM read-modify-write
        # would instead race between its SELECT and its flush).
        write_connection = (
            self._database.connection(auto_commit=False)
            if self._write_fraction > 0 and not self._per_interaction
            else None
        )
        self._barrier.wait()
        remaining = self._interactions
        while True:
            if self._budget is not None:
                if not self._budget.claim():
                    break
            elif remaining <= 0:
                break
            else:
                remaining -= 1
            if self._write_fraction > 0 and rng.random() < self._write_fraction:
                if write_connection is not None:
                    self._transfer_stock(write_connection, parameters, rng)
                else:
                    connection = self._database.connection(auto_commit=False)
                    try:
                        self._transfer_stock(connection, parameters, rng)
                    finally:
                        connection.close()
                self.writes += 1
            else:
                operations[rng.choices(names, weights)[0]]()
            self.completed += 1

    def _build_operations(
        self, parameters: ParameterGenerator
    ) -> dict[str, Callable[[], object]]:
        if self._per_interaction:
            return self._build_per_interaction_operations(parameters)
        if self._variant == "queryll":
            em = self._database.entity_manager()
            return {
                "getName": lambda: queries_queryll.get_name(
                    em, parameters.customer_id()
                ),
                "getCustomer": lambda: queries_queryll.get_customer(
                    em, parameters.customer_username()
                ),
                "doSubjectSearch": lambda: queries_queryll.do_subject_search(
                    em, parameters.subject()
                ),
                "doGetRelated": lambda: queries_queryll.do_get_related(
                    em, parameters.item_id()
                ),
            }
        connection = self._database.connection()
        return {
            "getName": lambda: queries_sql.get_name(
                connection, parameters.customer_id()
            ),
            "getCustomer": lambda: queries_sql.get_customer(
                connection, parameters.customer_username()
            ),
            "doSubjectSearch": lambda: queries_sql.do_subject_search(
                connection, parameters.subject()
            ),
            "doGetRelated": lambda: queries_sql.do_get_related(
                connection, parameters.item_id()
            ),
        }

    def _build_per_interaction_operations(
        self, parameters: ParameterGenerator
    ) -> dict[str, Callable[[], object]]:
        """Ops that borrow a connection/EntityManager per interaction.

        Closing the borrowed object returns its pooled session, so N
        browsers time-share the pool exactly like request handlers in a
        middleware tier share database connections.
        """
        database = self._database
        if self._variant == "queryll":
            def using_entity_manager(function, draw):
                def run():
                    entity_manager = database.entity_manager()
                    try:
                        return function(entity_manager, draw())
                    finally:
                        entity_manager.close()
                return run

            return {
                "getName": using_entity_manager(
                    queries_queryll.get_name, parameters.customer_id
                ),
                "getCustomer": using_entity_manager(
                    queries_queryll.get_customer, parameters.customer_username
                ),
                "doSubjectSearch": using_entity_manager(
                    queries_queryll.do_subject_search, parameters.subject
                ),
                "doGetRelated": using_entity_manager(
                    queries_queryll.do_get_related, parameters.item_id
                ),
            }

        def using_connection(function, draw):
            def run():
                connection = database.connection()
                try:
                    return function(connection, draw())
                finally:
                    connection.close()
            return run

        return {
            "getName": using_connection(queries_sql.get_name, parameters.customer_id),
            "getCustomer": using_connection(
                queries_sql.get_customer, parameters.customer_username
            ),
            "doSubjectSearch": using_connection(
                queries_sql.do_subject_search, parameters.subject
            ),
            "doGetRelated": using_connection(
                queries_sql.do_get_related, parameters.item_id
            ),
        }

    def _transfer_stock(self, connection, parameters, rng) -> None:
        """Move stock between two random items in one real transaction.

        The guarded first UPDATE refuses to drive stock negative; in that
        case the whole interaction rolls back, exercising the undo path.
        Under MVCC two browsers updating the same item race: the first
        updater wins and the loser's transaction aborts with
        :class:`TransactionConflictError` (surfacing identically over the
        network as an ERROR frame), so the browser rolls back and retries
        the whole transfer — the standard snapshot-isolation client
        pattern.  Either way ``SUM(i_stock)`` over the table is preserved.
        """
        source = parameters.item_id()
        destination = parameters.item_id()
        quantity = rng.randint(1, 3)
        for attempt in range(CONFLICT_RETRY_LIMIT + 1):
            try:
                take = connection.prepare_statement(
                    "UPDATE item SET i_stock = i_stock - ? "
                    "WHERE i_id = ? AND i_stock >= ?"
                )
                take.set_int(1, quantity)
                take.set_int(2, source)
                take.set_int(3, quantity)
                if take.execute_update() == 0 or source == destination:
                    connection.rollback()
                    self.rollbacks += 1
                    return
                give = connection.prepare_statement(
                    "UPDATE item SET i_stock = i_stock + ? WHERE i_id = ?"
                )
                give.set_int(1, quantity)
                give.set_int(2, destination)
                give.execute_update()
                connection.commit()
                return
            except TransactionConflictError:
                connection.rollback()
                self.conflicts += 1
                if attempt >= CONFLICT_RETRY_LIMIT:
                    raise
                self.retries += 1
                # Randomised backoff: two browsers whose transfers cross
                # (A→B and B→A) would otherwise abort each other in
                # lockstep on every retry.
                time.sleep(rng.random() * 0.0005 * min(2 ** attempt, 64))


class ConcurrentDriver:
    """A multi-threaded TPC-W driver: N emulated browsers in a closed loop.

    Every worker owns its private connection/EntityManager (one engine
    session each) and a deterministic per-thread parameter stream, so runs
    are reproducible up to thread interleaving.  ``run()`` starts all
    workers behind a barrier, measures wall-clock time across the whole run
    and reports interactions per second.

    With ``remote=True`` the same workload runs over the network: a
    :class:`~repro.server.SqlServer` is spawned around the database's
    engine (or an existing server is reached via ``address=``), and the
    browsers borrow pooled network connections per interaction — the
    middleware request pattern — through a client-side
    :class:`~repro.netclient.ConnectionPool` of ``pool_size`` connections.
    The result additionally reports the wire round trips the run cost.
    """

    def __init__(
        self,
        database: "TpcwDatabase",
        variant: str = "handwritten",
        threads: int = 4,
        interactions_per_thread: int = 100,
        write_fraction: float = 0.0,
        seed: int = 7,
        remote: bool = False,
        address: tuple[str, int] | None = None,
        pool_size: int | None = None,
        batch_rows: int | None = None,
        shared_workload: bool = False,
        replicas: list[tuple[str, int]] | None = None,
        read_your_writes: bool = True,
    ) -> None:
        if variant not in ("handwritten", "queryll"):
            raise ValueError(f"unknown driver variant {variant!r}")
        self.database = database
        self.variant = variant
        self.threads = threads
        self.interactions_per_thread = interactions_per_thread
        self.write_fraction = write_fraction
        self.seed = seed
        #: Remote mode: drive the browsers through pooled network
        #: connections against ``address``, or against a server spawned
        #: around this database's engine for the duration of the run.
        self.remote = remote or address is not None
        self.address = address
        self.pool_size = pool_size
        self.batch_rows = batch_rows
        #: Replicated mode: route the browsing mix across these read
        #: replicas through a :class:`~repro.netclient.ReplicatedConnectionPool`
        #: (writes stay on ``address``); with ``read_your_writes`` each
        #: replica read first waits out the replication lag behind the
        #: run's last acknowledged write.
        self.replicas = list(replicas) if replicas else []
        self.read_your_writes = read_your_writes
        if self.replicas and not self.remote:
            raise ValueError("replicas require remote mode (an address)")
        #: Drain ``threads * interactions_per_thread`` interactions from a
        #: shared pool instead of fixed per-thread quotas (no straggler
        #: tail; the throughput benchmarks use this — see
        #: :class:`_SharedBudget`).  The total work is identical.
        self.shared_workload = shared_workload

    def run(self) -> ThroughputResult:
        """Execute the workload and aggregate per-thread counters."""
        if not self.remote:
            return self._run_against(self.database, per_interaction=False)
        return self._run_remote()

    def _run_remote(self) -> ThroughputResult:
        """Spawn (or reach) a server and run the workload over the wire."""
        from repro.netclient import ConnectionPool, ReplicatedConnectionPool
        from repro.server import SqlServer
        from repro.tpcw.database import connect_remote

        pool_size = self.pool_size or max(2, self.threads)
        server: SqlServer | None = None
        address = self.address
        if address is None:
            server = SqlServer(
                database=self.database.database,
                max_connections=pool_size + 8,
            ).start()
            address = server.address
        if self.replicas:
            pool = ReplicatedConnectionPool(
                address,
                self.replicas,
                read_your_writes=self.read_your_writes,
                min_size=min(self.threads, pool_size),
                max_size=pool_size,
                checkout_timeout=30.0,
            )
        else:
            pool = ConnectionPool(
                address,
                min_size=min(self.threads, pool_size),
                max_size=pool_size,
                checkout_timeout=30.0,
            )
        try:
            with pool:
                handle = connect_remote(
                    self.database, address, pool=pool, batch_rows=self.batch_rows
                )
                external = server is None
                if external:
                    # The local engine is not the one executing: take the
                    # statement delta from the remote server's counters.
                    statements_before = handle.server_stats()["engine"][
                        "statements_executed"
                    ]
                result = self._run_against(handle, per_interaction=True)
                if external:
                    result.statements = (
                        handle.server_stats()["engine"]["statements_executed"]
                        - statements_before
                    )
                result.mode = "replicated" if self.replicas else "remote"
                result.wire_round_trips = pool.round_trips()
                if self.replicas:
                    routing = pool.stats()
                    result.reads_on_replicas = routing["reads_on_replicas"]
                    result.reads_on_primary = routing["reads_on_primary"]
                    result.writes_on_primary = routing["writes_on_primary"]
                    result.read_your_writes_waits = routing[
                        "read_your_writes_waits"
                    ]
                    result.failovers = routing["failovers"]
                return result
        finally:
            if server is not None:
                server.shutdown()

    def _run_against(self, database, per_interaction: bool) -> ThroughputResult:
        engine = self.database.database
        statements_before = engine.statements_executed
        barrier = threading.Barrier(self.threads + 1)
        budget = (
            _SharedBudget(self.threads * self.interactions_per_thread)
            if self.shared_workload
            else None
        )
        workers = [
            _EmulatedBrowser(
                index=index,
                database=database,
                variant=self.variant,
                interactions=self.interactions_per_thread,
                write_fraction=self.write_fraction,
                seed=self.seed + 101 * index,
                barrier=barrier,
                per_interaction=per_interaction,
                budget=budget,
            )
            for index in range(self.threads)
        ]
        for worker in workers:
            worker.start()
        try:
            barrier.wait()
        except threading.BrokenBarrierError:
            pass  # a worker failed during setup; its error is re-raised below
        start = time.perf_counter()
        for worker in workers:
            worker.join()
        elapsed = time.perf_counter() - start
        errors = [worker.error for worker in workers if worker.error is not None]
        if errors:
            # A failing worker aborts the barrier, which makes the other
            # workers record BrokenBarrierError; surface the root cause.
            root_causes = [
                error
                for error in errors
                if not isinstance(error, threading.BrokenBarrierError)
            ]
            raise (root_causes or errors)[0]
        return ThroughputResult(
            variant=self.variant,
            threads=self.threads,
            interactions=sum(worker.completed for worker in workers),
            writes=sum(worker.writes for worker in workers),
            rollbacks=sum(worker.rollbacks for worker in workers),
            conflicts=sum(worker.conflicts for worker in workers),
            retries=sum(worker.retries for worker in workers),
            elapsed_s=elapsed,
            per_thread=[worker.completed for worker in workers],
            statements=engine.statements_executed - statements_before,
        )
