"""TPC-W-derived microbenchmark (the paper's evaluation workload).

The paper takes the Rice University TPC-W implementation, keeps four
representative read-only queries (getName, getCustomer, doSubjectSearch,
doGetRelated), populates a PostgreSQL database with ``num_items = 10000`` and
``num_ebs = 100``, and measures the time to run each query 2000 times with
random valid parameters after a 100-execution warm-up.

This package provides the same pieces against the in-memory SQL engine: the
schema and ORM mapping, a deterministic population generator parameterised by
the same scale knobs, the hand-written SQL versions of the four queries (plus
the paper's "with extra processing" and "modified query" variants), the
Queryll-style loop versions, and the measurement harness.
"""

from __future__ import annotations

from repro.tpcw.schema import TPCW_SUBJECTS, tpcw_mapping
from repro.tpcw.population import PopulationScale, populate
from repro.tpcw.database import TpcwDatabase, build_database
from repro.tpcw.workload import ConcurrentDriver, ParameterGenerator, ThroughputResult
from repro.tpcw.harness import BenchmarkConfig, BenchmarkResult, TpcwBenchmark

__all__ = [
    "BenchmarkConfig",
    "BenchmarkResult",
    "ConcurrentDriver",
    "ParameterGenerator",
    "PopulationScale",
    "TPCW_SUBJECTS",
    "ThroughputResult",
    "TpcwBenchmark",
    "TpcwDatabase",
    "build_database",
    "populate",
    "tpcw_mapping",
]
