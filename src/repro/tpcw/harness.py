"""The benchmark harness reproducing the paper's Table 4 and Table 5.

For each of the four queries the harness measures:

* the Queryll version (loop rewritten to SQL through the bytecode pipeline),
* the hand-written JDBC-style version,
* where the paper reports them, the extra variants ("with extra processing"
  for getName, "with modified query" for doSubjectSearch),
* and, optionally, the *unrewritten* Queryll loop (full table scan through
  the ORM) to show what the rewrite buys — the paper does not time this
  configuration because it is obviously impractical, and it is therefore off
  by default here too.

Scale and repetition counts default to values that finish quickly on the
in-memory engine; ``BenchmarkConfig.paper()`` selects the paper's parameters
(10 000 items, 100 EBs, 100 warm-up + 2000 measured executions).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.bench.reporting import format_table
from repro.bench.timing import Measurement, measure
from repro.tpcw import queries_queryll, queries_sql
from repro.tpcw.database import TpcwDatabase, build_database
from repro.tpcw.population import PopulationScale
from repro.tpcw.workload import ConcurrentDriver, ParameterGenerator, ThroughputResult


@dataclass
class BenchmarkConfig:
    """Knobs of the benchmark protocol."""

    scale: PopulationScale = field(default_factory=PopulationScale)
    warmup_executions: int = 20
    measured_executions: int = 200
    runs: int = 3
    discard_runs: int = 1
    include_unrewritten: bool = False

    @classmethod
    def paper(cls) -> "BenchmarkConfig":
        """The paper's configuration (slow on the in-memory engine)."""
        return cls(
            scale=PopulationScale.paper(),
            warmup_executions=100,
            measured_executions=2000,
            runs=3,
            discard_runs=1,
        )

    @classmethod
    def quick(cls) -> "BenchmarkConfig":
        """A fast configuration for CI and pytest-benchmark runs."""
        return cls(
            scale=PopulationScale(num_items=300, num_ebs=1, customers_per_eb=600),
            warmup_executions=5,
            measured_executions=30,
            runs=2,
            discard_runs=0,
        )

    @classmethod
    def from_environment(cls) -> "BenchmarkConfig":
        """``REPRO_TPCW_PROFILE`` selects quick (default), default or paper."""
        profile = os.environ.get("REPRO_TPCW_PROFILE", "quick").lower()
        if profile == "paper":
            return cls.paper()
        if profile == "default":
            return cls()
        return cls.quick()


@dataclass
class BenchmarkResult:
    """Measurements for one query, in the paper's Table 4 layout."""

    query: str
    queryll: Measurement
    handwritten: Measurement
    extra_variant: Optional[Measurement] = None
    extra_variant_label: str = ""
    unrewritten: Optional[Measurement] = None

    @property
    def difference_ms(self) -> float:
        """Queryll minus hand-written (positive = Queryll slower)."""
        return self.queryll.mean_ms - self.handwritten.mean_ms

    @property
    def ratio(self) -> float:
        """Queryll time divided by hand-written time."""
        if self.handwritten.mean_ms == 0:
            return float("inf")
        return self.queryll.mean_ms / self.handwritten.mean_ms


class TpcwBenchmark:
    """Builds the database once and measures every Table 4 configuration."""

    def __init__(
        self,
        config: Optional[BenchmarkConfig] = None,
        database: Optional[TpcwDatabase] = None,
    ) -> None:
        self.config = config or BenchmarkConfig.from_environment()
        self.database = database or build_database(self.config.scale)
        self._connection = self.database.connection()
        self._entity_manager = self.database.entity_manager()
        self._parameters = ParameterGenerator(self.config.scale)

    # -- single-variant helpers ----------------------------------------------------------

    def measure_variant(self, name: str, operation: Callable[[], None]) -> Measurement:
        """Measure one query variant with the configured protocol."""
        self._parameters.reset()
        return measure(
            name,
            operation,
            executions_per_run=self.config.measured_executions,
            warmup_executions=self.config.warmup_executions,
            runs=self.config.runs,
            discard_runs=self.config.discard_runs,
        )

    # -- per-query operations --------------------------------------------------------------

    def run_get_name_queryll(self) -> None:
        """One Queryll getName execution with random parameters."""
        queries_queryll.get_name(self._entity_manager, self._parameters.customer_id())

    def run_get_name_handwritten(self) -> None:
        """One hand-written getName execution."""
        queries_sql.get_name(self._connection, self._parameters.customer_id())

    def run_get_name_extra(self) -> None:
        """Hand-written getName with generated-code-style overheads."""
        queries_sql.get_name_with_extra_processing(
            self._connection, self._parameters.customer_id()
        )

    def run_get_name_unrewritten(self) -> None:
        """The getName loop executed without rewriting (full scan)."""
        queries_queryll.get_name_loop.original(
            self._entity_manager, self._parameters.customer_id()
        ).to_list()

    def run_get_customer_queryll(self) -> None:
        """One Queryll getCustomer execution."""
        queries_queryll.get_customer(
            self._entity_manager, self._parameters.customer_username()
        )

    def run_get_customer_handwritten(self) -> None:
        """One hand-written getCustomer execution."""
        queries_sql.get_customer(self._connection, self._parameters.customer_username())

    def run_do_subject_search_queryll(self) -> None:
        """One Queryll doSubjectSearch execution."""
        queries_queryll.do_subject_search(self._entity_manager, self._parameters.subject())

    def run_do_subject_search_handwritten(self) -> None:
        """One hand-written doSubjectSearch execution."""
        queries_sql.do_subject_search(self._connection, self._parameters.subject())

    def run_do_subject_search_modified(self) -> None:
        """Hand-written doSubjectSearch with the generated column order."""
        queries_sql.do_subject_search_modified(self._connection, self._parameters.subject())

    def run_do_get_related_queryll(self) -> None:
        """One Queryll doGetRelated execution."""
        queries_queryll.do_get_related(self._entity_manager, self._parameters.item_id())

    def run_do_get_related_handwritten(self) -> None:
        """One hand-written doGetRelated execution."""
        queries_sql.do_get_related(self._connection, self._parameters.item_id())

    # -- Table 4 -------------------------------------------------------------------------------

    def run_table4(self) -> list[BenchmarkResult]:
        """Measure every Table 4 row."""
        results = [
            BenchmarkResult(
                query="getName",
                queryll=self.measure_variant("getName/queryll", self.run_get_name_queryll),
                handwritten=self.measure_variant(
                    "getName/hand-written", self.run_get_name_handwritten
                ),
                extra_variant=self.measure_variant(
                    "getName/with extra processing", self.run_get_name_extra
                ),
                extra_variant_label="with extra processing",
            ),
            BenchmarkResult(
                query="getCustomer",
                queryll=self.measure_variant(
                    "getCustomer/queryll", self.run_get_customer_queryll
                ),
                handwritten=self.measure_variant(
                    "getCustomer/hand-written", self.run_get_customer_handwritten
                ),
            ),
            BenchmarkResult(
                query="doSubjectSearch",
                queryll=self.measure_variant(
                    "doSubjectSearch/queryll", self.run_do_subject_search_queryll
                ),
                handwritten=self.measure_variant(
                    "doSubjectSearch/hand-written", self.run_do_subject_search_handwritten
                ),
                extra_variant=self.measure_variant(
                    "doSubjectSearch/with modified query", self.run_do_subject_search_modified
                ),
                extra_variant_label="with modified query",
            ),
            BenchmarkResult(
                query="doGetRelated",
                queryll=self.measure_variant(
                    "doGetRelated/queryll", self.run_do_get_related_queryll
                ),
                handwritten=self.measure_variant(
                    "doGetRelated/hand-written", self.run_do_get_related_handwritten
                ),
            ),
        ]
        if self.config.include_unrewritten:
            results[0].unrewritten = self.measure_variant(
                "getName/unrewritten loop", self.run_get_name_unrewritten
            )
        return results

    def format_table4(self, results: list[BenchmarkResult]) -> str:
        """Render the results in the paper's Table 4 layout."""
        headers = [
            "Query",
            "Queryll (ms)",
            "Std Dev",
            "Hand-Written SQL (ms)",
            "Std Dev",
            "Difference (ms)",
        ]
        rows: list[list[object]] = []
        for result in results:
            rows.append(
                [
                    result.query,
                    result.queryll.mean_ms,
                    result.queryll.stdev_ms,
                    result.handwritten.mean_ms,
                    result.handwritten.stdev_ms,
                    result.difference_ms,
                ]
            )
            if result.extra_variant is not None:
                rows.append(
                    [
                        f"  {result.extra_variant_label}",
                        "",
                        "",
                        result.extra_variant.mean_ms,
                        result.extra_variant.stdev_ms,
                        result.queryll.mean_ms - result.extra_variant.mean_ms,
                    ]
                )
            if result.unrewritten is not None:
                rows.append(
                    [
                        "  unrewritten loop",
                        result.unrewritten.mean_ms,
                        result.unrewritten.stdev_ms,
                        "",
                        "",
                        "",
                    ]
                )
        title = (
            "Table 4: benchmark results "
            f"(items={self.config.scale.num_items}, "
            f"customers={self.config.scale.num_customers}, "
            f"{self.config.measured_executions} executions per run)"
        )
        return format_table(headers, rows, title=title)

    # -- plan-cache split ----------------------------------------------------------------------

    #: The four hand-written statements, with their parameter generators.
    PLAN_CACHE_QUERIES: tuple[tuple[str, str, str], ...] = (
        ("getName", queries_sql.GET_NAME_SQL, "customer_id"),
        ("getCustomer", queries_sql.GET_CUSTOMER_SQL, "customer_username"),
        ("doSubjectSearch", queries_sql.DO_SUBJECT_SEARCH_SQL, "subject"),
        ("doGetRelated", queries_sql.DO_GET_RELATED_SQL, "item_id"),
    )

    def run_plan_cache_split(
        self, executions: Optional[int] = None
    ) -> dict[str, dict[str, float]]:
        """Per-query latency split: parse+plan vs execute, cached vs not.

        For each of the paper's four hand-written statements this measures

        * ``plan_ms`` — parse + cost-based planning alone
          (:meth:`Database.plan`, which bypasses the statement cache),
        * ``execute_warm_ms`` — a full round trip with the shared plan
          cache hot (what repeated prepared-statement executions pay),
        * ``execute_cold_ms`` — a full round trip with the statement cache
          disabled, i.e. paying parse+plan on every execution.

        All values are mean milliseconds per execution.
        """
        executions = executions or self.config.measured_executions
        database = self.database.database
        session = database.session()
        results: dict[str, dict[str, float]] = {}
        for name, sql, parameter in self.PLAN_CACHE_QUERIES:
            self._parameters.reset()
            draw = getattr(self._parameters, parameter)
            params = [(draw(),) for _ in range(executions)]
            database.plan(sql)  # warm up code paths
            started = time.perf_counter()
            for _ in range(executions):
                database.plan(sql)
            plan_s = time.perf_counter() - started
            session.execute(sql, params[0])  # populate the cache
            started = time.perf_counter()
            for values in params:
                session.execute(sql, values)
            warm_s = time.perf_counter() - started
            cache_size = database.statement_cache_info()["size"]
            database.set_statement_cache_size(0)
            try:
                started = time.perf_counter()
                for values in params:
                    session.execute(sql, values)
                cold_s = time.perf_counter() - started
            finally:
                database.set_statement_cache_size(cache_size)
            results[name] = {
                "plan_ms": plan_s * 1000.0 / executions,
                "execute_warm_ms": warm_s * 1000.0 / executions,
                "execute_cold_ms": cold_s * 1000.0 / executions,
            }
        return results

    # -- projection split ----------------------------------------------------------------------

    #: Queryll query -> (loop function name, parameter generator method).
    PROJECTION_QUERIES: tuple[tuple[str, str], ...] = (
        ("getName", "customer_id"),
        ("getCustomer", "customer_username"),
        ("doSubjectSearch", "subject"),
        ("doGetRelated", "item_id"),
    )

    def run_projection_split(self) -> dict[str, dict[str, object]]:
        """Per-query row-width split: optimized vs unoptimized projection.

        For each of the paper's four Queryll queries this generates the SQL
        twice — through the full logical optimizer and with
        ``OptimizerOptions(optimize=False)`` — executes both against the
        populated database and reports, per variant, the SELECT-list width
        (``columns``), the average row payload in bytes (``bytes_per_row``,
        UTF-8 length of every value) and the row count.  This makes the
        projection-pruning win machine-readable alongside the throughput
        numbers.
        """
        from repro.core.optimizer import OptimizerOptions
        from repro.core.pipeline import QueryllPipeline
        from repro.pyfrontend.disassembler import lower_function

        mapping = self.database.orm.mapping
        session = self.database.database.session()
        pipelines = {
            "optimized": QueryllPipeline(mapping),
            "unoptimized": QueryllPipeline(
                mapping, optimizer_options=OptimizerOptions(optimize=False)
            ),
        }
        report: dict[str, dict[str, object]] = {}
        for name, parameter in self.PROJECTION_QUERIES:
            function = queries_queryll.QUERY_FUNCTIONS[name]
            method = lower_function(function.original)
            self._parameters.reset()
            value = getattr(self._parameters, parameter)()
            entry: dict[str, object] = {}
            for variant, pipeline in pipelines.items():
                generated = pipeline.analyze_method(method).queries[0].generated
                params = tuple(value for _ in generated.parameter_sources)
                result = session.execute(generated.sql, params)
                payload = sum(
                    len(str(cell).encode("utf-8"))
                    for row in result.rows
                    for cell in row
                )
                rows = len(result.rows)
                entry[variant] = {
                    "columns": len(generated.select_items),
                    "rows": rows,
                    "bytes_per_row": payload / rows if rows else 0.0,
                    "sql": generated.sql,
                }
            optimized = entry["optimized"]
            unoptimized = entry["unoptimized"]
            entry["width_ratio"] = (
                optimized["columns"] / unoptimized["columns"]  # type: ignore[operator]
                if unoptimized["columns"] else 1.0
            )
            report[name] = entry
        return report

    # -- concurrent throughput -----------------------------------------------------------------

    def run_throughput(
        self,
        threads: int = 4,
        interactions_per_thread: Optional[int] = None,
        write_fraction: float = 0.0,
        variants: tuple[str, ...] = ("queryll", "handwritten"),
    ) -> list[ThroughputResult]:
        """Run the multi-threaded emulated-browser driver per variant.

        This goes beyond the paper's single-threaded protocol: ``threads``
        workers issue the paper's interactions concurrently (optionally with
        a fraction of transactional write interactions) and the result
        reports throughput in interactions/sec alongside the latency numbers
        of :meth:`run_table4`.
        """
        per_thread = interactions_per_thread
        if per_thread is None:
            per_thread = max(1, self.config.measured_executions // max(1, threads))
        results = []
        for variant in variants:
            driver = ConcurrentDriver(
                self.database,
                variant=variant,
                threads=threads,
                interactions_per_thread=per_thread,
                write_fraction=write_fraction,
            )
            results.append(driver.run())
        return results

    def format_throughput(self, results: list[ThroughputResult]) -> str:
        """Render throughput results as a table."""
        headers = [
            "Variant",
            "Threads",
            "Interactions",
            "Writes",
            "Rollbacks",
            "Elapsed (s)",
            "Interactions/s",
        ]
        rows: list[list[object]] = [
            [
                result.variant,
                result.threads,
                result.interactions,
                result.writes,
                result.rollbacks,
                result.elapsed_s,
                result.interactions_per_sec,
            ]
            for result in results
        ]
        title = (
            "Concurrent TPC-W throughput "
            f"(items={self.config.scale.num_items}, "
            f"customers={self.config.scale.num_customers})"
        )
        return format_table(headers, rows, title=title)

    # -- Table 5 ----------------------------------------------------------------------------------

    def generated_sql(self) -> dict[str, str]:
        """SQL generated by Queryll for each query (the paper's Table 5)."""
        mapping = self.database.orm.mapping
        generated: dict[str, str] = {}
        for name, function in queries_queryll.QUERY_FUNCTIONS.items():
            sql = function.generated_sql(mapping)
            generated[name] = sql if sql is not None else "(not rewritten)"
        return generated

    def handwritten_sql(self) -> dict[str, str]:
        """The hand-written SQL of each query (the paper's Table 3)."""
        return {
            "getName": queries_sql.GET_NAME_SQL,
            "getCustomer": queries_sql.GET_CUSTOMER_SQL,
            "doSubjectSearch": queries_sql.DO_SUBJECT_SEARCH_SQL,
            "doGetRelated": queries_sql.DO_GET_RELATED_SQL,
        }

    def format_table5(self) -> str:
        """Render the generated SQL next to the hand-written SQL."""
        lines = ["Table 5: SQL generated by Queryll (vs. hand-written Table 3)"]
        handwritten = self.handwritten_sql()
        for name, sql in self.generated_sql().items():
            lines.append("")
            lines.append(f"{name}")
            lines.append(f"  hand-written: {handwritten[name]}")
            lines.append(f"  generated:    {sql}")
        return "\n".join(lines)
