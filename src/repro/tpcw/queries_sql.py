"""Hand-written SQL versions of the benchmark queries (paper, Table 3).

These are transliterations of the Rice TPC-W JDBC code: prepared statements
with ``?`` parameters, results read out column by column.  Two extra variants
reproduce the paper's follow-up measurements:

* :func:`get_name_with_extra_processing` — the hand-written getName query
  burdened with the same inefficiencies as generated code (columns read by
  name, results copied into intermediate structures, a separate COMMIT round
  trip), which in the paper nearly erases the gap to Queryll;
* :func:`do_subject_search_modified` — the hand-written doSubjectSearch with
  its select list reordered/aliased like the generated query, which in the
  paper makes the hand-written version faster again.
"""

from __future__ import annotations

from repro.dbapi.connection import Connection

GET_NAME_SQL = "SELECT c_fname, c_lname FROM customer WHERE c_id = ?"

GET_CUSTOMER_SQL = (
    "SELECT customer.c_id, customer.c_uname, customer.c_fname, customer.c_lname, "
    "customer.c_phone, customer.c_email, customer.c_since, customer.c_discount, "
    "customer.c_balance, customer.c_ytd_pmt, "
    "address.addr_id, address.addr_street1, address.addr_street2, address.addr_city, "
    "address.addr_state, address.addr_zip, country.co_id, country.co_name "
    "FROM customer, address, country "
    "WHERE customer.c_addr_id = address.addr_id "
    "AND address.addr_co_id = country.co_id "
    "AND customer.c_uname = ?"
)

DO_SUBJECT_SEARCH_SQL = (
    "SELECT i.i_id, i.i_title, a.a_fname, a.a_lname "
    "FROM item i, author a "
    "WHERE i.i_subject = ? AND i.i_a_id = a.a_id "
    "ORDER BY i.i_title "
    "LIMIT 0, 50"
)

#: The paper's "modified query": same query with the column order/aliases of
#: the generated one.
DO_SUBJECT_SEARCH_MODIFIED_SQL = (
    "SELECT (i.i_title) AS COL1, (a.a_fname) AS COL2, (a.a_lname) AS COL3, "
    "(i.i_id) AS COL0 "
    "FROM item i, author a "
    "WHERE i.i_subject = ? AND i.i_a_id = a.a_id "
    "ORDER BY (i.i_title) "
    "LIMIT 0, 50"
)

DO_GET_RELATED_SQL = (
    "SELECT J.i_id, J.i_thumbnail "
    "FROM item I, item J "
    "WHERE (I.i_related1 = J.i_id OR I.i_related2 = J.i_id OR "
    "I.i_related3 = J.i_id OR I.i_related4 = J.i_id OR I.i_related5 = J.i_id) "
    "AND I.i_id = ?"
)


def get_name(connection: Connection, customer_id: int) -> tuple[str, str]:
    """Find a customer's first and last name by primary key."""
    statement = connection.prepare_statement(GET_NAME_SQL)
    statement.set_int(1, customer_id)
    results = statement.execute_query()
    if not results.next():
        raise LookupError(f"no customer with id {customer_id}")
    return results.get_string(1), results.get_string(2)  # type: ignore[return-value]


def get_name_with_extra_processing(
    connection: Connection, customer_id: int
) -> tuple[str, str]:
    """getName with the same overheads as generated code (paper Section 5)."""
    statement = connection.prepare_statement(GET_NAME_SQL)
    statement.set_int(1, customer_id)
    results = statement.execute_query()
    rows: list[dict[str, object]] = []
    while results.next():
        # Columns read by name rather than index, copied into an
        # intermediate data structure.
        rows.append(
            {
                "c_fname": results.get_string("c_fname"),
                "c_lname": results.get_string("c_lname"),
            }
        )
    # A separate commit round trip, as the generated code issues.
    connection.commit()
    if not rows:
        raise LookupError(f"no customer with id {customer_id}")
    first = rows[0]
    return str(first["c_fname"]), str(first["c_lname"])


def get_customer(connection: Connection, username: str) -> dict[str, object]:
    """Find a customer (joined to address and country) by user name."""
    statement = connection.prepare_statement(GET_CUSTOMER_SQL)
    statement.set_string(1, username)
    results = statement.execute_query()
    if not results.next():
        raise LookupError(f"no customer with user name {username!r}")
    return {
        "c_id": results.get_int("c_id"),
        "c_uname": results.get_string("c_uname"),
        "c_fname": results.get_string("c_fname"),
        "c_lname": results.get_string("c_lname"),
        "addr_street1": results.get_string("addr_street1"),
        "addr_city": results.get_string("addr_city"),
        "co_name": results.get_string("co_name"),
    }


def do_subject_search(connection: Connection, subject: str) -> list[tuple[int, str, str, str]]:
    """The 50 first items of a subject, ordered by title, with author names."""
    statement = connection.prepare_statement(DO_SUBJECT_SEARCH_SQL)
    statement.set_string(1, subject)
    results = statement.execute_query()
    rows: list[tuple[int, str, str, str]] = []
    while results.next():
        rows.append(
            (
                results.get_int(1),
                results.get_string(2) or "",
                results.get_string(3) or "",
                results.get_string(4) or "",
            )
        )
    return rows


def do_subject_search_modified(
    connection: Connection, subject: str
) -> list[tuple[int, str, str, str]]:
    """doSubjectSearch with the generated query's column order and aliases."""
    statement = connection.prepare_statement(DO_SUBJECT_SEARCH_MODIFIED_SQL)
    statement.set_string(1, subject)
    results = statement.execute_query()
    rows: list[tuple[int, str, str, str]] = []
    while results.next():
        rows.append(
            (
                results.get_int("col0"),
                results.get_string("col1") or "",
                results.get_string("col2") or "",
                results.get_string("col3") or "",
            )
        )
    return rows


def do_get_related(connection: Connection, item_id: int) -> list[tuple[int, str]]:
    """The five items related to an item (id and thumbnail)."""
    statement = connection.prepare_statement(DO_GET_RELATED_SQL)
    statement.set_int(1, item_id)
    results = statement.execute_query()
    rows: list[tuple[int, str]] = []
    while results.next():
        rows.append((results.get_int(1), results.get_string(2) or ""))
    return rows
