"""Queryll-style versions of the benchmark queries.

Each query is a plain Python for-loop over ``em.all('Entity')`` decorated
with :func:`~repro.pyfrontend.decorator.query`; the decorator rewrites the
loop into the generated SQL shown by the paper's Table 5 (same selection,
same joins, including the five-way self-join of doGetRelated).  The
``*_unrewritten`` helpers run the identical code without rewriting, which the
tests use to check semantic equivalence and the benchmarks use to show why
rewriting matters.
"""

from __future__ import annotations

from repro.orm.entity_manager import EntityManager
from repro.orm.pair import Pair
from repro.orm.queryset import QuerySet
from repro.orm.sorters import FieldSorter
from repro.pyfrontend.decorator import query


# -- getName -------------------------------------------------------------------------------


@query
def get_name_loop(em, customer_id):
    """Find a customer's first and last name by primary key (paper: getName)."""
    result = QuerySet()
    for c in em.all('Customer'):
        if c.customerId == customer_id:
            result.add((c.firstName, c.lastName))
    return result


def get_name(entity_manager: EntityManager, customer_id: int) -> tuple[str, str]:
    """Queryll getName: returns (first name, last name)."""
    rows = get_name_loop(entity_manager, customer_id).to_list()
    if not rows:
        raise LookupError(f"no customer with id {customer_id}")
    first_name, last_name = rows[0]
    return str(first_name), str(last_name)


# -- getCustomer ---------------------------------------------------------------------------


@query
def get_customer_loop(em, username):
    """Customer joined to its address and country (paper: getCustomer)."""
    result = QuerySet()
    for c in em.all('Customer'):
        if c.uname == username:
            result.add(Pair(c, Pair(c.address, c.address.country)))
    return result


def get_customer(entity_manager: EntityManager, username: str) -> dict[str, object]:
    """Queryll getCustomer: the same fields the hand-written version reads."""
    rows = get_customer_loop(entity_manager, username).to_list()
    if not rows:
        raise LookupError(f"no customer with user name {username!r}")
    pair = rows[0]
    customer = pair.getFirst()
    address = pair.getSecond().getFirst()
    country = pair.getSecond().getSecond()
    return {
        "c_id": customer.customerId,
        "c_uname": customer.uname,
        "c_fname": customer.firstName,
        "c_lname": customer.lastName,
        "addr_street1": address.street1,
        "addr_city": address.city,
        "co_name": country.name,
    }


# -- doSubjectSearch -----------------------------------------------------------------------


@query
def do_subject_search_loop(em, subject):
    """Items of a subject joined to their author (paper: doSubjectSearch)."""
    result = QuerySet()
    for i in em.all('Item'):
        if i.subject == subject:
            result.add(Pair(i, i.author))
    return result


def do_subject_search(
    entity_manager: EntityManager, subject: str
) -> list[tuple[int, str, str, str]]:
    """Queryll doSubjectSearch: first 50 items of a subject, by title.

    The ordering and limit are expressed with the paper's QuerySet operations
    (Fig. 8): a sorter over the pending QuerySet plus ``firstN(50)``; both
    fold into the generated SQL before it runs.
    """
    pairs = do_subject_search_loop(entity_manager, subject)
    pairs = pairs.sorted_by(FieldSorter("first.title"))
    pairs = pairs.first_n(50)
    return [
        (
            pair.getFirst().itemId,
            pair.getFirst().title,
            pair.getSecond().firstName,
            pair.getSecond().lastName,
        )
        for pair in pairs
    ]


# -- doGetRelated --------------------------------------------------------------------------


@query
def do_get_related_loop(em, item_id):
    """The five items related to an item (paper: doGetRelated).

    Navigating the five ``related`` references forces Queryll to join the
    item table to itself five times — the behaviour the paper calls out as
    the reason the generated query is slower than the hand-written OR-join.
    """
    result = QuerySet()
    for i in em.all('Item'):
        if i.itemId == item_id:
            result.add((i.related1, i.related2, i.related3, i.related4, i.related5))
    return result


def do_get_related(entity_manager: EntityManager, item_id: int) -> list[tuple[int, str]]:
    """Queryll doGetRelated: (id, thumbnail) of the five related items."""
    rows = do_get_related_loop(entity_manager, item_id).to_list()
    related: list[tuple[int, str]] = []
    for row in rows:
        for item in row:
            if item is not None:
                related.append((item.itemId, item.thumbnail))
    return related


#: The decorated loop functions, for benchmarks that want the SQL text.
QUERY_FUNCTIONS = {
    "getName": get_name_loop,
    "getCustomer": get_customer_loop,
    "doSubjectSearch": do_subject_search_loop,
    "doGetRelated": do_get_related_loop,
}
