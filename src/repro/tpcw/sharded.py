"""A sharded TPC-W cluster: the benchmark schema hash-partitioned.

Partitioning follows the workload's access pattern: the two large,
write-hot tables are sharded on their primary keys (``item`` by ``i_id``,
``customer`` by ``c_id``) while the small reference tables (``address``,
``country``, ``author``) are global — every shard holds a full copy, so
shard-local joins like *item ⋈ author* never cross the network.

:func:`build_sharded_cluster` assembles the whole topology in-process:

* one stock :class:`~repro.server.SqlServer` per shard (optionally
  durable, optionally trailed by WAL-shipping replicas behind a
  :class:`~repro.netclient.pool.ReplicatedConnectionPool`),
* a :class:`~repro.sharding.coordinator.ShardedDatabase` routing over
  per-shard pools, itself exposed through another stock ``SqlServer`` —
  the wire protocol is unchanged end to end,
* a single-node :class:`~repro.tpcw.database.TpcwDatabase` with the
  *same* population, kept as the byte-identical oracle for the suite.

Rows are bulk-loaded into the shard engines in-process before the
servers start (the same partition hash the router uses), so building a
cluster costs about as much as building the single-node database.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.netclient.pool import ConnectionPool, ReplicatedConnectionPool
from repro.replication.replica import ReplicaServer
from repro.server.server import SqlServer
from repro.sharding import ShardMap, ShardedDatabase
from repro.sqlengine.catalog import TableSchema
from repro.sqlengine.durability import DurabilityOptions
from repro.sqlengine.engine import Database
from repro.tpcw.database import RemoteTpcwDatabase, TpcwDatabase, build_database, connect_remote
from repro.tpcw.population import PopulationScale

#: TPC-W partitioning: the big tables shard on their primary key,
#: everything else is global.
SHARDED_TABLES = {"item": "i_id", "customer": "c_id"}

#: Load order (no FK enforcement, but keep reference tables first for
#: readability of the per-shard logs).
_TABLES = ("country", "address", "author", "customer", "item")

#: The secondary indexes the single-node build creates via the catalog
#: API, as SQL so they flow through the coordinator's DDL capture.
_INDEX_DDL = (
    ("customer", "CREATE UNIQUE INDEX tpcw_customer_uname ON customer (c_uname)"),
    ("item", "CREATE INDEX tpcw_item_subject ON item (i_subject)"),
)


def tpcw_shard_map(num_shards: int, version: int = 1) -> ShardMap:
    """The TPC-W shard map for ``num_shards`` shards."""
    return ShardMap(
        version=version, num_shards=num_shards, tables=dict(SHARDED_TABLES)
    )


def table_ddl(schema: TableSchema) -> str:
    """Reconstruct a CREATE TABLE statement from a catalog schema."""
    parts = []
    for column in schema.columns:
        text = f"{column.name} {column.sql_type.value}"
        if column.length is not None:
            text += f"({column.length})"
        if column.primary_key:
            text += " PRIMARY KEY"
        elif column.unique:
            text += " UNIQUE"
        if not column.nullable and not column.primary_key:
            text += " NOT NULL"
        parts.append(text)
    return f"CREATE TABLE {schema.name} ({', '.join(parts)})"


@dataclass
class ShardNode:
    """One shard: a primary server, its replicas, and the client pool the
    coordinator routes through."""

    index: int
    database: Database
    server: SqlServer
    replicas: list[ReplicaServer] = field(default_factory=list)
    pool: object = None

    def kill(self) -> None:
        """Hard-stop the primary (simulated crash); replicas keep serving
        and a routed pool fails over on the next write."""
        self.server.kill()

    def stop(self) -> None:
        for replica in self.replicas:
            try:
                replica.kill()
            except Exception:
                pass
        try:
            self.server.kill()
        except Exception:
            pass
        try:
            self.database.close()
        except Exception:
            pass


@dataclass
class ShardedTpcwCluster:
    """The assembled topology plus the single-node oracle."""

    local: TpcwDatabase
    nodes: list[ShardNode]
    coordinator: ShardedDatabase
    server: SqlServer
    #: A directory the cluster created itself and removes on stop().
    owned_data_dir: Optional[str] = None

    @property
    def address(self) -> tuple[str, int]:
        """The coordinator's wire address — clients connect only here."""
        return self.server.address

    def remote(self, **options) -> RemoteTpcwDatabase:
        """The TPC-W handle whose sessions run against the cluster."""
        return connect_remote(self.local, self.address, **options)

    def kill_shard(self, index: int) -> None:
        self.nodes[index].kill()

    def stop(self) -> None:
        try:
            self.server.kill()
        except Exception:
            pass
        self.coordinator.close()
        for node in self.nodes:
            node.stop()
        self.local.close()
        if self.owned_data_dir is not None:
            shutil.rmtree(self.owned_data_dir, ignore_errors=True)


def _partition_rows(
    rows: Sequence[tuple],
    key_position: Optional[int],
    shard_map: ShardMap,
    table: str,
) -> list[list[tuple]]:
    """Rows per shard: hashed for sharded tables, full copy for globals."""
    if key_position is None:
        return [list(rows) for _ in range(shard_map.num_shards)]
    buckets: list[list[tuple]] = [[] for _ in range(shard_map.num_shards)]
    for row in rows:
        buckets[shard_map.shard_of(table, row[key_position])].append(row)
    return buckets


def build_sharded_cluster(
    scale: Optional[PopulationScale] = None,
    num_shards: int = 2,
    replicas_per_shard: int = 0,
    data_dir: Optional[str] = None,
    durability: Optional[DurabilityOptions] = None,
    coordinator_journal: bool = True,
) -> ShardedTpcwCluster:
    """Build, populate and start an ``num_shards``-way TPC-W cluster.

    With ``data_dir`` each shard gets a durable subdirectory
    (``shard0``, ``shard1``, ...) and the coordinator journals its 2PC
    decisions under ``coordinator/``; without it everything is in-memory
    (and ``coordinator_journal`` is moot — the journal degrades to a
    dict).  Replicas need a WAL to ship, so ``replicas_per_shard > 0``
    forces durable shards: a temporary directory is created (and removed
    by :meth:`ShardedTpcwCluster.stop`) when ``data_dir`` is omitted.
    """
    owned_data_dir = None
    if replicas_per_shard > 0 and data_dir is None:
        data_dir = owned_data_dir = tempfile.mkdtemp(prefix="tpcw-sharded-")
    if data_dir is not None and durability is None:
        durability = DurabilityOptions(fsync="off", checkpoint_log_bytes=None)
    local = build_database(scale)
    shard_map = tpcw_shard_map(num_shards)

    # -- shard engines, bulk-loaded in-process -------------------------------
    databases = []
    for index in range(num_shards):
        shard_dir = None
        if data_dir is not None:
            shard_dir = os.path.join(data_dir, f"shard{index}")
        databases.append(Database(data_dir=shard_dir, durability=durability))
    ddl: dict[str, list[str]] = {}
    for table in _TABLES:
        schema = local.database.catalog.table(table)
        statement = table_ddl(schema)
        ddl[table] = [statement]
        for database in databases:
            database.execute(statement)
        rows = local.database.execute(f"SELECT * FROM {table}").rows
        key = SHARDED_TABLES.get(table)
        position = schema.column_names.index(key) if key else None
        buckets = _partition_rows(rows, position, shard_map, table)
        for database, bucket in zip(databases, buckets):
            if bucket:
                database.insert_rows(table, bucket)
    for table, index_sql in _INDEX_DDL:
        ddl[table].append(index_sql)
        for database in databases:
            database.execute(index_sql)

    # -- servers, replicas, pools --------------------------------------------
    nodes: list[ShardNode] = []
    try:
        for index, database in enumerate(databases):
            server = SqlServer(
                database=database,
                max_connections=128,
                banner=f"shard{index}",
            ).start()
            node = ShardNode(index=index, database=database, server=server)
            for r in range(replicas_per_shard):
                node.replicas.append(
                    ReplicaServer(
                        server.address, name=f"s{index}r{r}"
                    ).start()
                )
            if node.replicas:
                # Let the replicas replay the population before any read
                # routes to them (the bulk load happened pre-attach).
                target = database.wal_position()
                for replica in node.replicas:
                    replica.wait_for(target, timeout=30.0)
                node.pool = ReplicatedConnectionPool(
                    server.address,
                    [replica.address for replica in node.replicas],
                )
            else:
                node.pool = ConnectionPool(
                    server.address[0], server.address[1], max_size=16
                )
            nodes.append(node)

        # -- the coordinator and its wire front ------------------------------
        coordinator_dir = None
        if data_dir is not None and coordinator_journal:
            coordinator_dir = os.path.join(data_dir, "coordinator")
        coordinator = ShardedDatabase(
            shard_map,
            [node.pool for node in nodes],
            data_dir=coordinator_dir,
            name="tpcw-coordinator",
        )
        for table in _TABLES:
            schema = local.database.catalog.table(table)
            coordinator.register_table(
                table, schema.column_names, ddl=ddl[table]
            )
        front = SqlServer(database=coordinator, max_connections=128).start()
    except BaseException:
        for node in nodes:
            node.stop()
        local.close()
        if owned_data_dir is not None:
            shutil.rmtree(owned_data_dir, ignore_errors=True)
        raise
    return ShardedTpcwCluster(
        local=local,
        nodes=nodes,
        coordinator=coordinator,
        server=front,
        owned_data_dir=owned_data_dir,
    )
