"""TPC-W schema and ORM mapping (the subset the benchmark queries touch).

Table and column names follow the TPC-W specification (and the Rice
implementation the paper uses): ``customer``, ``address``, ``country``,
``author`` and ``item``, with the item table carrying five ``i_related``
references to other items.
"""

from __future__ import annotations

from repro.orm.mapping import EntityMapping, FieldMapping, OrmMapping, RelationshipMapping
from repro.sqlengine.catalog import SqlType

#: The 24 item subjects defined by the TPC-W specification.
TPCW_SUBJECTS = [
    "ARTS", "BIOGRAPHIES", "BUSINESS", "CHILDREN", "COMPUTERS", "COOKING",
    "HEALTH", "HISTORY", "HOME", "HUMOR", "LITERATURE", "MYSTERY",
    "NON-FICTION", "PARENTING", "POLITICS", "REFERENCE", "RELIGION",
    "ROMANCE", "SELF-HELP", "SCIENCE-NATURE", "SCIENCE-FICTION", "SPORTS",
    "YOUTH", "TRAVEL",
]


def tpcw_mapping() -> OrmMapping:
    """The ORM mapping for the TPC-W entities used by the benchmark."""
    customer = EntityMapping(
        "Customer",
        "customer",
        fields=[
            FieldMapping("customerId", "c_id", SqlType.INTEGER, primary_key=True),
            FieldMapping("uname", "c_uname", SqlType.TEXT),
            FieldMapping("firstName", "c_fname", SqlType.TEXT),
            FieldMapping("lastName", "c_lname", SqlType.TEXT),
            FieldMapping("addressId", "c_addr_id", SqlType.INTEGER),
            FieldMapping("phone", "c_phone", SqlType.TEXT),
            FieldMapping("email", "c_email", SqlType.TEXT),
            FieldMapping("since", "c_since", SqlType.TEXT),
            FieldMapping("discount", "c_discount", SqlType.DOUBLE),
            FieldMapping("balance", "c_balance", SqlType.DOUBLE),
            FieldMapping("ytdPayment", "c_ytd_pmt", SqlType.DOUBLE),
        ],
        relationships=[
            RelationshipMapping("address", "Address", "c_addr_id", "addr_id", "to_one"),
        ],
    )
    address = EntityMapping(
        "Address",
        "address",
        fields=[
            FieldMapping("addressId", "addr_id", SqlType.INTEGER, primary_key=True),
            FieldMapping("street1", "addr_street1", SqlType.TEXT),
            FieldMapping("street2", "addr_street2", SqlType.TEXT),
            FieldMapping("city", "addr_city", SqlType.TEXT),
            FieldMapping("state", "addr_state", SqlType.TEXT),
            FieldMapping("zip", "addr_zip", SqlType.TEXT),
            FieldMapping("countryId", "addr_co_id", SqlType.INTEGER),
        ],
        relationships=[
            RelationshipMapping("country", "Country", "addr_co_id", "co_id", "to_one"),
        ],
    )
    country = EntityMapping(
        "Country",
        "country",
        fields=[
            FieldMapping("countryId", "co_id", SqlType.INTEGER, primary_key=True),
            FieldMapping("name", "co_name", SqlType.TEXT),
            FieldMapping("currency", "co_currency", SqlType.TEXT),
            FieldMapping("exchange", "co_exchange", SqlType.DOUBLE),
        ],
    )
    author = EntityMapping(
        "Author",
        "author",
        fields=[
            FieldMapping("authorId", "a_id", SqlType.INTEGER, primary_key=True),
            FieldMapping("firstName", "a_fname", SqlType.TEXT),
            FieldMapping("middleName", "a_mname", SqlType.TEXT),
            FieldMapping("lastName", "a_lname", SqlType.TEXT),
            FieldMapping("bio", "a_bio", SqlType.TEXT),
        ],
    )
    item = EntityMapping(
        "Item",
        "item",
        fields=[
            FieldMapping("itemId", "i_id", SqlType.INTEGER, primary_key=True),
            FieldMapping("title", "i_title", SqlType.TEXT),
            FieldMapping("authorId", "i_a_id", SqlType.INTEGER),
            FieldMapping("publicationDate", "i_pub_date", SqlType.TEXT),
            FieldMapping("publisher", "i_publisher", SqlType.TEXT),
            FieldMapping("subject", "i_subject", SqlType.TEXT),
            FieldMapping("description", "i_desc", SqlType.TEXT),
            FieldMapping("related1Id", "i_related1", SqlType.INTEGER),
            FieldMapping("related2Id", "i_related2", SqlType.INTEGER),
            FieldMapping("related3Id", "i_related3", SqlType.INTEGER),
            FieldMapping("related4Id", "i_related4", SqlType.INTEGER),
            FieldMapping("related5Id", "i_related5", SqlType.INTEGER),
            FieldMapping("thumbnail", "i_thumbnail", SqlType.TEXT),
            FieldMapping("image", "i_image", SqlType.TEXT),
            FieldMapping("suggestedRetailPrice", "i_srp", SqlType.DOUBLE),
            FieldMapping("cost", "i_cost", SqlType.DOUBLE),
            FieldMapping("availabilityDate", "i_avail", SqlType.TEXT),
            FieldMapping("stock", "i_stock", SqlType.INTEGER),
            FieldMapping("isbn", "i_isbn", SqlType.TEXT),
            FieldMapping("pageCount", "i_page", SqlType.INTEGER),
            FieldMapping("backing", "i_backing", SqlType.TEXT),
            FieldMapping("dimensions", "i_dimensions", SqlType.TEXT),
        ],
        relationships=[
            RelationshipMapping("author", "Author", "i_a_id", "a_id", "to_one"),
            RelationshipMapping("related1", "Item", "i_related1", "i_id", "to_one"),
            RelationshipMapping("related2", "Item", "i_related2", "i_id", "to_one"),
            RelationshipMapping("related3", "Item", "i_related3", "i_id", "to_one"),
            RelationshipMapping("related4", "Item", "i_related4", "i_id", "to_one"),
            RelationshipMapping("related5", "Item", "i_related5", "i_id", "to_one"),
        ],
    )
    mapping = OrmMapping([customer, address, country, author, item])
    mapping.validate()
    return mapping
