"""Deterministic TPC-W data population.

The generator follows the TPC-W cardinality rules the paper uses:

* ``num_items`` items (the paper sets 10 000),
* ``num_ebs`` emulated browsers (the paper sets 100), giving
  ``2880 * num_ebs`` customers,
* one address per customer (plus a pool of extras), 92 countries,
* ``num_items / 4`` authors (at least one),
* every item references five *other* items through ``i_related1..5``.

Everything is generated from a seeded :class:`random.Random`, so two
populations with the same scale and seed are identical — which the
correctness tests rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sqlengine.engine import Database
from repro.tpcw.schema import TPCW_SUBJECTS

_COUNTRY_NAMES = [
    "United States", "United Kingdom", "Canada", "Germany", "France",
    "Japan", "Netherlands", "Italy", "Switzerland", "Australia",
] + [f"Country{i}" for i in range(11, 93)]

_FIRST_NAMES = ["ALICE", "BOB", "CAROL", "DAVE", "ERIN", "FRANK", "GRACE", "HEIDI", "IVAN", "JUDY"]
_LAST_NAMES = ["SMITH", "JONES", "BROWN", "TAYLOR", "WILSON", "DAVIES", "EVANS", "THOMAS", "JOHNSON", "ROBERTS"]


@dataclass(frozen=True)
class PopulationScale:
    """Scale knobs of the TPC-W population.

    The paper's configuration is ``PopulationScale.paper()``; tests and the
    default benchmark configuration use a scaled-down database so a full run
    stays fast on an interpreter-based engine.
    """

    num_items: int = 1000
    num_ebs: int = 1
    customers_per_eb: int = 2880
    seed: int = 20060401

    @classmethod
    def paper(cls) -> "PopulationScale":
        """The configuration used in the paper (10 000 items, 100 EBs)."""
        return cls(num_items=10_000, num_ebs=100)

    @classmethod
    def tiny(cls) -> "PopulationScale":
        """A very small configuration for unit tests."""
        return cls(num_items=50, num_ebs=1, customers_per_eb=40)

    @property
    def num_customers(self) -> int:
        """Number of customers implied by the EB count."""
        return self.customers_per_eb * self.num_ebs

    @property
    def num_addresses(self) -> int:
        """Number of addresses (one per customer plus a 10% pool)."""
        return self.num_customers + max(1, self.num_customers // 10)

    @property
    def num_authors(self) -> int:
        """Number of authors (TPC-W: a quarter of the item count)."""
        return max(1, self.num_items // 4)

    @property
    def num_countries(self) -> int:
        """Number of countries (fixed at 92 by the specification)."""
        return 92


@dataclass
class PopulationSummary:
    """Row counts actually inserted (returned by :func:`populate`)."""

    customers: int
    addresses: int
    countries: int
    authors: int
    items: int


def populate(database: Database, scale: PopulationScale) -> PopulationSummary:
    """Fill the TPC-W tables of ``database`` according to ``scale``."""
    rng = random.Random(scale.seed)

    countries = [
        (
            country_id,
            _COUNTRY_NAMES[country_id - 1],
            "USD" if country_id == 1 else f"CUR{country_id}",
            round(rng.uniform(0.1, 10.0), 4),
        )
        for country_id in range(1, scale.num_countries + 1)
    ]
    database.insert_rows("country", countries)

    addresses = [
        (
            address_id,
            f"{rng.randint(1, 9999)} MAIN ST",
            f"APT {rng.randint(1, 500)}",
            f"CITY{rng.randint(1, 500)}",
            f"ST{rng.randint(1, 60)}",
            f"{rng.randint(10000, 99999)}",
            rng.randint(1, scale.num_countries),
        )
        for address_id in range(1, scale.num_addresses + 1)
    ]
    database.insert_rows("address", addresses)

    customers = []
    for customer_id in range(1, scale.num_customers + 1):
        uname = _customer_uname(customer_id)
        customers.append(
            (
                customer_id,
                uname,
                rng.choice(_FIRST_NAMES),
                rng.choice(_LAST_NAMES),
                rng.randint(1, scale.num_addresses),
                f"+1-555-{rng.randint(1000000, 9999999)}",
                f"{uname}@example.com",
                f"200{rng.randint(0, 6)}-01-01",
                round(rng.uniform(0.0, 0.5), 2),
                round(rng.uniform(-200.0, 1000.0), 2),
                round(rng.uniform(0.0, 10000.0), 2),
            )
        )
    database.insert_rows("customer", customers)

    authors = [
        (
            author_id,
            rng.choice(_FIRST_NAMES),
            rng.choice("ABCDEFGHIJ"),
            rng.choice(_LAST_NAMES),
            f"Biography of author {author_id}",
        )
        for author_id in range(1, scale.num_authors + 1)
    ]
    database.insert_rows("author", authors)

    items = []
    for item_id in range(1, scale.num_items + 1):
        related = _related_items(rng, item_id, scale.num_items)
        items.append(
            (
                item_id,
                f"Book title {item_id:06d} {rng.choice(_LAST_NAMES)}",
                rng.randint(1, scale.num_authors),
                f"199{rng.randint(0, 9)}-0{rng.randint(1, 9)}-15",
                f"Publisher {rng.randint(1, 50)}",
                rng.choice(TPCW_SUBJECTS),
                f"Description of item {item_id}",
                related[0],
                related[1],
                related[2],
                related[3],
                related[4],
                f"img/thumb_{item_id}.gif",
                f"img/image_{item_id}.gif",
                round(rng.uniform(1.0, 100.0), 2),
                round(rng.uniform(0.5, 80.0), 2),
                f"200{rng.randint(0, 6)}-06-01",
                rng.randint(0, 500),
                f"ISBN{item_id:09d}",
                rng.randint(20, 2000),
                rng.choice(["HARDBACK", "PAPERBACK", "AUDIO", "CD", "USED"]),
                f"{rng.randint(1, 40)}x{rng.randint(1, 30)}x{rng.randint(1, 5)}",
            )
        )
    database.insert_rows("item", items)

    return PopulationSummary(
        customers=len(customers),
        addresses=len(addresses),
        countries=len(countries),
        authors=len(authors),
        items=len(items),
    )


def _customer_uname(customer_id: int) -> str:
    """The deterministic user name for a customer id (as TPC-W derives
    user names from ids, so benchmarks can pick random valid names)."""
    return f"user{customer_id:07d}"


def _related_items(rng: random.Random, item_id: int, num_items: int) -> list[int]:
    """Five distinct related item ids, all different from ``item_id``.

    TPC-W items reference five *distinct* other items; keeping them distinct
    also makes the OR-join and the five-way self-join formulations of
    doGetRelated return identical row sets.
    """
    if num_items <= 1:
        return [item_id] * 5
    related: list[int] = []
    seen = {item_id}
    while len(related) < 5:
        candidate = rng.randint(1, num_items)
        if candidate not in seen:
            related.append(candidate)
            seen.add(candidate)
        elif num_items <= 6:
            # Tiny databases may not have five distinct other items.
            related.append(candidate if candidate != item_id else 1 + candidate % num_items)
    return related


customer_uname = _customer_uname
