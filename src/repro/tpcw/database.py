"""Construction of a populated TPC-W database with its ORM wiring."""

from __future__ import annotations

from dataclasses import dataclass

from repro.dbapi.connection import Connection, connect
from repro.orm.entity_manager import EntityManager
from repro.orm.session import QueryllDatabase
from repro.sqlengine.planner import PlannerOptions
from repro.tpcw.population import PopulationScale, PopulationSummary, populate
from repro.tpcw.schema import tpcw_mapping


@dataclass
class TpcwDatabase:
    """A populated TPC-W database plus its ORM session factory."""

    orm: QueryllDatabase
    scale: PopulationScale
    summary: PopulationSummary

    @property
    def database(self):
        """The underlying SQL engine."""
        return self.orm.database

    def connection(self, auto_commit: bool = True) -> Connection:
        """A JDBC-style connection (used by the hand-written SQL queries).

        Each call opens a fresh connection with its own engine session, so
        concurrent driver threads get independent transaction contexts.
        """
        return connect(self.orm.database, auto_commit=auto_commit)

    def entity_manager(self) -> EntityManager:
        """A fresh EntityManager (used by the Queryll-style queries)."""
        return self.orm.begin_transaction()


def build_database(
    scale: PopulationScale | None = None,
    planner_options: PlannerOptions | None = None,
    secondary_indexes: bool = True,
) -> TpcwDatabase:
    """Create, populate and index a TPC-W database.

    ``secondary_indexes`` controls whether the indexes the Rice
    implementation relies on (``customer.c_uname``, ``item.i_subject``) are
    created; the ablation benchmarks turn them off.
    """
    scale = scale or PopulationScale()
    orm = QueryllDatabase(tpcw_mapping(), planner_options=planner_options)
    summary = populate(orm.database, scale)
    if secondary_indexes:
        orm.database.create_index("customer", ["c_uname"], unique=True)
        orm.database.create_index("item", ["i_subject"])
    return TpcwDatabase(orm=orm, scale=scale, summary=summary)
