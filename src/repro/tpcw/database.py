"""Construction of a populated TPC-W database with its ORM wiring."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.dbapi.connection import Connection, connect
from repro.orm.entity_manager import EntityManager
from repro.orm.session import QueryllDatabase

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.netclient import ConnectionPool, RemoteDatabase
from repro.sqlengine.durability import DurabilityOptions
from repro.sqlengine.planner import PlannerOptions
from repro.tpcw.population import PopulationScale, PopulationSummary, populate
from repro.tpcw.schema import tpcw_mapping


@dataclass
class TpcwDatabase:
    """A populated TPC-W database plus its ORM session factory."""

    orm: QueryllDatabase
    scale: PopulationScale
    summary: PopulationSummary

    @property
    def database(self):
        """The underlying SQL engine."""
        return self.orm.database

    def connection(self, auto_commit: bool = True) -> Connection:
        """A JDBC-style connection (used by the hand-written SQL queries).

        Each call opens a fresh connection with its own engine session, so
        concurrent driver threads get independent transaction contexts.
        """
        return connect(self.orm.database, auto_commit=auto_commit)

    def entity_manager(self) -> EntityManager:
        """A fresh EntityManager (used by the Queryll-style queries)."""
        return self.orm.begin_transaction()

    def checkpoint(self) -> bool:
        """Checkpoint the underlying engine (False when in-memory)."""
        return self.orm.database.checkpoint()

    def close(self) -> None:
        """Close the underlying engine's durability layer."""
        self.orm.database.close()


@dataclass
class RemoteTpcwDatabase:
    """A TpcwDatabase-shaped handle whose sessions cross the network.

    Wraps a server-side :class:`TpcwDatabase` (for the population metadata
    and the client-side ORM artifacts — mapping and generated entity
    classes) plus a client-side :class:`~repro.netclient.RemoteDatabase`.
    ``connection()`` and ``entity_manager()`` return the exact objects the
    local handle returns, but their engine sessions live on the server —
    which is what lets the whole TPC-W suite run unchanged against a
    remote server.
    """

    local: TpcwDatabase
    remote: "RemoteDatabase"

    @property
    def orm(self) -> QueryllDatabase:
        """The ORM bundle (mapping + entity classes, all client-side)."""
        return self.local.orm

    @property
    def scale(self) -> PopulationScale:
        """The population scale."""
        return self.local.scale

    @property
    def summary(self) -> PopulationSummary:
        """The population summary."""
        return self.local.summary

    @property
    def database(self):
        """The server-side SQL engine (tests inspect it in-process)."""
        return self.local.database

    def connection(self, auto_commit: bool = True):
        """A remote dbapi connection (pooled when the RemoteDatabase has a
        pool — then ``close()`` returns it instead of closing the socket)."""
        return self.remote.connect(auto_commit=auto_commit)

    def entity_manager(self) -> EntityManager:
        """A fresh EntityManager whose session runs on the remote server."""
        return EntityManager(
            self.remote, self.orm.mapping, self.orm.entity_classes
        )

    def checkpoint(self) -> bool:
        """Checkpoint the server's engine over the wire."""
        session = self.remote.session()
        try:
            session.checkpoint()
        finally:
            session.close()
        return self.local.database.durable

    def server_stats(self) -> dict:
        """The server's SERVER_STATS document."""
        return self.remote.server_stats()


def connect_remote(
    local: TpcwDatabase,
    address: tuple[str, int],
    *,
    pool: Optional["ConnectionPool"] = None,
    batch_rows: Optional[int] = None,
) -> RemoteTpcwDatabase:
    """Point a TPC-W workload at a server exposing ``local``'s engine."""
    from repro.netclient import DEFAULT_BATCH_ROWS, RemoteDatabase

    remote = RemoteDatabase(
        address,
        pool=pool,
        batch_rows=DEFAULT_BATCH_ROWS if batch_rows is None else batch_rows,
    )
    return RemoteTpcwDatabase(local=local, remote=remote)


def build_database(
    scale: PopulationScale | None = None,
    planner_options: PlannerOptions | None = None,
    secondary_indexes: bool = True,
    data_dir: Optional[str] = None,
    durability: Optional[DurabilityOptions] = None,
) -> TpcwDatabase:
    """Create, populate and index a TPC-W database.

    ``secondary_indexes`` controls whether the indexes the Rice
    implementation relies on (``customer.c_uname``, ``item.i_subject``) are
    created; the ablation benchmarks turn them off.

    With ``data_dir`` the engine is durable: the first build populates the
    tables (journalled through the write-ahead log), and reopening the same
    directory recovers the population instead of regenerating it — the
    benchmarks' populate-once / reopen-warm path.  A partially populated
    directory (e.g. a crash mid-populate) is detected by a row-count check
    and repopulated from scratch.
    """
    scale = scale or PopulationScale()

    def open_orm() -> QueryllDatabase:
        return QueryllDatabase(
            tpcw_mapping(),
            planner_options=planner_options,
            data_dir=data_dir,
            durability=durability,
        )

    orm = open_orm()
    database = orm.database
    warm = (
        data_dir is not None
        and database.catalog.has_table("item")
        and database.row_count("item") == scale.num_items
        and database.row_count("customer") == scale.num_customers
    )
    if warm:
        summary = PopulationSummary(
            customers=database.row_count("customer"),
            addresses=database.row_count("address"),
            countries=database.row_count("country"),
            authors=database.row_count("author"),
            items=database.row_count("item"),
        )
    else:
        partially_populated = data_dir is not None and any(
            database.catalog.has_table(table) and database.row_count(table)
            for table in ("country", "address", "customer", "author", "item")
        )
        if partially_populated:
            # A crash mid-populate, or a different scale, left unusable
            # data (population fills country first and item last, so any
            # non-empty table disqualifies the directory).  Clearing
            # tables in place would bypass the log, so instead the
            # durability files are wiped and the engine reopened empty.
            database.close()
            _wipe_durability_files(data_dir)
            orm = open_orm()
            database = orm.database
        summary = populate(database, scale)
    if secondary_indexes:
        # A warm reopen recovered these with the rest of the database;
        # detect them structurally rather than by generated name.
        if database.table_data("customer").find_equality_index(("c_uname",)) is None:
            database.create_index("customer", ["c_uname"], unique=True)
        if database.table_data("item").find_equality_index(("i_subject",)) is None:
            database.create_index("item", ["i_subject"])
    return TpcwDatabase(orm=orm, scale=scale, summary=summary)


def _wipe_durability_files(data_dir: str) -> None:
    """Remove this engine's snapshot and log files from ``data_dir``."""
    import os

    from repro.sqlengine.durability.recovery import WAL_PATTERN
    from repro.sqlengine.durability.snapshot import SNAPSHOT_NAME

    for name in os.listdir(data_dir):
        if name == SNAPSHOT_NAME or WAL_PATTERN.match(name):
            os.remove(os.path.join(data_dir, name))
