"""Timing protocol used by the benchmark harness.

The paper's protocol: warm the cache with 100 executions, then time 2000
executions; repeat the whole configuration several times and average the
last runs (discarding the first ones to remove JIT effects).  The
:func:`measure` helper implements the same structure with configurable
counts, returning mean and standard deviation like the paper's Table 4.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable


@dataclass
class Measurement:
    """Result of measuring one benchmark configuration."""

    name: str
    mean_ms: float
    stdev_ms: float
    runs: list[float]
    executions_per_run: int

    @property
    def per_execution_us(self) -> float:
        """Average microseconds per query execution."""
        if not self.executions_per_run:
            return 0.0
        return self.mean_ms * 1000.0 / self.executions_per_run


def measure(
    name: str,
    operation: Callable[[], None],
    executions_per_run: int,
    warmup_executions: int = 0,
    runs: int = 3,
    discard_runs: int = 1,
) -> Measurement:
    """Measure ``operation`` following the paper's protocol.

    ``operation`` is called ``warmup_executions`` times, then timed in
    ``runs`` batches of ``executions_per_run`` calls; the first
    ``discard_runs`` batches are discarded from the statistics.
    """
    for _ in range(warmup_executions):
        operation()

    durations_ms: list[float] = []
    for _ in range(max(1, runs)):
        start = time.perf_counter()
        for _ in range(executions_per_run):
            operation()
        durations_ms.append((time.perf_counter() - start) * 1000.0)

    kept = durations_ms[discard_runs:] if len(durations_ms) > discard_runs else durations_ms
    mean = statistics.fmean(kept)
    stdev = statistics.stdev(kept) if len(kept) > 1 else 0.0
    return Measurement(
        name=name,
        mean_ms=mean,
        stdev_ms=stdev,
        runs=durations_ms,
        executions_per_run=executions_per_run,
    )
