"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render a simple aligned text table."""
    columns = len(headers)
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in text_rows:
        for position in range(columns):
            if position < len(row):
                widths[position] = max(widths[position], len(row[position]))

    def render_row(cells: Sequence[str]) -> str:
        padded = [
            str(cells[position]).ljust(widths[position]) if position < len(cells) else " " * widths[position]
            for position in range(columns)
        ]
        return "| " + " | ".join(padded) + " |"

    separator = "+-" + "-+-".join("-" * width for width in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(render_row([str(header) for header in headers]))
    lines.append(separator)
    for row in text_rows:
        lines.append(render_row(row))
    lines.append(separator)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)
