"""Benchmark support: timing protocol and text reporting."""

from __future__ import annotations

from repro.bench.timing import Measurement, measure
from repro.bench.reporting import format_table

__all__ = ["Measurement", "format_table", "measure"]
