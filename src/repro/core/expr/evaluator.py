"""Concrete evaluation of symbolic expressions.

Used by tests (especially property-based ones) to check that transformations
such as :mod:`repro.core.analysis.simplify` preserve meaning: an expression
and its simplified form must evaluate identically under every environment.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.core.expr import nodes
from repro.errors import ReproError


class EvaluationError(ReproError):
    """The expression could not be evaluated under the given environment."""


#: Type of an optional hook used to evaluate Call/GetField/New nodes.
CallHandler = Callable[[nodes.Expression, Mapping[str, object]], object]


def evaluate(
    expression: nodes.Expression,
    env: Mapping[str, object],
    call_handler: CallHandler | None = None,
) -> object:
    """Evaluate ``expression`` with variable values drawn from ``env``.

    ``call_handler`` is invoked for :class:`~repro.core.expr.nodes.Call`,
    :class:`~repro.core.expr.nodes.GetField`, :class:`~repro.core.expr.nodes.New`
    and :class:`~repro.core.expr.nodes.SourceEntity` nodes; without one, those
    nodes raise :class:`EvaluationError`.
    """
    if isinstance(expression, nodes.Constant):
        return expression.value
    if isinstance(expression, nodes.Var):
        if expression.name not in env:
            raise EvaluationError(f"unbound variable {expression.name!r}")
        return env[expression.name]
    if isinstance(expression, nodes.Cast):
        return evaluate(expression.operand, env, call_handler)
    if isinstance(expression, nodes.UnaryOp):
        value = evaluate(expression.operand, env, call_handler)
        if expression.op == "!":
            return not _truthy(value)
        if expression.op == "neg":
            return -value  # type: ignore[operator]
        raise EvaluationError(f"unknown unary operator {expression.op!r}")
    if isinstance(expression, nodes.BinOp):
        return _evaluate_binop(expression, env, call_handler)
    if call_handler is not None and isinstance(
        expression, (nodes.Call, nodes.GetField, nodes.New, nodes.SourceEntity)
    ):
        return call_handler(expression, env)
    raise EvaluationError(f"cannot evaluate {expression!r}")


def _evaluate_binop(
    expression: nodes.BinOp,
    env: Mapping[str, object],
    call_handler: CallHandler | None,
) -> object:
    op = expression.op
    if op == "&&":
        return _truthy(evaluate(expression.left, env, call_handler)) and _truthy(
            evaluate(expression.right, env, call_handler)
        )
    if op == "||":
        return _truthy(evaluate(expression.left, env, call_handler)) or _truthy(
            evaluate(expression.right, env, call_handler)
        )
    left = evaluate(expression.left, env, call_handler)
    right = evaluate(expression.right, env, call_handler)
    if op == "+":
        return left + right  # type: ignore[operator]
    if op == "-":
        return left - right  # type: ignore[operator]
    if op == "*":
        return left * right  # type: ignore[operator]
    if op == "/":
        if right == 0:
            raise EvaluationError("division by zero")
        if isinstance(left, int) and isinstance(right, int):
            # Java-style integer division truncates toward zero.
            quotient = abs(left) // abs(right)
            return quotient if (left >= 0) == (right >= 0) else -quotient
        return left / right  # type: ignore[operator]
    if op == "%":
        if right == 0:
            raise EvaluationError("modulo by zero")
        return left % right  # type: ignore[operator]
    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    try:
        if op == "<":
            return left < right  # type: ignore[operator]
        if op == "<=":
            return left <= right  # type: ignore[operator]
        if op == ">":
            return left > right  # type: ignore[operator]
        if op == ">=":
            return left >= right  # type: ignore[operator]
    except TypeError as exc:
        raise EvaluationError(str(exc)) from exc
    raise EvaluationError(f"unknown binary operator {op!r}")


def _truthy(value: object) -> bool:
    """Java-style truthiness: integers are booleans (0 = false)."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    return bool(value)
