"""Textual rendering of symbolic expressions.

The output format deliberately follows the paper's Table 2 style, e.g.::

    (((Office)entry).Name = "Seattle") = 0 AND (((Office)entry).Name = "LA") != 0

so that the Table 2 reproduction benchmark can print recognisable traces.
"""

from __future__ import annotations

from repro.core.expr import nodes

_OP_TEXT = {
    "==": "=",
    "!=": "!=",
    "&&": "AND",
    "||": "OR",
}


def to_text(expression: nodes.Expression) -> str:
    """Render an expression as human-readable text."""
    if isinstance(expression, nodes.Constant):
        value = expression.value
        if isinstance(value, str):
            return f'"{value}"'
        if value is None:
            return "null"
        if isinstance(value, bool):
            return "true" if value else "false"
        return repr(value)
    if isinstance(expression, nodes.Var):
        return expression.name
    if isinstance(expression, nodes.Cast):
        return f"(({expression.type_name}){to_text(expression.operand)})"
    if isinstance(expression, nodes.UnaryOp):
        if expression.op == "!":
            return f"NOT ({to_text(expression.operand)})"
        return f"-({to_text(expression.operand)})"
    if isinstance(expression, nodes.BinOp):
        op = _OP_TEXT.get(expression.op, expression.op)
        left = to_text(expression.left)
        right = to_text(expression.right)
        if expression.op in ("&&", "||"):
            return f"{left} {op} {right}"
        return f"({left} {op} {right})"
    if isinstance(expression, nodes.Call):
        args = ", ".join(to_text(arg) for arg in expression.args)
        if expression.receiver is None:
            return f"{expression.method}({args})"
        # Render getter calls in the paper's field style: x.getName() -> x.Name
        if (
            expression.method.startswith("get")
            and len(expression.method) > 3
            and not expression.args
        ):
            return f"{to_text(expression.receiver)}.{expression.method[3:]}"
        if expression.method == "equals" and len(expression.args) == 1:
            return f"({to_text(expression.receiver)} = {args})"
        return f"{to_text(expression.receiver)}.{expression.method}({args})"
    if isinstance(expression, nodes.GetField):
        return f"{to_text(expression.receiver)}.{expression.field}"
    if isinstance(expression, nodes.New):
        args = ", ".join(to_text(arg) for arg in expression.args)
        return f"new {expression.class_name}({args})"
    if isinstance(expression, nodes.SourceEntity):
        return "entry" if expression.ordinal == 0 else f"entry{expression.ordinal}"
    raise TypeError(f"unknown expression node {expression!r}")
