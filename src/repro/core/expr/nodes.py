"""Symbolic expression nodes.

These trees serve two purposes in the pipeline:

* they are the right-hand sides of three-address instructions (restricted to
  depth one: operands are :class:`Var` or :class:`Constant`), and
* they are the result of backward symbolic substitution over a path, where
  arbitrary nesting appears (Table 2 of the paper).

All nodes are immutable; :func:`substitute` builds new trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Union


@dataclass(frozen=True)
class Constant:
    """A literal constant (int, float, str, bool or None)."""

    value: Union[int, float, str, bool, None]


@dataclass(frozen=True)
class Var:
    """A reference to a local variable or method parameter by name."""

    name: str


@dataclass(frozen=True)
class BinOp:
    """Binary operation.

    ``op`` is one of ``+ - * / % == != < <= > >= && ||``.
    """

    op: str
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class UnaryOp:
    """Unary operation: ``!`` (logical not) or ``neg`` (arithmetic negate)."""

    op: str
    operand: "Expression"


@dataclass(frozen=True)
class Cast:
    """A checked cast ``(TypeName) expr`` — Java bytecode inserts these when
    reading elements out of untyped collections (instruction 5 in Fig. 11)."""

    type_name: str
    operand: "Expression"


@dataclass(frozen=True)
class Call:
    """A method call ``receiver.method(args...)``.

    ``receiver`` is None for static calls.  The analysis stays agnostic about
    what calls mean; the query-tree builder interprets getters, ``equals``,
    relationship navigation and collection operations.
    """

    receiver: Optional["Expression"]
    method: str
    args: tuple["Expression", ...] = ()


@dataclass(frozen=True)
class GetField:
    """Direct field access ``receiver.field`` (the Python frontend produces
    these for attribute reads; the Java-style frontend produces getter
    :class:`Call` nodes instead)."""

    receiver: "Expression"
    field: str


@dataclass(frozen=True)
class New:
    """Object construction ``new ClassName(args...)`` — used for ``Pair``."""

    class_name: str
    args: tuple["Expression", ...] = ()


@dataclass(frozen=True)
class SourceEntity:
    """The paper's ``(Office)entry``: an element drawn from a source
    collection.  ``collection`` is the expression that produced the
    collection being iterated (e.g. ``em.allOffice()``), and ``ordinal``
    distinguishes multiple iterated collections in nested loops."""

    collection: "Expression"
    ordinal: int = 0


Expression = Union[
    Constant, Var, BinOp, UnaryOp, Cast, Call, GetField, New, SourceEntity
]


def substitute(
    expression: Expression, replacements: Mapping[str, Expression]
) -> Expression:
    """Replace every :class:`Var` whose name appears in ``replacements``.

    This is the core operation of the paper's backward substitution step: a
    three-address instruction ``x = <rvalue>`` is applied to the running path
    expression by substituting ``<rvalue>`` for ``x``.
    """
    if isinstance(expression, Var):
        return replacements.get(expression.name, expression)
    if isinstance(expression, Constant):
        return expression
    if isinstance(expression, BinOp):
        left = substitute(expression.left, replacements)
        right = substitute(expression.right, replacements)
        if left is expression.left and right is expression.right:
            return expression
        return BinOp(expression.op, left, right)
    if isinstance(expression, UnaryOp):
        operand = substitute(expression.operand, replacements)
        if operand is expression.operand:
            return expression
        return UnaryOp(expression.op, operand)
    if isinstance(expression, Cast):
        operand = substitute(expression.operand, replacements)
        if operand is expression.operand:
            return expression
        return Cast(expression.type_name, operand)
    if isinstance(expression, Call):
        receiver = (
            substitute(expression.receiver, replacements)
            if expression.receiver is not None
            else None
        )
        args = tuple(substitute(arg, replacements) for arg in expression.args)
        if receiver is expression.receiver and all(
            new is old for new, old in zip(args, expression.args)
        ):
            return expression
        return Call(receiver, expression.method, args)
    if isinstance(expression, GetField):
        receiver = substitute(expression.receiver, replacements)
        if receiver is expression.receiver:
            return expression
        return GetField(receiver, expression.field)
    if isinstance(expression, New):
        args = tuple(substitute(arg, replacements) for arg in expression.args)
        return New(expression.class_name, args)
    if isinstance(expression, SourceEntity):
        collection = substitute(expression.collection, replacements)
        if collection is expression.collection:
            return expression
        return SourceEntity(collection, expression.ordinal)
    raise TypeError(f"unknown expression node {expression!r}")


def expression_variables(expression: Expression) -> set[str]:
    """Names of every :class:`Var` appearing in the expression."""
    names: set[str] = set()

    def walk(node: Expression) -> None:
        if isinstance(node, Var):
            names.add(node.name)
        elif isinstance(node, BinOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, (UnaryOp, Cast)):
            walk(node.operand)
        elif isinstance(node, Call):
            if node.receiver is not None:
                walk(node.receiver)
            for arg in node.args:
                walk(arg)
        elif isinstance(node, GetField):
            walk(node.receiver)
        elif isinstance(node, New):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, SourceEntity):
            walk(node.collection)

    walk(expression)
    return names


def children(expression: Expression) -> tuple[Expression, ...]:
    """Immediate sub-expressions of a node (empty for leaves)."""
    if isinstance(expression, (Constant, Var)):
        return ()
    if isinstance(expression, BinOp):
        return (expression.left, expression.right)
    if isinstance(expression, (UnaryOp, Cast)):
        return (expression.operand,)
    if isinstance(expression, Call):
        receiver = (expression.receiver,) if expression.receiver is not None else ()
        return receiver + expression.args
    if isinstance(expression, GetField):
        return (expression.receiver,)
    if isinstance(expression, New):
        return expression.args
    if isinstance(expression, SourceEntity):
        return (expression.collection,)
    raise TypeError(f"unknown expression node {expression!r}")
