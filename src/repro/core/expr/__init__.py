"""Symbolic expression trees used by the Queryll analysis."""

from __future__ import annotations

from repro.core.expr.nodes import (
    BinOp,
    Call,
    Cast,
    Constant,
    Expression,
    GetField,
    New,
    SourceEntity,
    UnaryOp,
    Var,
    expression_variables,
    substitute,
)
from repro.core.expr.evaluator import evaluate
from repro.core.expr.printer import to_text

__all__ = [
    "BinOp",
    "Call",
    "Cast",
    "Constant",
    "Expression",
    "GetField",
    "New",
    "SourceEntity",
    "UnaryOp",
    "Var",
    "evaluate",
    "expression_variables",
    "substitute",
    "to_text",
]
