"""TAC-level rewriting: replace analysed query loops with runtime calls.

The paper's rewriter acts "like a type of code optimization in which whole
algorithms are replaced with more efficient substitutes": the for-each loop
disappears and in its place the method calls the Queryll runtime with the
generated SQL.  This module performs that replacement on the three-address
form of a method; frontends then re-emit bytecode from the result
(:mod:`repro.jvm.tac_to_bytecode`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.core.expr import nodes
from repro.core.pipeline import RewrittenQuery
from repro.core.sqlgen.generator import GeneratedSql
from repro.core.tac.instructions import (
    Assign,
    ExprStatement,
    Goto,
    IfGoto,
    Instruction,
    Nop,
)
from repro.core.tac.method import TacMethod, instruction_expressions
from repro.errors import RewriteError

#: Name of the runtime entry point invoked by rewritten bytecode.
RUNTIME_METHOD = "queryllExecuteQuery"


class QueryRegistry:
    """Registry of generated queries referenced by rewritten bytecode.

    Rewritten bytecode embeds the SQL text (for inspection) and a registry
    key; at run time the key is used to retrieve the full
    :class:`~repro.core.sqlgen.generator.GeneratedSql` (SQL + parameter
    sources + result-shape plan).
    """

    def __init__(self) -> None:
        self._entries: dict[int, GeneratedSql] = {}
        self._ids = itertools.count(1)

    def register(self, generated: GeneratedSql) -> int:
        """Register a generated query and return its key."""
        key = next(self._ids)
        self._entries[key] = generated
        return key

    def lookup(self, key: int) -> GeneratedSql:
        """Retrieve a generated query by key."""
        if key not in self._entries:
            raise RewriteError(f"no generated query registered under key {key}")
        return self._entries[key]

    def __len__(self) -> int:
        return len(self._entries)


#: Registry used by default when none is supplied explicitly.
DEFAULT_REGISTRY = QueryRegistry()


@dataclass
class SpliceResult:
    """Result of rewriting a method's TAC."""

    method: TacMethod
    replaced: list[RewrittenQuery] = field(default_factory=list)
    skipped: list[tuple[RewrittenQuery, str]] = field(default_factory=list)


def splice_rewritten_queries(
    method: TacMethod,
    rewritten: list[RewrittenQuery],
    registry: Optional[QueryRegistry] = None,
) -> SpliceResult:
    """Replace each query loop of ``method`` with a Queryll runtime call.

    The original method is not modified; a new :class:`TacMethod` is
    returned.  Queries whose loop is not contiguous or whose source
    collection cannot be re-evaluated safely are skipped (left as the
    original, still-correct loop).
    """
    registry = registry if registry is not None else DEFAULT_REGISTRY
    instructions: list[Instruction] = [
        _copy_instruction(instruction) for instruction in method.instructions
    ]
    result = SpliceResult(
        method=TacMethod(
            name=method.name,
            parameters=list(method.parameters),
            instructions=instructions,
            source_name=method.source_name,
        )
    )

    # Rewrite later loops first so earlier indexes stay valid.
    ordered = sorted(
        rewritten, key=lambda query: min(query.query.loop.instructions), reverse=True
    )
    for query in ordered:
        loop_instructions = sorted(query.query.loop.instructions)
        start, end = loop_instructions[0], loop_instructions[-1]
        if loop_instructions != list(range(start, end + 1)):
            result.skipped.append((query, "loop instructions are not contiguous"))
            continue
        replacement = _build_replacement(query, registry)
        if replacement is None:
            result.skipped.append(
                (query, "the source collection expression cannot be re-evaluated")
            )
            continue
        _splice(instructions, start, end, replacement)
        result.replaced.append(query)

    _eliminate_dead_assignments(result.method)
    result.method.validate()
    return result


# -- internals ------------------------------------------------------------------------------


def _copy_instruction(instruction: Instruction) -> Instruction:
    if isinstance(instruction, Assign):
        return Assign(instruction.target, instruction.value)
    if isinstance(instruction, ExprStatement):
        return ExprStatement(instruction.value)
    if isinstance(instruction, IfGoto):
        return IfGoto(instruction.condition, instruction.target)
    if isinstance(instruction, Goto):
        return Goto(instruction.target)
    return instruction


def _build_replacement(
    query: RewrittenQuery, registry: QueryRegistry
) -> Optional[list[Instruction]]:
    source = query.query.source_expression
    if not isinstance(source, nodes.Call) or not isinstance(source.receiver, nodes.Var):
        return None
    entity_manager_var = source.receiver
    key = registry.register(query.generated)
    parameters = nodes.New(
        "tuple", tuple(nodes.Var(name) for name in query.generated.parameter_sources)
    )
    call = nodes.Call(
        None,
        RUNTIME_METHOD,
        (
            entity_manager_var,
            nodes.Constant(key),
            nodes.Constant(query.generated.sql),
            parameters,
            nodes.Var(query.query.dest_var),
        ),
    )
    return [ExprStatement(call)]


def _splice(
    instructions: list[Instruction],
    start: int,
    end: int,
    replacement: list[Instruction],
) -> None:
    removed = end - start + 1
    delta = len(replacement) - removed
    instructions[start : end + 1] = replacement
    for instruction in instructions:
        if isinstance(instruction, (Goto, IfGoto)):
            if instruction.target > end:
                instruction.target += delta
            elif start <= instruction.target <= end:
                instruction.target = start


def _eliminate_dead_assignments(method: TacMethod) -> None:
    """Replace assignments to never-read locals with NOPs.

    After the loop disappears, the iterator and source-collection temporaries
    become dead; keeping the ``iterator()`` call would force the lazy source
    QuerySet to materialise (a full table scan), defeating the rewrite.
    Only side-effect-free right-hand sides are eliminated.
    """
    changed = True
    while changed:
        changed = False
        used: set[str] = set()
        for instruction in method.instructions:
            for expression in instruction_expressions(instruction):
                used.update(nodes.expression_variables(expression))
        for index, instruction in enumerate(method.instructions):
            if not isinstance(instruction, Assign):
                continue
            if instruction.target in used or instruction.target in method.parameters:
                continue
            if _is_removable(instruction.value):
                method.instructions[index] = Nop()
                changed = True


def _is_removable(expression: nodes.Expression) -> bool:
    if isinstance(expression, (nodes.Constant, nodes.Var)):
        return True
    if isinstance(expression, (nodes.Cast, nodes.UnaryOp)):
        return _is_removable(expression.operand)
    if isinstance(expression, nodes.GetField):
        return _is_removable(expression.receiver)
    if isinstance(expression, nodes.BinOp):
        return _is_removable(expression.left) and _is_removable(expression.right)
    if isinstance(expression, nodes.New):
        return all(_is_removable(argument) for argument in expression.args)
    if isinstance(expression, nodes.Call):
        method_name = expression.method
        pure = (
            method_name in {"iterator", "all", "size", "equals", "getFirst", "getSecond"}
            or method_name.startswith("all")
            or method_name.startswith("get")
            or method_name.startswith("is")
        )
        if not pure:
            return False
        receiver_ok = expression.receiver is None or _is_removable(expression.receiver)
        return receiver_ok and all(_is_removable(argument) for argument in expression.args)
    return False
