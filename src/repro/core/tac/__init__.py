"""Three-address code: the Jimple analogue used by the Queryll analysis."""

from __future__ import annotations

from repro.core.tac.instructions import (
    Assign,
    ExprStatement,
    Goto,
    IfGoto,
    Instruction,
    Nop,
    Return,
)
from repro.core.tac.method import TacMethod
from repro.core.tac.printer import format_instruction, format_method

__all__ = [
    "Assign",
    "ExprStatement",
    "Goto",
    "IfGoto",
    "Instruction",
    "Nop",
    "Return",
    "TacMethod",
    "format_instruction",
    "format_method",
]
