"""A method body in three-address form."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.expr.nodes import Expression, expression_variables
from repro.core.tac.instructions import (
    Assign,
    ExprStatement,
    IfGoto,
    Goto,
    Instruction,
    Return,
    branch_targets,
)


@dataclass
class TacMethod:
    """A method lowered to three-address code.

    ``parameters`` are local names bound at entry (``this`` first for
    instance methods); every other local is defined by assignment.
    ``source_name`` records where the method came from (a mini-JVM method
    signature or a Python function qualname) for error messages.
    """

    name: str
    parameters: list[str]
    instructions: list[Instruction] = field(default_factory=list)
    source_name: str = ""

    # -- construction helpers -------------------------------------------------

    def append(self, instruction: Instruction) -> int:
        """Append an instruction and return its index."""
        self.instructions.append(instruction)
        return len(self.instructions) - 1

    def extend(self, instructions: Iterable[Instruction]) -> None:
        """Append several instructions."""
        for instruction in instructions:
            self.append(instruction)

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.instructions)

    def jump_targets(self) -> set[int]:
        """Every instruction index that is the target of some branch."""
        targets: set[int] = set()
        for instruction in self.instructions:
            targets.update(branch_targets(instruction))
        return targets

    def defined_locals(self) -> set[str]:
        """Locals assigned anywhere in the method (excluding parameters)."""
        names: set[str] = set()
        for instruction in self.instructions:
            if isinstance(instruction, Assign):
                names.add(instruction.target)
        return names - set(self.parameters)

    def used_locals(self) -> set[str]:
        """Locals read anywhere in the method."""
        names: set[str] = set()
        for instruction in self.instructions:
            for expression in instruction_expressions(instruction):
                names.update(expression_variables(expression))
        return names

    def definitions_of(self, name: str) -> list[int]:
        """Indexes of instructions assigning to ``name``."""
        return [
            index
            for index, instruction in enumerate(self.instructions)
            if isinstance(instruction, Assign) and instruction.target == name
        ]

    def validate(self) -> None:
        """Check structural invariants: branch targets must be in range."""
        for index, instruction in enumerate(self.instructions):
            for target in branch_targets(instruction):
                if not 0 <= target < len(self.instructions):
                    raise ValueError(
                        f"{self.name}: instruction {index} jumps to "
                        f"out-of-range target {target}"
                    )


def instruction_expressions(instruction: Instruction) -> list[Expression]:
    """Expressions read by an instruction (not including assignment targets)."""
    if isinstance(instruction, Assign):
        return [instruction.value]
    if isinstance(instruction, ExprStatement):
        return [instruction.value]
    if isinstance(instruction, IfGoto):
        return [instruction.condition]
    if isinstance(instruction, Return) and instruction.value is not None:
        return [instruction.value]
    return []


def renumber_after_splice(
    instructions: list[Instruction],
    start: int,
    removed: int,
    inserted: int,
) -> None:
    """Fix up branch targets after replacing ``removed`` instructions at
    ``start`` with ``inserted`` new ones (in place).

    Targets inside the removed region are assumed to have been rewritten by
    the caller; targets beyond it are shifted by ``inserted - removed``.
    """
    delta = inserted - removed
    if delta == 0:
        return
    boundary = start + removed
    for instruction in instructions:
        if isinstance(instruction, (IfGoto, Goto)):
            if instruction.target >= boundary:
                instruction.target += delta


def find_single_return(method: TacMethod) -> Optional[int]:
    """Index of the method's single Return instruction, or None if there are
    zero or several returns."""
    returns = [
        index
        for index, instruction in enumerate(method.instructions)
        if isinstance(instruction, Return)
    ]
    if len(returns) == 1:
        return returns[0]
    return None
