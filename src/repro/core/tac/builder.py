"""Convenience builder for three-address code with symbolic labels.

Hand-writing TAC with absolute instruction indexes is error-prone; the
builder lets tests (and the rewriter, when it splices replacement code) use
symbolic labels that are resolved to indexes when the method is finished.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.expr.nodes import Expression
from repro.core.tac.instructions import (
    Assign,
    ExprStatement,
    Goto,
    IfGoto,
    Instruction,
    Nop,
    Return,
)
from repro.core.tac.method import TacMethod


@dataclass
class TacBuilder:
    """Builds a :class:`~repro.core.tac.method.TacMethod` incrementally."""

    name: str
    parameters: list[str]
    source_name: str = ""
    _instructions: list[Instruction] = field(default_factory=list)
    _labels: dict[str, int] = field(default_factory=dict)
    _pending: list[tuple[int, str]] = field(default_factory=list)
    _temp_counter: int = 0

    # -- emission -----------------------------------------------------------------

    def assign(self, target: str, value: Expression) -> int:
        """Emit ``target = value``."""
        return self._emit(Assign(target, value))

    def assign_temp(self, value: Expression, prefix: str = "$t") -> str:
        """Emit an assignment to a fresh temporary and return its name."""
        name = self.new_temp(prefix)
        self.assign(name, value)
        return name

    def statement(self, value: Expression) -> int:
        """Emit a bare expression statement."""
        return self._emit(ExprStatement(value))

    def goto(self, label: str) -> int:
        """Emit an unconditional jump to ``label``."""
        index = self._emit(Goto(-1))
        self._pending.append((index, label))
        return index

    def if_goto(self, condition: Expression, label: str) -> int:
        """Emit a conditional jump to ``label``."""
        index = self._emit(IfGoto(condition, -1))
        self._pending.append((index, label))
        return index

    def return_(self, value: Expression | None = None) -> int:
        """Emit a return."""
        return self._emit(Return(value))

    def nop(self) -> int:
        """Emit a no-op."""
        return self._emit(Nop())

    def label(self, name: str) -> None:
        """Place ``name`` at the next emitted instruction."""
        if name in self._labels:
            raise ValueError(f"label {name!r} already placed")
        self._labels[name] = len(self._instructions)

    def new_temp(self, prefix: str = "$t") -> str:
        """Return a fresh temporary name."""
        self._temp_counter += 1
        return f"{prefix}{self._temp_counter}"

    # -- finish --------------------------------------------------------------------

    def build(self) -> TacMethod:
        """Resolve labels and return the finished method."""
        method = TacMethod(
            name=self.name,
            parameters=list(self.parameters),
            instructions=list(self._instructions),
            source_name=self.source_name or self.name,
        )
        for index, label in self._pending:
            if label not in self._labels:
                raise ValueError(f"label {label!r} was never placed")
            target = self._labels[label]
            instruction = method.instructions[index]
            if isinstance(instruction, (Goto, IfGoto)):
                instruction.target = target
        method.validate()
        return method

    # -- internals -------------------------------------------------------------------

    def _emit(self, instruction: Instruction) -> int:
        self._instructions.append(instruction)
        return len(self._instructions) - 1
