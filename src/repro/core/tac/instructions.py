"""Instruction set of the three-address intermediate representation.

Like Jimple, every instruction is either an assignment of a (depth-one)
expression to a local, a bare expression statement (a call whose result is
discarded), a conditional or unconditional GOTO, or a return.  Branch targets
are instruction indexes within the owning :class:`~repro.core.tac.method.TacMethod`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.expr.nodes import Expression


@dataclass
class Assign:
    """``target = expression``."""

    target: str
    value: Expression


@dataclass
class ExprStatement:
    """An expression evaluated for its side effects (e.g. ``dest.add(x)``)."""

    value: Expression


@dataclass
class IfGoto:
    """``if condition goto target`` — the branch is taken when the condition
    is true (non-zero, matching Java's integer-based conditions)."""

    condition: Expression
    target: int


@dataclass
class Goto:
    """Unconditional jump to an instruction index."""

    target: int


@dataclass
class Return:
    """Return from the method, optionally with a value."""

    value: Optional[Expression] = None


@dataclass
class Nop:
    """A no-op placeholder (used when instructions are removed in place)."""


Instruction = Union[Assign, ExprStatement, IfGoto, Goto, Return, Nop]


def branch_targets(instruction: Instruction) -> tuple[int, ...]:
    """Explicit jump targets of an instruction (empty for fall-through-only)."""
    if isinstance(instruction, IfGoto):
        return (instruction.target,)
    if isinstance(instruction, Goto):
        return (instruction.target,)
    return ()


def falls_through(instruction: Instruction) -> bool:
    """True if control can continue to the next instruction."""
    return not isinstance(instruction, (Goto, Return))
