"""Pretty-printer for three-address code.

The output format mimics the paper's Fig. 11 Jimple listing: numbered
instructions, ``goto``/``if`` with explicit targets, and calls rendered with
their receivers.
"""

from __future__ import annotations

from repro.core.expr.printer import to_text
from repro.core.tac.instructions import (
    Assign,
    ExprStatement,
    Goto,
    IfGoto,
    Instruction,
    Nop,
    Return,
)
from repro.core.tac.method import TacMethod


def format_instruction(instruction: Instruction) -> str:
    """Render one instruction (without its index)."""
    if isinstance(instruction, Assign):
        return f"{instruction.target} = {to_text(instruction.value)}"
    if isinstance(instruction, ExprStatement):
        return to_text(instruction.value)
    if isinstance(instruction, IfGoto):
        return f"if {to_text(instruction.condition)} goto {instruction.target}"
    if isinstance(instruction, Goto):
        return f"goto {instruction.target}"
    if isinstance(instruction, Return):
        if instruction.value is None:
            return "return"
        return f"return {to_text(instruction.value)}"
    if isinstance(instruction, Nop):
        return "nop"
    raise TypeError(f"unknown instruction {instruction!r}")


def format_method(method: TacMethod) -> str:
    """Render a whole method as numbered three-address code."""
    header = f"method {method.name}({', '.join(method.parameters)}):"
    lines = [header]
    targets = method.jump_targets()
    for index, instruction in enumerate(method.instructions):
        marker = "label" if index in targets else "     "
        lines.append(f"{marker} {index:3d}: {format_instruction(instruction)}")
    return "\n".join(lines)
