"""The default rule catalog of the logical optimizer.

Every rule is a pure function ``QueryTree -> QueryTree | None`` registered
under a stable name (the names appear in fire counters, traces, EXPLAIN
docs and the ``OptimizerOptions.rules`` subset switch):

* ``decompose-selection`` — flatten the WHERE conjunction into a canonical
  conjunct list and order it by classification: single-binding selections
  (grouped per binding, most selective layer for the physical planner)
  before residual multi-binding predicates.
* ``push-join-conditions`` — move equi-join conjuncts (``A.x = B.y``) out
  of the selection predicate into the tree's join-condition list, where the
  physical planner reads join edges from.
* ``simplify-predicate`` — constant propagation, constant folding, boolean
  identities and comparison-negation push-through, by round-tripping the
  predicate through :mod:`repro.core.analysis.simplify` (see
  :mod:`repro.core.optimizer.bridge`).
* ``merge-ranges`` — merge comparisons of one column against literals:
  redundant bounds are dropped (``x > 3 AND x > 5`` → ``x > 5``) and
  incompatible ones collapse the predicate to ``FALSE``
  (``x = 5 AND x = 6``).
* ``eliminate-duplicates`` — drop duplicate conjuncts and duplicate
  (including mirrored) join conditions; a ``FALSE`` conjunct absorbs the
  whole predicate.
* ``prune-projection`` — compute, per binding, the set of columns consumed
  by the query's outputs, predicates and ordering, and record it on the
  tree so SQL generation can narrow entity SELECT lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.analysis.simplify import simplify
from repro.core.optimizer import bridge
from repro.core.optimizer.framework import Rule, RuleContext
from repro.core.querytree.nodes import (
    ColumnOutput,
    EntityOutput,
    Output,
    PairOutput,
    QueryTree,
    SqlBinary,
    SqlColumn,
    SqlExpr,
    SqlLiteral,
    TupleOutput,
    clone_tree,
    sql_expr_columns,
    sql_expr_references,
)


# -- conjunction helpers ----------------------------------------------------------------


def split_conjuncts(expression: Optional[SqlExpr]) -> list[SqlExpr]:
    """Flatten a (possibly nested) AND chain into its conjuncts."""
    if expression is None:
        return []
    if isinstance(expression, SqlBinary) and expression.op == "AND":
        return split_conjuncts(expression.left) + split_conjuncts(expression.right)
    return [expression]


def and_conjuncts(conjuncts: Sequence[SqlExpr]) -> Optional[SqlExpr]:
    """Rebuild a left-leaning AND chain (``None`` for the empty conjunction)."""
    result: Optional[SqlExpr] = None
    for conjunct in conjuncts:
        result = conjunct if result is None else SqlBinary("AND", result, conjunct)
    return result


# -- conjunct classification ------------------------------------------------------------


@dataclass
class PredicateClassification:
    """WHERE conjuncts sorted into the three classes the optimizer uses."""

    #: Equi-join conjuncts ``A.x = B.y`` between two different bindings.
    join_conditions: list[SqlBinary] = field(default_factory=list)
    #: Conjuncts referencing exactly one binding, keyed by its alias.
    selections: dict[str, list[SqlExpr]] = field(default_factory=dict)
    #: Everything else: multi-binding or binding-free conjuncts.
    residual: list[SqlExpr] = field(default_factory=list)


def is_join_condition(conjunct: SqlExpr) -> bool:
    """``A.x = B.y`` with two *different* binding aliases?"""
    return (
        isinstance(conjunct, SqlBinary)
        and conjunct.op == "="
        and isinstance(conjunct.left, SqlColumn)
        and isinstance(conjunct.right, SqlColumn)
        and conjunct.left.binding != conjunct.right.binding
    )


def classify_conjuncts(where: Optional[SqlExpr]) -> PredicateClassification:
    """Classify the top-level conjuncts of a selection predicate."""
    classification = PredicateClassification()
    for conjunct in split_conjuncts(where):
        if is_join_condition(conjunct):
            assert isinstance(conjunct, SqlBinary)
            classification.join_conditions.append(conjunct)
            continue
        aliases = sql_expr_references(conjunct)
        if len(aliases) == 1:
            alias = next(iter(aliases))
            classification.selections.setdefault(alias, []).append(conjunct)
        else:
            classification.residual.append(conjunct)
    return classification


# -- the rules ---------------------------------------------------------------------------


def decompose_selection(tree: QueryTree, context: RuleContext) -> Optional[QueryTree]:
    """Normalise WHERE into classified conjunct order (selections first)."""
    if tree.where is None:
        return None
    classification = classify_conjuncts(tree.where)
    ordered: list[SqlExpr] = []
    for binding in tree.bindings:
        ordered.extend(classification.selections.get(binding.alias, []))
    # Selections on aliases not in the binding list (defensive) and joins
    # stay in place; push-join-conditions moves the joins out afterwards.
    for alias in classification.selections:
        if not any(binding.alias == alias for binding in tree.bindings):
            ordered.extend(classification.selections[alias])
    ordered.extend(classification.join_conditions)
    ordered.extend(classification.residual)
    rebuilt = and_conjuncts(ordered)
    if rebuilt == tree.where:
        return None
    result = clone_tree(tree)
    result.where = rebuilt
    return result


def push_join_conditions(tree: QueryTree, context: RuleContext) -> Optional[QueryTree]:
    """Move equi-join conjuncts from WHERE into the join-condition list."""
    conjuncts = split_conjuncts(tree.where)
    kept: list[SqlExpr] = []
    moved: list[SqlBinary] = []
    for conjunct in conjuncts:
        if is_join_condition(conjunct):
            assert isinstance(conjunct, SqlBinary)
            moved.append(conjunct)
        else:
            kept.append(conjunct)
    if not moved:
        return None
    result = clone_tree(tree)
    result.where = and_conjuncts(kept)
    for condition in moved:
        if not _join_condition_known(result.join_conditions, condition):
            result.join_conditions.append(condition)
    return result


def simplify_predicate(tree: QueryTree, context: RuleContext) -> Optional[QueryTree]:
    """Constant propagation / folding via :mod:`repro.core.analysis.simplify`."""
    if tree.where is None:
        return None
    try:
        simplified = bridge.to_sql(simplify(bridge.to_symbolic(tree.where)))
    except bridge.UnconvertibleExpression:
        return None
    if simplified == tree.where:
        return None
    result = clone_tree(tree)
    result.where = None if simplified == SqlLiteral(True) else simplified
    return result


def merge_ranges(tree: QueryTree, context: RuleContext) -> Optional[QueryTree]:
    """Merge literal comparisons against the same column across conjuncts.

    Only *top-level* conjuncts participate — predicates inside OR branches
    are per-path conditions whose shape the paper's Fig. 12 preserves.
    """
    conjuncts = split_conjuncts(tree.where)
    if len(conjuncts) < 2:
        return None
    merged = _merge_comparison_conjuncts(conjuncts)
    if merged == conjuncts:
        return None
    result = clone_tree(tree)
    result.where = and_conjuncts(merged)
    return result


def eliminate_duplicates(tree: QueryTree, context: RuleContext) -> Optional[QueryTree]:
    """Drop duplicate/true conjuncts, absorb FALSE, dedupe join conditions."""
    changed = False

    conjuncts = split_conjuncts(tree.where)
    deduped: list[SqlExpr] = []
    for conjunct in conjuncts:
        if conjunct == SqlLiteral(True):
            changed = True
            continue
        if conjunct in deduped:
            changed = True
            continue
        deduped.append(conjunct)
    if any(conjunct == SqlLiteral(False) for conjunct in deduped) and deduped != [
        SqlLiteral(False)
    ]:
        deduped = [SqlLiteral(False)]
        changed = True

    join_conditions: list[SqlBinary] = []
    for condition in tree.join_conditions:
        if _join_condition_known(join_conditions, condition):
            changed = True
            continue
        join_conditions.append(condition)

    if not changed:
        return None
    result = clone_tree(tree)
    result.where = and_conjuncts(deduped)
    result.join_conditions = join_conditions
    return result


def prune_projection(tree: QueryTree, context: RuleContext) -> Optional[QueryTree]:
    """Record the per-binding column sets the query actually consumes.

    The SQL generator narrows entity-output SELECT lists to these sets; an
    entity binding always keeps its primary key (identity map, lazy
    completion) and its relationship foreign-key columns (navigation).
    """
    if not context.options.prune_projections:
        return None
    required: dict[str, set[str]] = {binding.alias: set() for binding in tree.bindings}

    def add_expression(expression: SqlExpr) -> None:
        for column in sql_expr_columns(expression):
            required.setdefault(column.binding, set()).add(column.column.lower())

    if tree.where is not None:
        add_expression(tree.where)
    for condition in tree.join_conditions:
        add_expression(condition)
    for expression, _descending in tree.order_by:
        add_expression(expression)

    def add_output(output: Optional[Output]) -> None:
        if output is None:
            return
        if isinstance(output, ColumnOutput):
            add_expression(output.expression)
        elif isinstance(output, EntityOutput):
            entity_mapping = context.mapping.entity(output.entity_name)
            columns = required.setdefault(output.binding, set())
            columns.add(entity_mapping.primary_key.column.lower())
            for relationship in entity_mapping.relationships:
                if relationship.kind == "to_one":
                    columns.add(relationship.local_column.lower())
        elif isinstance(output, PairOutput):
            add_output(output.first)
            add_output(output.second)
        elif isinstance(output, TupleOutput):
            for item in output.items:
                add_output(item)

    add_output(tree.output)

    computed = {alias: frozenset(columns) for alias, columns in required.items()}
    if tree.required_columns == computed:
        return None
    result = clone_tree(tree)
    result.required_columns = computed
    return result


def default_rules(options) -> list[Rule]:
    """The default rule set, in application order."""
    return [
        Rule(
            "decompose-selection",
            "flatten WHERE into classified conjuncts (selections first)",
            decompose_selection,
        ),
        Rule(
            "push-join-conditions",
            "move equi-join conjuncts into the join-condition list",
            push_join_conditions,
        ),
        Rule(
            "simplify-predicate",
            "constant folding and boolean identities (reuses analysis/simplify)",
            simplify_predicate,
        ),
        Rule(
            "merge-ranges",
            "merge literal comparisons on one column; detect contradictions",
            merge_ranges,
        ),
        Rule(
            "eliminate-duplicates",
            "drop duplicate/true conjuncts and duplicate join conditions",
            eliminate_duplicates,
        ),
        Rule(
            "prune-projection",
            "compute per-binding consumed-column sets for narrow SELECT lists",
            prune_projection,
        ),
    ]


# -- range-merge internals ---------------------------------------------------------------


@dataclass
class _ColumnBounds:
    """Accumulated literal constraints on one column."""

    equality: Optional[SqlLiteral] = None
    lower: Optional[tuple[object, bool]] = None  # (value, inclusive)
    upper: Optional[tuple[object, bool]] = None
    not_equal: list[SqlLiteral] = field(default_factory=list)
    contradiction: bool = False


def _comparison_parts(
    conjunct: SqlExpr,
) -> Optional[tuple[SqlColumn, str, SqlLiteral]]:
    """Decompose ``column <op> literal`` / ``literal <op> column`` conjuncts."""
    if not isinstance(conjunct, SqlBinary):
        return None
    op = conjunct.op
    if op not in ("=", "!=", "<", "<=", ">", ">="):
        return None
    if isinstance(conjunct.left, SqlColumn) and isinstance(conjunct.right, SqlLiteral):
        return conjunct.left, op, conjunct.right
    if isinstance(conjunct.left, SqlLiteral) and isinstance(conjunct.right, SqlColumn):
        mirrored = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
        return conjunct.right, mirrored[op], conjunct.left
    return None


def _comparable(left: object, right: object) -> bool:
    if isinstance(left, bool) or isinstance(right, bool):
        return False
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return True
    return isinstance(left, str) and isinstance(right, str)


def _merge_comparison_conjuncts(conjuncts: list[SqlExpr]) -> list[SqlExpr]:
    bounds: dict[SqlColumn, _ColumnBounds] = {}
    order: list[SqlColumn] = []
    passthrough: list[tuple[int, SqlExpr]] = []
    mergeable_position: dict[SqlColumn, int] = {}

    for position, conjunct in enumerate(conjuncts):
        parts = _comparison_parts(conjunct)
        if parts is None:
            passthrough.append((position, conjunct))
            continue
        column, op, literal = parts
        if column not in bounds:
            bounds[column] = _ColumnBounds()
            order.append(column)
            mergeable_position[column] = position
        _absorb(bounds[column], op, literal)

    if any(b.contradiction for b in bounds.values()):
        return [SqlLiteral(False)]

    rebuilt: list[tuple[int, SqlExpr]] = list(passthrough)
    for column in order:
        position = mergeable_position[column]
        for offset, conjunct in enumerate(_render_bounds(column, bounds[column])):
            rebuilt.append((position, conjunct))
    rebuilt.sort(key=lambda pair: pair[0])
    return [conjunct for _, conjunct in rebuilt]


def _absorb(bounds: _ColumnBounds, op: str, literal: SqlLiteral) -> None:
    value = literal.value
    if op == "=":
        if bounds.equality is not None and bounds.equality != literal:
            bounds.contradiction = True
        bounds.equality = literal
    elif op == "!=":
        if literal not in bounds.not_equal:
            bounds.not_equal.append(literal)
    elif op in (">", ">="):
        candidate = (value, op == ">=")
        if bounds.lower is None or _tighter_lower(candidate, bounds.lower):
            bounds.lower = candidate
    elif op in ("<", "<="):
        candidate = (value, op == "<=")
        if bounds.upper is None or _tighter_upper(candidate, bounds.upper):
            bounds.upper = candidate
    _check_consistency(bounds)


def _tighter_lower(candidate: tuple[object, bool], current: tuple[object, bool]) -> bool:
    if not _comparable(candidate[0], current[0]):
        return False
    if candidate[0] != current[0]:
        return candidate[0] > current[0]  # type: ignore[operator]
    return current[1] and not candidate[1]  # strict beats inclusive


def _tighter_upper(candidate: tuple[object, bool], current: tuple[object, bool]) -> bool:
    if not _comparable(candidate[0], current[0]):
        return False
    if candidate[0] != current[0]:
        return candidate[0] < current[0]  # type: ignore[operator]
    return current[1] and not candidate[1]


def _check_consistency(bounds: _ColumnBounds) -> None:
    equality = bounds.equality
    if equality is not None:
        value = equality.value
        if any(
            not_equal.value == value for not_equal in bounds.not_equal
        ):
            bounds.contradiction = True
        if bounds.lower is not None and _comparable(value, bounds.lower[0]):
            low, inclusive = bounds.lower
            if value < low or (value == low and not inclusive):  # type: ignore[operator]
                bounds.contradiction = True
        if bounds.upper is not None and _comparable(value, bounds.upper[0]):
            high, inclusive = bounds.upper
            if value > high or (value == high and not inclusive):  # type: ignore[operator]
                bounds.contradiction = True
    if (
        bounds.lower is not None
        and bounds.upper is not None
        and _comparable(bounds.lower[0], bounds.upper[0])
    ):
        low, low_inclusive = bounds.lower
        high, high_inclusive = bounds.upper
        if low > high or (  # type: ignore[operator]
            low == high and not (low_inclusive and high_inclusive)
        ):
            bounds.contradiction = True


def _render_bounds(column: SqlColumn, bounds: _ColumnBounds) -> list[SqlExpr]:
    conjuncts: list[SqlExpr] = []
    if bounds.equality is not None:
        # Equality subsumes every satisfiable bound (consistency already
        # checked); the not-equal conjuncts are subsumed too.
        conjuncts.append(SqlBinary("=", column, bounds.equality))
        return conjuncts
    if bounds.lower is not None:
        value, inclusive = bounds.lower
        conjuncts.append(
            SqlBinary(">=" if inclusive else ">", column, SqlLiteral(value))  # type: ignore[arg-type]
        )
    if bounds.upper is not None:
        value, inclusive = bounds.upper
        conjuncts.append(
            SqlBinary("<=" if inclusive else "<", column, SqlLiteral(value))  # type: ignore[arg-type]
        )
    for literal in bounds.not_equal:
        conjuncts.append(SqlBinary("!=", column, literal))
    return conjuncts


def _join_condition_known(
    conditions: Sequence[SqlBinary], candidate: SqlBinary
) -> bool:
    """Is ``candidate`` (or its mirror image) already in ``conditions``?"""
    mirrored = SqlBinary(candidate.op, candidate.right, candidate.left)
    return candidate in conditions or mirrored in conditions
