"""The rewrite framework: rules, the fixed-point driver and tracing.

A *rule* is a function from :class:`~repro.core.querytree.nodes.QueryTree`
to ``QueryTree | None``: it returns a **new** tree when it fired (the input
tree is never mutated) and ``None`` when it has nothing to do.  The
:class:`Optimizer` applies the registered rules round-robin until a whole
pass fires nothing — a fixed point — or the pass cap is hit.  Per-rule fire
counters and an optional trace (one :class:`RuleApplication` record per
firing, with the tree printed before and after) make every optimization
decision observable; ``docs/optimizer.md`` is generated from exactly this
trace output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.querytree.nodes import (
    ColumnOutput,
    EntityOutput,
    Output,
    PairOutput,
    QueryTree,
    TupleOutput,
)
from repro.core.sqlgen.dialect import ExpressionRenderer
from repro.orm.mapping import OrmMapping

#: A rewrite rule: new tree when it fired, ``None`` when nothing changed.
RuleFunction = Callable[[QueryTree, "RuleContext"], Optional[QueryTree]]


@dataclass(frozen=True)
class Rule:
    """A named rewrite rule."""

    name: str
    description: str
    transform: RuleFunction


@dataclass
class RuleContext:
    """Everything a rule may consult besides the tree itself."""

    mapping: OrmMapping
    options: "OptimizerOptions"


@dataclass(frozen=True)
class OptimizerOptions:
    """Knobs of the logical optimizer.

    ``optimize=False`` is the ablation switch (the analogue of the physical
    planner's ``PlannerOptions.use_cost_model=False``): the pipeline then
    emits exactly the SQL the unoptimized rewriter always produced —
    full-entity-width SELECT lists and un-normalized predicates.
    """

    #: Master switch: ``False`` skips the optimizer entirely (ablation mode).
    optimize: bool = True
    #: Upper bound on fixed-point passes; each rule must shrink or preserve
    #: the tree, so this is a defensive cap rather than a tuning knob.
    max_passes: int = 10
    #: Record a :class:`RuleApplication` for every rule firing.
    trace: bool = False
    #: Restrict the rule set to these names (``None`` = every default rule).
    rules: Optional[tuple[str, ...]] = None
    #: Narrow entity-output SELECT lists to the consumed columns.  Entities
    #: then materialise from partial rows and lazily complete on first
    #: access to an unloaded field (see ``docs/optimizer.md``).
    prune_projections: bool = True


@dataclass
class RuleApplication:
    """One rule firing, for ``trace`` mode and EXPLAIN-style docs."""

    pass_number: int
    rule: str
    before: str
    after: str


@dataclass
class OptimizationResult:
    """The outcome of optimizing one query tree."""

    tree: QueryTree
    original: QueryTree
    passes: int = 0
    fire_counts: dict[str, int] = field(default_factory=dict)
    trace: list[RuleApplication] = field(default_factory=list)

    @property
    def fired(self) -> bool:
        """True when at least one rule changed the tree."""
        return any(self.fire_counts.values())

    def describe_trace(self) -> str:
        """Readable multi-line rendering of the recorded rule applications."""
        lines: list[str] = []
        for application in self.trace:
            lines.append(
                f"pass {application.pass_number}: {application.rule}"
            )
            lines.append("  before: " + application.before.replace("\n", "\n          "))
            lines.append("  after:  " + application.after.replace("\n", "\n          "))
        return "\n".join(lines)


class Optimizer:
    """Fixed-point driver applying a rule set to query trees."""

    def __init__(
        self,
        mapping: OrmMapping,
        options: Optional[OptimizerOptions] = None,
        rules: Optional[Sequence[Rule]] = None,
    ) -> None:
        from repro.core.optimizer.rules import default_rules

        self._mapping = mapping
        self._options = options or OptimizerOptions()
        selected = list(rules) if rules is not None else default_rules(self._options)
        if self._options.rules is not None:
            wanted = set(self._options.rules)
            selected = [rule for rule in selected if rule.name in wanted]
        self._rules = selected
        self._context = RuleContext(mapping=mapping, options=self._options)

    @property
    def rules(self) -> list[Rule]:
        """The active rule set, in application order."""
        return list(self._rules)

    def optimize(self, tree: QueryTree) -> OptimizationResult:
        """Rewrite ``tree`` to a fixed point of the rule set.

        The input tree is left untouched; the result holds the rewritten
        tree, the original, per-rule fire counters and (in ``trace`` mode)
        one record per rule application.
        """
        result = OptimizationResult(
            tree=tree,
            original=tree,
            fire_counts={rule.name: 0 for rule in self._rules},
        )
        if not self._options.optimize:
            return result

        current = tree
        for pass_number in range(1, self._options.max_passes + 1):
            fired_this_pass = False
            for rule in self._rules:
                rewritten = rule.transform(current, self._context)
                if rewritten is None or rewritten == current:
                    continue
                fired_this_pass = True
                result.fire_counts[rule.name] += 1
                if self._options.trace:
                    result.trace.append(
                        RuleApplication(
                            pass_number=pass_number,
                            rule=rule.name,
                            before=describe_tree(current),
                            after=describe_tree(rewritten),
                        )
                    )
                current = rewritten
            result.passes = pass_number
            if not fired_this_pass:
                break
        result.tree = current
        return result


def describe_tree(tree: QueryTree) -> str:
    """Render a query tree as readable text (used by traces and docs)."""
    renderer = ExpressionRenderer()
    lines = [
        "bindings: "
        + ", ".join(f"{b.alias}={b.entity_name}({b.table})" for b in tree.bindings)
    ]
    lines.append("output: " + (_describe_output(tree.output, renderer) or "-"))
    if tree.where is not None:
        lines.append("where: " + renderer.render(tree.where))
    if tree.join_conditions:
        lines.append(
            "joins: " + " AND ".join(renderer.render(j) for j in tree.join_conditions)
        )
    if tree.order_by:
        parts = [
            renderer.render(expression) + (" DESC" if descending else "")
            for expression, descending in tree.order_by
        ]
        lines.append("order by: " + ", ".join(parts))
    if tree.limit is not None:
        lines.append(f"limit: {tree.limit}")
    if tree.required_columns is not None:
        for alias in sorted(tree.required_columns):
            columns = ", ".join(sorted(tree.required_columns[alias]))
            lines.append(f"required[{alias}]: {columns}")
    return "\n".join(lines)


def _describe_output(output: Optional[Output], renderer: ExpressionRenderer) -> str:
    if output is None:
        return ""
    if isinstance(output, EntityOutput):
        return f"{output.entity_name}@{output.binding}"
    if isinstance(output, ColumnOutput):
        return renderer.render(output.expression)
    if isinstance(output, PairOutput):
        first = _describe_output(output.first, renderer)
        second = _describe_output(output.second, renderer)
        return f"Pair({first}, {second})"
    if isinstance(output, TupleOutput):
        return "(" + ", ".join(_describe_output(i, renderer) for i in output.items) + ")"
    return repr(output)
