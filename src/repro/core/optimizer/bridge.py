"""Round-trip between SQL expression nodes and symbolic expression nodes.

The simplifier (:mod:`repro.core.analysis.simplify`) — constant folding,
boolean identities, double-negation and comparison-negation push-through —
operates on the symbolic :mod:`repro.core.expr.nodes` trees the path
analysis produces.  The optimizer wants those same rewrites *after*
query-tree construction, on :data:`~repro.core.querytree.nodes.SqlExpr`
trees.  Rather than re-implementing the rules, this module converts SQL
expressions losslessly into symbolic expressions (columns become marked
``GetField`` accesses, parameters become marked variables), runs the
existing simplifier, and converts the result back.

Conversion is total in the forward direction; the backward direction raises
:class:`UnconvertibleExpression` when simplification produced a node shape
with no SQL counterpart, in which case the calling rule simply declines to
fire — the unsimplified expression was already correct.
"""

from __future__ import annotations

from repro.core.expr import nodes
from repro.core.querytree.nodes import (
    SqlBinary,
    SqlColumn,
    SqlExpr,
    SqlLiteral,
    SqlNot,
    SqlParam,
)

#: Receiver-name prefix marking a symbolic variable as a binding alias.
_BINDING_MARK = "@binding:"
#: Variable-name prefix marking a symbolic variable as a SQL parameter.
_PARAM_MARK = "@param:"

_SQL_TO_SYMBOLIC_OPS = {
    "=": "==",
    "!=": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
    "AND": "&&",
    "OR": "||",
    "+": "+",
    "-": "-",
    "*": "*",
    "/": "/",
    "%": "%",
}

_SYMBOLIC_TO_SQL_OPS = {symbolic: sql for sql, symbolic in _SQL_TO_SYMBOLIC_OPS.items()}


class UnconvertibleExpression(Exception):
    """A symbolic expression has no SQL expression counterpart."""


def to_symbolic(expression: SqlExpr) -> nodes.Expression:
    """Convert a SQL expression into a symbolic expression tree."""
    if isinstance(expression, SqlLiteral):
        return nodes.Constant(expression.value)
    if isinstance(expression, SqlColumn):
        return nodes.GetField(
            nodes.Var(_BINDING_MARK + expression.binding), expression.column
        )
    if isinstance(expression, SqlParam):
        return nodes.Var(f"{_PARAM_MARK}{expression.index}:{expression.source}")
    if isinstance(expression, SqlNot):
        return nodes.UnaryOp("!", to_symbolic(expression.operand))
    if isinstance(expression, SqlBinary):
        return nodes.BinOp(
            _SQL_TO_SYMBOLIC_OPS[expression.op],
            to_symbolic(expression.left),
            to_symbolic(expression.right),
        )
    raise TypeError(f"unknown SQL expression {expression!r}")


def to_sql(expression: nodes.Expression) -> SqlExpr:
    """Convert a symbolic expression back into a SQL expression.

    Raises :class:`UnconvertibleExpression` for node shapes the SQL
    expression language cannot represent.
    """
    if isinstance(expression, nodes.Constant):
        return SqlLiteral(expression.value)
    if isinstance(expression, nodes.GetField):
        receiver = expression.receiver
        if isinstance(receiver, nodes.Var) and receiver.name.startswith(_BINDING_MARK):
            return SqlColumn(
                binding=receiver.name[len(_BINDING_MARK):], column=expression.field
            )
        raise UnconvertibleExpression(f"field access {expression!r}")
    if isinstance(expression, nodes.Var):
        if expression.name.startswith(_PARAM_MARK):
            index_text, _, source = expression.name[len(_PARAM_MARK):].partition(":")
            return SqlParam(index=int(index_text), source=source)
        raise UnconvertibleExpression(f"free variable {expression!r}")
    if isinstance(expression, nodes.UnaryOp):
        if expression.op == "!":
            return SqlNot(to_sql(expression.operand))
        if expression.op == "neg":
            return SqlBinary("-", SqlLiteral(0), to_sql(expression.operand))
        raise UnconvertibleExpression(f"unary operator {expression.op!r}")
    if isinstance(expression, nodes.BinOp):
        sql_op = _SYMBOLIC_TO_SQL_OPS.get(expression.op)
        if sql_op is None:
            raise UnconvertibleExpression(f"operator {expression.op!r}")
        return SqlBinary(sql_op, to_sql(expression.left), to_sql(expression.right))
    raise UnconvertibleExpression(f"expression {expression!r}")
