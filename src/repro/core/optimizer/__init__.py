"""Rule-based logical optimization of query trees.

This package is the missing stage between query-tree construction
(:mod:`repro.core.querytree`) and SQL generation (:mod:`repro.core.sqlgen`):
a rewrite framework over :class:`~repro.core.querytree.nodes.QueryTree`
(rules as ``QueryTree -> QueryTree | None`` functions, a fixed-point driver
with a pass cap, per-rule fire counters and a trace mode) plus the default
rule catalog — conjunct decomposition and classification, selection pushdown
into join conditions, constant propagation (reusing
:mod:`repro.core.analysis.simplify`), range merging, duplicate/contradiction
elimination and end-to-end projection pruning.

See ``docs/optimizer.md`` for the rule catalog with before/after examples
and ``OptimizerOptions(optimize=False)`` for the ablation switch.
"""

from __future__ import annotations

from repro.core.optimizer.framework import (
    OptimizationResult,
    Optimizer,
    OptimizerOptions,
    Rule,
    RuleApplication,
    RuleContext,
    describe_tree,
)
from repro.core.optimizer.rules import (
    PredicateClassification,
    classify_conjuncts,
    default_rules,
)

__all__ = [
    "OptimizationResult",
    "Optimizer",
    "OptimizerOptions",
    "PredicateClassification",
    "Rule",
    "RuleApplication",
    "RuleContext",
    "classify_conjuncts",
    "default_rules",
    "describe_tree",
]
