"""End-to-end analysis pipeline: TAC method in, generated SQL out.

This is the driver that ties the stages of the paper's Fig. 9 together for a
single method body: loop detection, for-each recognition, side-effect
checking, path enumeration, backward substitution, simplification, query-tree
construction and SQL generation.  Frontends (the mini-JVM rewriter and the
Python ``@query`` decorator) feed TAC into :func:`analyze_method` and decide
what to do with the resulting :class:`RewrittenQuery` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analysis.foreach import ForEachQuery, find_foreach_queries
from repro.core.analysis.paths import LoopPath, enumerate_paths
from repro.core.analysis.sideeffects import check_side_effects
from repro.core.analysis.simplify import simplify
from repro.core.analysis.substitution import PathAnalysis, analyze_path
from repro.core.cfg.graph import build_cfg
from repro.core.expr import nodes
from repro.core.optimizer import OptimizationResult, Optimizer, OptimizerOptions
from repro.core.querytree.builder import QueryTreeBuilder
from repro.core.querytree.nodes import QueryTree
from repro.core.sqlgen.generator import GeneratedSql, SqlGenerator
from repro.core.tac.instructions import Assign
from repro.core.tac.method import TacMethod
from repro.orm.mapping import OrmMapping
from repro.errors import UnsupportedQueryError


@dataclass
class RewrittenQuery:
    """Everything the pipeline learned about one query loop.

    ``tree`` is the *optimized* query tree the SQL was generated from;
    ``optimization`` records what the logical optimizer did to get there
    (original tree, per-rule fire counters and — when the pipeline was
    built with ``OptimizerOptions(trace=True)`` — one record per rule
    application).  With ``OptimizerOptions(optimize=False)`` the optimizer
    is skipped and ``tree`` is the builder's raw output.
    """

    method: TacMethod
    query: ForEachQuery
    paths: list[LoopPath]
    path_analyses: list[PathAnalysis]
    tree: QueryTree
    generated: GeneratedSql
    optimization: OptimizationResult | None = None

    @property
    def sql(self) -> str:
        """The generated SQL text."""
        return self.generated.sql

    @property
    def parameter_sources(self) -> list[str]:
        """Outer variables whose values must be bound at run time."""
        return list(self.generated.parameter_sources)


@dataclass
class AnalysisReport:
    """Outcome of analysing a whole method: queries found plus any loops
    that were skipped and why (useful for diagnostics and tests)."""

    queries: list[RewrittenQuery] = field(default_factory=list)
    skipped: list[tuple[ForEachQuery, str]] = field(default_factory=list)


class QueryllPipeline:
    """The Queryll analysis pipeline bound to one ORM mapping.

    ``optimizer_options`` controls the logical query-tree optimizer that
    runs between query-tree construction and SQL generation.  The default
    applies the full rule set (predicate normalisation, join-condition
    pushdown, constant folding, range merging, projection pruning);
    ``OptimizerOptions(optimize=False)`` is the ablation switch — the exact
    analogue of the physical planner's ``PlannerOptions(use_cost_model=
    False)`` — reproducing the unoptimized SQL of the bare paper pipeline.
    """

    def __init__(
        self,
        mapping: OrmMapping,
        record_trace: bool = False,
        optimizer_options: OptimizerOptions | None = None,
    ) -> None:
        self._mapping = mapping
        self._builder = QueryTreeBuilder(mapping)
        self._generator = SqlGenerator(mapping)
        self._record_trace = record_trace
        self._optimizer_options = optimizer_options or OptimizerOptions()
        self._optimizer = Optimizer(mapping, self._optimizer_options)

    @property
    def mapping(self) -> OrmMapping:
        """The ORM mapping used for interpretation."""
        return self._mapping

    @property
    def optimizer_options(self) -> OptimizerOptions:
        """The logical-optimizer options this pipeline applies."""
        return self._optimizer_options

    # -- analysis ---------------------------------------------------------------------

    def analyze_method(self, method: TacMethod) -> AnalysisReport:
        """Analyse every candidate query loop of ``method``.

        Loops that match the for-each pattern but cannot be translated are
        reported in :attr:`AnalysisReport.skipped` rather than failing the
        whole method — the untranslated loop still executes correctly, just
        inefficiently, exactly as the paper describes.
        """
        method.validate()
        report = AnalysisReport()
        for query in find_foreach_queries(method):
            try:
                report.queries.append(self.analyze_query(method, query))
            except UnsupportedQueryError as error:
                report.skipped.append((query, str(error)))
        return report

    def analyze_query(self, method: TacMethod, query: ForEachQuery) -> RewrittenQuery:
        """Analyse one identified for-each loop into a rewritten query."""
        check_side_effects(method, query)
        cfg = build_cfg(method)
        paths = enumerate_paths(method, cfg, query)
        analyses = []
        for path in paths:
            analysis = analyze_path(method, query, path, record_trace=self._record_trace)
            analysis = PathAnalysis(
                condition=simplify(
                    _inline_constant_locals(method, query, analysis.condition)
                ),
                value=simplify(_inline_constant_locals(method, query, analysis.value)),
                add_method=analysis.add_method,
                trace=analysis.trace,
            )
            analyses.append(analysis)
        tree = self._builder.build(query.source_expression, analyses)
        optimization = self._optimizer.optimize(tree)
        generated = self._generator.generate(optimization.tree)
        return RewrittenQuery(
            method=method,
            query=query,
            paths=paths,
            path_analyses=analyses,
            tree=optimization.tree,
            generated=generated,
            optimization=optimization,
        )


def analyze_method(
    method: TacMethod,
    mapping: OrmMapping,
    record_trace: bool = False,
    optimizer_options: OptimizerOptions | None = None,
) -> list[RewrittenQuery]:
    """Convenience wrapper: analyse ``method`` and return its queries."""
    pipeline = QueryllPipeline(
        mapping, record_trace=record_trace, optimizer_options=optimizer_options
    )
    return pipeline.analyze_method(method).queries


# -- helpers ---------------------------------------------------------------------------


def _inline_constant_locals(
    method: TacMethod, query: ForEachQuery, expression: nodes.Expression
) -> nodes.Expression:
    """Inline pre-loop locals whose unique definition is a constant expression.

    The paper's Fig. 5 assigns ``String country = "Canada"`` before the loop;
    after inlining, the generated WHERE clause can embed the constant (or the
    simplifier folds it), and only genuine method parameters remain as SQL
    ``?`` parameters.
    """
    loop = query.loop
    for _ in range(16):
        replacements: dict[str, nodes.Expression] = {}
        for name in sorted(nodes.expression_variables(expression)):
            if name in method.parameters:
                continue
            definitions = method.definitions_of(name)
            outside = [index for index in definitions if index not in loop.instructions]
            if len(definitions) != 1 or len(outside) != 1:
                continue
            definition = method.instructions[outside[0]]
            assert isinstance(definition, Assign)
            if _is_constant_expression(definition.value):
                replacements[name] = definition.value
        if not replacements:
            return expression
        expression = nodes.substitute(expression, replacements)
    return expression


def _is_constant_expression(expression: nodes.Expression) -> bool:
    if isinstance(expression, nodes.Constant):
        return True
    if isinstance(expression, nodes.BinOp):
        return _is_constant_expression(expression.left) and _is_constant_expression(
            expression.right
        )
    if isinstance(expression, (nodes.UnaryOp, nodes.Cast)):
        return _is_constant_expression(expression.operand)
    return False
