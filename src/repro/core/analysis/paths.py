"""Path enumeration through query loops.

The paper (Section 4, Table 1): *"Queryll breaks loops down into straight
paths to do its analysis.  It does this by examining every control flow path
through a loop that results in a new element being added to the destination
collection."*

A path starts at the loop header (the ``hasNext()`` test), follows
instruction-level control flow inside the loop, and ends at an ``add``/
``addAll`` call on the destination collection.  For every conditional branch
along the way the path records whether the branch was taken, which is what
the backward substitution step turns into the path condition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analysis.foreach import ForEachQuery
from repro.core.cfg.graph import ControlFlowGraph
from repro.core.tac.instructions import ExprStatement, Goto, IfGoto
from repro.core.tac.method import TacMethod
from repro.errors import UnsupportedQueryError

#: Safety bound: a loop body with more than this many paths to the
#: destination collection is rejected rather than analysed (exponential
#: blow-up protection; real query loops have a handful of paths).
MAX_PATHS = 256


@dataclass
class LoopPath:
    """One straight-line path through the loop body ending at an add.

    ``instruction_indexes`` lists the instructions in execution order.
    ``branch_decisions`` maps positions within the path (not instruction
    indexes) of ``IfGoto`` instructions to True (branch taken) or False
    (fall-through).
    """

    instruction_indexes: list[int]
    branch_decisions: dict[int, bool] = field(default_factory=dict)
    add_instruction: int = -1

    def __len__(self) -> int:
        return len(self.instruction_indexes)


def enumerate_paths(
    method: TacMethod, cfg: ControlFlowGraph, query: ForEachQuery
) -> list[LoopPath]:
    """Enumerate every path from the loop header to an add statement."""
    instructions = method.instructions
    loop = query.loop
    start = query.header_instruction

    paths: list[LoopPath] = []
    # Depth-first enumeration.  State: (current index, path so far, decisions).
    stack: list[tuple[int, list[int], dict[int, bool]]] = [(start, [], {})]
    while stack:
        index, prefix, decisions = stack.pop()
        if index not in loop.instructions:
            # The walk left the loop without adding anything: not a path of
            # interest (e.g. the filter rejected the element).
            continue
        if prefix and index == start:
            # Completed an iteration without adding anything; ignore.
            continue
        if index in prefix:
            raise UnsupportedQueryError(
                "the loop body contains an inner cycle; cannot enumerate paths"
            )
        path = prefix + [index]
        instruction = instructions[index]

        if isinstance(instruction, ExprStatement) and index in query.add_instruction_indexes:
            if len(paths) >= MAX_PATHS:
                raise UnsupportedQueryError(
                    f"loop has more than {MAX_PATHS} paths to the destination collection"
                )
            paths.append(
                LoopPath(
                    instruction_indexes=path,
                    branch_decisions=dict(decisions),
                    add_instruction=index,
                )
            )
            # The element has been added; later instructions on this
            # iteration cannot add it again for this path, so stop here.
            continue

        if isinstance(instruction, IfGoto):
            position = len(path) - 1
            taken = dict(decisions)
            taken[position] = True
            not_taken = dict(decisions)
            not_taken[position] = False
            stack.append((instruction.target, path, taken))
            if index + 1 < len(instructions):
                stack.append((index + 1, path, not_taken))
            continue
        if isinstance(instruction, Goto):
            stack.append((instruction.target, path, decisions))
            continue
        if index + 1 < len(instructions):
            stack.append((index + 1, path, decisions))

    # Sort paths by the order of their add instruction, then by length, so the
    # generated SQL's OR clauses come out in a stable, source-like order.
    paths.sort(key=lambda path: (path.add_instruction, len(path)))
    if not paths:
        raise UnsupportedQueryError("no control-flow path reaches the destination add")
    return paths
