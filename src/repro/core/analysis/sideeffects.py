"""Side-effect checking of loop bodies.

The paper requires that a query loop "can have no side-effects beyond adding
elements to the new QuerySet" (and advancing the iterator).  This module
checks that property conservatively: every instruction in the loop must be a
branch, an assignment of a *pure* expression to a local that is not live
after the loop, an iterator operation, or an add to the destination
collection.
"""

from __future__ import annotations

from repro.core.analysis.foreach import ADD_METHODS, ForEachQuery
from repro.core.expr import nodes
from repro.core.tac.instructions import (
    Assign,
    ExprStatement,
    Goto,
    IfGoto,
    Nop,
    Return,
)
from repro.core.tac.method import TacMethod, instruction_expressions
from repro.errors import UnsupportedQueryError

#: Methods assumed to be pure (no observable side effects).  Getter-style
#: methods (``getX``, ``isX``) are additionally allowed by prefix.
PURE_METHODS = frozenset(
    {
        "equals",
        "hasNext",
        "next",
        "iterator",
        "compareTo",
        "length",
        "size",
        "contains",
        "startsWith",
        "endsWith",
        "toLowerCase",
        "toUpperCase",
        "intValue",
        "doubleValue",
        "booleanValue",
        "pairCollection",
        "PairCollection",
        "getFirst",
        "getSecond",
        "all",  # EntityManager.all(Entity) in the Python frontend
    }
)

#: Classes that may be constructed inside a query loop (value objects only).
PURE_CONSTRUCTORS = frozenset({"Pair", "Double", "Integer", "Boolean", "String", "tuple"})


def check_side_effects(method: TacMethod, query: ForEachQuery) -> None:
    """Raise :class:`UnsupportedQueryError` if the loop has side effects."""
    loop = query.loop
    locals_assigned: set[str] = set()

    for index in sorted(loop.instructions):
        instruction = method.instructions[index]
        if isinstance(instruction, (Goto, IfGoto, Nop)):
            continue
        if isinstance(instruction, Return):
            raise UnsupportedQueryError("query loops must not return (premature exit)")
        if isinstance(instruction, Assign):
            _check_pure_expression(instruction.value, query)
            locals_assigned.add(instruction.target)
            continue
        if isinstance(instruction, ExprStatement):
            value = instruction.value
            if (
                isinstance(value, nodes.Call)
                and value.method in ADD_METHODS
                and isinstance(value.receiver, nodes.Var)
                and value.receiver.name == query.dest_var
            ):
                for argument in value.args:
                    _check_pure_expression(argument, query)
                continue
            raise UnsupportedQueryError(
                f"loop contains a statement with side effects: {value!r}"
            )
        raise UnsupportedQueryError(f"unsupported instruction in loop: {instruction!r}")

    _check_loop_locals_not_live_after(method, query, locals_assigned)


def _check_pure_expression(expression: nodes.Expression, query: ForEachQuery) -> None:
    if isinstance(expression, (nodes.Constant, nodes.Var, nodes.SourceEntity)):
        return
    if isinstance(expression, (nodes.BinOp,)):
        _check_pure_expression(expression.left, query)
        _check_pure_expression(expression.right, query)
        return
    if isinstance(expression, (nodes.UnaryOp, nodes.Cast)):
        _check_pure_expression(expression.operand, query)
        return
    if isinstance(expression, nodes.GetField):
        _check_pure_expression(expression.receiver, query)
        return
    if isinstance(expression, nodes.New):
        if expression.class_name not in PURE_CONSTRUCTORS:
            raise UnsupportedQueryError(
                f"constructing {expression.class_name!r} inside a query loop "
                "is a side effect"
            )
        for argument in expression.args:
            _check_pure_expression(argument, query)
        return
    if isinstance(expression, nodes.Call):
        if not _is_pure_method(expression.method):
            raise UnsupportedQueryError(
                f"call to {expression.method!r} inside a query loop may have "
                "side effects"
            )
        if expression.receiver is not None:
            _check_pure_expression(expression.receiver, query)
        for argument in expression.args:
            _check_pure_expression(argument, query)
        return
    raise UnsupportedQueryError(f"unsupported expression in loop: {expression!r}")


def _is_pure_method(name: str) -> bool:
    # Static calls may be qualified with a class name (Pair.PairCollection).
    name = name.split(".")[-1]
    if name in PURE_METHODS:
        return True
    if name.startswith("get") and len(name) > 3:
        return True
    if name.startswith("is") and len(name) > 2:
        return True
    if name.startswith("all") and len(name) > 3:
        return True
    return False


def _check_loop_locals_not_live_after(
    method: TacMethod, query: ForEachQuery, locals_assigned: set[str]
) -> None:
    """Locals written inside the loop must not be read after it; otherwise
    removing the loop would change the program."""
    loop = query.loop
    after_indexes = [
        index
        for index in range(len(method.instructions))
        if index not in loop.instructions and index >= query.loop.exit_instruction
    ]
    read_after: set[str] = set()
    for index in after_indexes:
        for expression in instruction_expressions(method.instructions[index]):
            read_after.update(nodes.expression_variables(expression))
    leaked = (locals_assigned & read_after) - {query.dest_var}
    if leaked:
        raise UnsupportedQueryError(
            "locals assigned in the query loop are used after it: "
            + ", ".join(sorted(leaked))
        )
