"""Expression simplification.

Java bytecode can only branch on integer conditions, so a source-level
``name.equals("LA")`` turns into "compare, producing an int, then compare the
int with 0" — the redundant comparisons visible in the paper's Table 2.
*"These extra comparisons can confuse some SQL implementations, so Queryll
always performs a simplification step on the final expression to remove
them."*

The rules implemented here:

* ``x.equals(y)``                      -> ``x == y``
* ``(bool-expr) != 0`` / ``== 1``      -> ``bool-expr``
* ``(bool-expr) == 0`` / ``!= 1``      -> ``NOT bool-expr`` (pushed inward)
* ``NOT (a == b)``                     -> ``a != b`` (and the other comparisons)
* ``NOT NOT e``                        -> ``e``
* constant folding of boolean/arithmetic operations on constants
* identity rules for AND/OR with true/false
"""

from __future__ import annotations

from repro.core.expr import nodes

_COMPARISON_NEGATION = {
    "==": "!=",
    "!=": "==",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}

_COMPARISON_OPS = frozenset(_COMPARISON_NEGATION)
_BOOLEAN_OPS = frozenset({"&&", "||"}) | _COMPARISON_OPS

#: Upper bound on simplification passes; each pass shrinks or preserves the
#: tree so this is simply a defensive cap.
_MAX_PASSES = 50


def simplify(expression: nodes.Expression) -> nodes.Expression:
    """Simplify ``expression`` to a fixpoint."""
    for _ in range(_MAX_PASSES):
        simplified = _simplify_once(expression)
        if simplified == expression:
            return simplified
        expression = simplified
    return expression


def negate(expression: nodes.Expression) -> nodes.Expression:
    """Logical negation, pushed through comparisons where possible."""
    return simplify(nodes.UnaryOp("!", expression))


def is_boolean_expression(expression: nodes.Expression) -> bool:
    """Heuristic: does this expression produce a boolean (0/1) value?"""
    if isinstance(expression, nodes.Constant):
        return isinstance(expression.value, bool)
    if isinstance(expression, nodes.BinOp):
        return expression.op in _BOOLEAN_OPS
    if isinstance(expression, nodes.UnaryOp):
        return expression.op == "!"
    if isinstance(expression, nodes.Call):
        name = expression.method
        return name in {"equals", "contains", "startsWith", "endsWith", "hasNext"} or (
            name.startswith("is") and len(name) > 2
        )
    return False


# -- internals ------------------------------------------------------------------


def _simplify_once(expression: nodes.Expression) -> nodes.Expression:
    if isinstance(expression, (nodes.Constant, nodes.Var, nodes.SourceEntity)):
        return expression
    if isinstance(expression, nodes.Cast):
        return nodes.Cast(expression.type_name, _simplify_once(expression.operand))
    if isinstance(expression, nodes.GetField):
        return nodes.GetField(_simplify_once(expression.receiver), expression.field)
    if isinstance(expression, nodes.New):
        return nodes.New(
            expression.class_name,
            tuple(_simplify_once(arg) for arg in expression.args),
        )
    if isinstance(expression, nodes.Call):
        receiver = (
            _simplify_once(expression.receiver)
            if expression.receiver is not None
            else None
        )
        args = tuple(_simplify_once(arg) for arg in expression.args)
        # x.equals(y)  ->  x == y
        if expression.method == "equals" and receiver is not None and len(args) == 1:
            return nodes.BinOp("==", receiver, args[0])
        return nodes.Call(receiver, expression.method, args)
    if isinstance(expression, nodes.UnaryOp):
        return _simplify_unary(expression)
    if isinstance(expression, nodes.BinOp):
        return _simplify_binop(expression)
    raise TypeError(f"unknown expression node {expression!r}")


def _simplify_unary(expression: nodes.UnaryOp) -> nodes.Expression:
    operand = _simplify_once(expression.operand)
    if expression.op == "neg":
        if isinstance(operand, nodes.Constant) and isinstance(
            operand.value, (int, float)
        ) and not isinstance(operand.value, bool):
            return nodes.Constant(-operand.value)
        return nodes.UnaryOp("neg", operand)
    # Logical not.
    if isinstance(operand, nodes.Constant):
        return nodes.Constant(not _as_bool(operand.value))
    if (
        isinstance(operand, nodes.UnaryOp)
        and operand.op == "!"
        and is_boolean_expression(operand.operand)
    ):
        # Double negation can only be dropped for boolean-valued operands:
        # !!x normalises an arbitrary int to 0/1, which x itself would not.
        return operand.operand
    if isinstance(operand, nodes.BinOp) and operand.op in _COMPARISON_NEGATION:
        return nodes.BinOp(
            _COMPARISON_NEGATION[operand.op], operand.left, operand.right
        )
    return nodes.UnaryOp("!", operand)


def _simplify_binop(expression: nodes.BinOp) -> nodes.Expression:
    left = _simplify_once(expression.left)
    right = _simplify_once(expression.right)
    op = expression.op

    # Constant folding for fully constant operands.
    if isinstance(left, nodes.Constant) and isinstance(right, nodes.Constant):
        folded = _fold_constants(op, left.value, right.value)
        if folded is not None:
            return folded

    if op in ("&&", "||"):
        return _simplify_logical(op, left, right)

    if op in ("==", "!="):
        # Remove the redundant integer comparison introduced by bytecode
        # branches: (bool-expr) != 0 -> bool-expr, (bool-expr) == 0 -> NOT ...
        for boolean_side, constant_side in ((left, right), (right, left)):
            if not isinstance(constant_side, nodes.Constant):
                continue
            if not is_boolean_expression(boolean_side):
                continue
            constant = constant_side.value
            if constant in (0, False):
                if op == "!=":
                    return boolean_side
                return _simplify_unary(nodes.UnaryOp("!", boolean_side))
            if constant in (1, True):
                if op == "==":
                    return boolean_side
                return _simplify_unary(nodes.UnaryOp("!", boolean_side))
    return nodes.BinOp(op, left, right)


def _simplify_logical(
    op: str, left: nodes.Expression, right: nodes.Expression
) -> nodes.Expression:
    """Identities for AND/OR with constant operands.

    Short-circuiting to a constant (``x && false`` -> ``false``) is always
    sound, but dropping the constant (``true && x`` -> ``x``) is only sound
    when ``x`` is itself boolean-valued: ``&&`` normalises its result to a
    boolean, which a bare integer operand would not.
    """
    if isinstance(left, nodes.Constant):
        left_value = _as_bool(left.value)
        if op == "&&":
            if not left_value:
                return nodes.Constant(False)
            if is_boolean_expression(right):
                return right
        else:
            if left_value:
                return nodes.Constant(True)
            if is_boolean_expression(right):
                return right
    if isinstance(right, nodes.Constant):
        right_value = _as_bool(right.value)
        if op == "&&":
            if not right_value:
                return nodes.Constant(False)
            if is_boolean_expression(left):
                return left
        else:
            if right_value:
                return nodes.Constant(True)
            if is_boolean_expression(left):
                return left
    return nodes.BinOp(op, left, right)


def _fold_constants(
    op: str, left: object, right: object
) -> nodes.Expression | None:
    try:
        if op == "&&":
            return nodes.Constant(_as_bool(left) and _as_bool(right))
        if op == "||":
            return nodes.Constant(_as_bool(left) or _as_bool(right))
        if op == "==":
            return nodes.Constant(left == right)
        if op == "!=":
            return nodes.Constant(left != right)
        if op == "<":
            return nodes.Constant(left < right)  # type: ignore[operator]
        if op == "<=":
            return nodes.Constant(left <= right)  # type: ignore[operator]
        if op == ">":
            return nodes.Constant(left > right)  # type: ignore[operator]
        if op == ">=":
            return nodes.Constant(left >= right)  # type: ignore[operator]
        if op == "+":
            return nodes.Constant(left + right)  # type: ignore[operator]
        if op == "-":
            return nodes.Constant(left - right)  # type: ignore[operator]
        if op == "*":
            return nodes.Constant(left * right)  # type: ignore[operator]
        if op == "/":
            if right == 0:
                return None
            if isinstance(left, int) and isinstance(right, int):
                quotient = abs(left) // abs(right)
                return nodes.Constant(
                    quotient if (left >= 0) == (right >= 0) else -quotient
                )
            return nodes.Constant(left / right)  # type: ignore[operator]
        if op == "%":
            if right == 0:
                return None
            return nodes.Constant(left % right)  # type: ignore[operator]
    except TypeError:
        return None
    return None


def _as_bool(value: object) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    return bool(value)
