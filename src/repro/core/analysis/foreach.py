"""Recognition of the for-each-over-a-collection pattern inside loops.

A for-each loop over a Java Collection compiles to code that creates an
Iterator, then repeatedly calls ``hasNext()`` / ``next()`` (instructions 2, 4,
15 and 16 in the paper's Fig. 11).  Both of our frontends (mini-JVM bytecode
and CPython bytecode) are lowered into exactly this shape, so a single
recogniser serves both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.cfg.graph import ControlFlowGraph, build_cfg
from repro.core.cfg.loops import Loop, find_loops
from repro.core.expr import nodes
from repro.core.tac.instructions import Assign, ExprStatement, IfGoto
from repro.core.tac.method import TacMethod
from repro.errors import UnsupportedQueryError

#: Method names treated as "add an element to the destination collection".
ADD_METHODS = frozenset({"add", "addAll"})


@dataclass
class ForEachQuery:
    """A loop identified as a candidate query.

    Attributes mirror the paper's terminology: the *source collection* is the
    collection being iterated, the *destination collection* the one elements
    are added to.
    """

    loop: Loop
    iterator_var: str
    element_var: Optional[str]
    source_expression: nodes.Expression
    dest_var: str
    add_instruction_indexes: list[int] = field(default_factory=list)
    header_instruction: int = 0


def find_foreach_queries(method: TacMethod) -> list[ForEachQuery]:
    """Find every loop in ``method`` that matches the for-each query pattern.

    Loops that contain inner loops, use several iterators, or add to several
    destination collections are skipped (the rewriter leaves them alone, as
    the paper's tool would).
    """
    cfg = build_cfg(method)
    loops = find_loops(cfg)
    queries: list[ForEachQuery] = []
    for loop in loops:
        if _is_nested(loop, loops):
            continue
        try:
            query = _match_foreach(method, cfg, loop)
        except UnsupportedQueryError:
            continue
        if query is not None:
            queries.append(query)
    return queries


def match_loop(method: TacMethod, cfg: ControlFlowGraph, loop: Loop) -> ForEachQuery:
    """Match a specific loop, raising :class:`UnsupportedQueryError` with a
    reason when the pattern does not apply."""
    query = _match_foreach(method, cfg, loop)
    if query is None:
        raise UnsupportedQueryError("loop does not match the for-each pattern")
    return query


# -- internals ----------------------------------------------------------------


def _is_nested(loop: Loop, loops: list[Loop]) -> bool:
    for other in loops:
        if other is loop:
            continue
        if loop.blocks < other.blocks:
            return True
    return False


def _match_foreach(
    method: TacMethod, cfg: ControlFlowGraph, loop: Loop
) -> Optional[ForEachQuery]:
    instructions = method.instructions

    iterator_vars: set[str] = set()
    element_var: Optional[str] = None
    has_next_indexes: list[int] = []
    next_indexes: list[int] = []
    add_indexes: list[int] = []
    dest_vars: set[str] = set()

    for index in sorted(loop.instructions):
        instruction = instructions[index]
        if isinstance(instruction, Assign) and isinstance(
            _unwrap_casts(instruction.value), nodes.Call
        ):
            call = _unwrap_casts(instruction.value)
            assert isinstance(call, nodes.Call)
            if call.method == "hasNext" and isinstance(call.receiver, nodes.Var):
                iterator_vars.add(call.receiver.name)
                has_next_indexes.append(index)
            elif call.method == "next" and isinstance(call.receiver, nodes.Var):
                iterator_vars.add(call.receiver.name)
                next_indexes.append(index)
                element_var = instruction.target
        elif isinstance(instruction, ExprStatement) and isinstance(
            instruction.value, nodes.Call
        ):
            call = instruction.value
            if call.method in ADD_METHODS and isinstance(call.receiver, nodes.Var):
                add_indexes.append(index)
                dest_vars.add(call.receiver.name)

    if not has_next_indexes or not next_indexes:
        return None
    if len(iterator_vars) != 1:
        raise UnsupportedQueryError(
            "loop iterates more than one collection (nested iteration "
            "is not supported)"
        )
    if not add_indexes:
        raise UnsupportedQueryError(
            "loop never adds elements to a destination collection"
        )
    if len(dest_vars) != 1:
        raise UnsupportedQueryError(
            "loop adds elements to more than one destination collection"
        )

    iterator_var = next(iter(iterator_vars))
    dest_var = next(iter(dest_vars))

    if iterator_var in _assigned_in(method, loop):
        raise UnsupportedQueryError("the iterator variable is reassigned in the loop")
    if dest_var in _assigned_in(method, loop):
        raise UnsupportedQueryError("the destination collection is reassigned in the loop")

    source_expression = _resolve_source_collection(method, loop, iterator_var)
    dest_definition = _sole_definition_before(method, loop, dest_var)
    if dest_definition is None and dest_var not in method.parameters:
        raise UnsupportedQueryError(
            "the destination collection is not defined before the loop"
        )

    header_instruction = cfg.block(loop.header).start
    return ForEachQuery(
        loop=loop,
        iterator_var=iterator_var,
        element_var=element_var,
        source_expression=source_expression,
        dest_var=dest_var,
        add_instruction_indexes=add_indexes,
        header_instruction=header_instruction,
    )


def _unwrap_casts(expression: nodes.Expression) -> nodes.Expression:
    """Strip Cast wrappers (``(Office) it.next()`` is still an iterator call)."""
    while isinstance(expression, nodes.Cast):
        expression = expression.operand
    return expression


def _assigned_in(method: TacMethod, loop: Loop) -> set[str]:
    names: set[str] = set()
    for index in loop.instructions:
        instruction = method.instructions[index]
        if isinstance(instruction, Assign):
            names.add(instruction.target)
    return names


def _sole_definition_before(
    method: TacMethod, loop: Loop, name: str
) -> Optional[Assign]:
    definitions = [
        index
        for index in method.definitions_of(name)
        if index not in loop.instructions
    ]
    if len(definitions) != 1:
        return None
    return method.instructions[definitions[0]]  # type: ignore[return-value]


def _resolve_source_collection(
    method: TacMethod, loop: Loop, iterator_var: str
) -> nodes.Expression:
    """Trace the iterator back to the collection expression it came from.

    The iterator must be created by ``it = <collection>.iterator()`` outside
    the loop; the collection expression is then resolved by chasing unique
    definitions of intermediate temporaries (``$r12 = em.allOffice()``).
    """
    definitions = [
        index
        for index in method.definitions_of(iterator_var)
        if index not in loop.instructions
    ]
    if len(definitions) != 1:
        raise UnsupportedQueryError(
            "cannot determine where the loop's iterator comes from"
        )
    definition = method.instructions[definitions[0]]
    assert isinstance(definition, Assign)
    value = definition.value
    if isinstance(value, nodes.Var):
        # Jimple-style code may copy the iterator through a temporary
        # ($it = $r2 where $r2 = coll.iterator()); chase the definition.
        value = resolve_outside_expression(method, loop, value)
    if not (isinstance(value, nodes.Call) and value.method == "iterator"):
        raise UnsupportedQueryError("the loop's iterator is not created from a collection")
    collection = value.receiver
    if collection is None:
        raise UnsupportedQueryError("iterator() has no receiver")
    return resolve_outside_expression(method, loop, collection)


def resolve_outside_expression(
    method: TacMethod, loop: Loop, expression: nodes.Expression
) -> nodes.Expression:
    """Chase unique pre-loop definitions of temporaries in ``expression``.

    Parameters and locals with several definitions are left as variables (the
    query generator treats them as outside variables).
    """
    for _ in range(64):  # defensive bound against definition cycles
        replaced = False
        replacements: dict[str, nodes.Expression] = {}
        for name in sorted(nodes.expression_variables(expression)):
            if name in method.parameters:
                continue
            definitions = [
                index
                for index in method.definitions_of(name)
                if index not in loop.instructions
            ]
            if len(definitions) != 1 or method.definitions_of(name) != definitions:
                continue
            definition = method.instructions[definitions[0]]
            assert isinstance(definition, Assign)
            value = definition.value
            if isinstance(value, nodes.Var) and value.name == name:
                continue
            replacements[name] = value
            replaced = True
        if not replaced:
            return expression
        expression = nodes.substitute(expression, replacements)
    return expression
