"""Backward symbolic substitution over loop paths (the paper's Table 2).

For each path the analysis determines "what the values of local variables
need to be for the path to be followed": every conditional branch contributes
a constraint (the branch condition or its negation), the constraints are
ANDed together, and then the instructions of the path are walked backward,
substituting right-hand sides for assigned variables, until the expression is
phrased purely in terms of constants, outside variables and entries from the
source collection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analysis.foreach import ForEachQuery
from repro.core.analysis.paths import LoopPath
from repro.core.analysis.simplify import simplify
from repro.core.expr import nodes
from repro.core.expr.printer import to_text
from repro.core.tac.instructions import Assign, ExprStatement, IfGoto
from repro.core.tac.method import TacMethod
from repro.errors import UnsupportedQueryError


@dataclass
class PathAnalysis:
    """The result of analysing one path.

    ``condition`` describes when the path executes; ``value`` is the
    expression added to the destination collection; ``add_method`` is either
    ``add`` or ``addAll``.  ``trace`` records the intermediate expressions of
    the backward walk (Table 2 of the paper) for documentation benchmarks.
    """

    condition: nodes.Expression
    value: nodes.Expression
    add_method: str
    trace: list[str] = field(default_factory=list)


@dataclass
class _Tracked:
    """An expression being rewritten, tagged with the path position at which
    it was introduced (substitution only applies to instructions that come
    before that position)."""

    position: int
    expression: nodes.Expression
    role: str  # "constraint" or "value"


def analyze_path(
    method: TacMethod,
    query: ForEachQuery,
    path: LoopPath,
    record_trace: bool = False,
) -> PathAnalysis:
    """Run backward substitution over ``path`` and simplify the results."""
    instructions = method.instructions
    indexes = path.instruction_indexes

    tracked: list[_Tracked] = []

    # 1. Constraints from every conditional branch along the path.
    for position, index in enumerate(indexes):
        instruction = instructions[index]
        if isinstance(instruction, IfGoto) and position in path.branch_decisions:
            condition = instruction.condition
            if not path.branch_decisions[position]:
                condition = nodes.UnaryOp("!", condition)
            tracked.append(
                _Tracked(position=position, expression=condition, role="constraint")
            )

    # 2. The value being added to the destination collection.
    add_instruction = instructions[indexes[-1]]
    if not isinstance(add_instruction, ExprStatement) or not isinstance(
        add_instruction.value, nodes.Call
    ):
        raise UnsupportedQueryError("path does not end in an add to the destination")
    add_call = add_instruction.value
    if len(add_call.args) != 1:
        raise UnsupportedQueryError("add()/addAll() must take exactly one argument")
    tracked.append(
        _Tracked(position=len(indexes) - 1, expression=add_call.args[0], role="value")
    )

    trace: list[str] = []
    if record_trace:
        trace.append("Initial: " + _render_state(tracked))

    # 3. Backward walk, substituting assignments into younger expressions.
    for position in range(len(indexes) - 1, -1, -1):
        instruction = instructions[indexes[position]]
        if not isinstance(instruction, Assign):
            continue
        replacements = {instruction.target: instruction.value}
        changed = False
        for item in tracked:
            if item.position > position:
                new_expression = nodes.substitute(item.expression, replacements)
                if new_expression is not item.expression:
                    item.expression = new_expression
                    changed = True
        if record_trace and changed:
            trace.append(
                f"{indexes[position]:3d}: {instruction.target} = "
                f"{to_text(instruction.value)}  =>  {_render_state(tracked)}"
            )

    # 4. Replace iterator.next() with the source-collection entry and drop
    #    hasNext() constraints (they express iteration, not selection).
    source_entity = nodes.SourceEntity(query.source_expression)
    condition_parts: list[nodes.Expression] = []
    value_expression: nodes.Expression | None = None
    for item in tracked:
        expression = _replace_iterator_next(
            item.expression, query.iterator_var, source_entity
        )
        if item.role == "constraint":
            if _mentions_has_next(expression):
                continue
            condition_parts.append(expression)
        else:
            value_expression = expression

    assert value_expression is not None
    condition: nodes.Expression = nodes.Constant(True)
    for part in condition_parts:
        condition = (
            part
            if isinstance(condition, nodes.Constant) and condition.value is True
            else nodes.BinOp("&&", condition, part)
        )

    simplified_condition = simplify(condition)
    simplified_value = simplify(value_expression)
    if record_trace:
        trace.append("Simplification: " + to_text(simplified_condition))

    _check_resolved(method, query, simplified_condition)
    _check_resolved(method, query, simplified_value)

    return PathAnalysis(
        condition=simplified_condition,
        value=simplified_value,
        add_method=add_call.method,
        trace=trace,
    )


# -- helpers -------------------------------------------------------------------


def _render_state(tracked: list[_Tracked]) -> str:
    constraints = [to_text(item.expression) for item in tracked if item.role == "constraint"]
    return " AND ".join(constraints) if constraints else "true"


def _replace_iterator_next(
    expression: nodes.Expression, iterator_var: str, replacement: nodes.Expression
) -> nodes.Expression:
    """Rewrite ``it.next()`` into the source-entity marker, recursively."""
    if isinstance(expression, nodes.Call):
        if (
            expression.method == "next"
            and isinstance(expression.receiver, nodes.Var)
            and expression.receiver.name == iterator_var
        ):
            return replacement
        receiver = (
            _replace_iterator_next(expression.receiver, iterator_var, replacement)
            if expression.receiver is not None
            else None
        )
        args = tuple(
            _replace_iterator_next(arg, iterator_var, replacement)
            for arg in expression.args
        )
        return nodes.Call(receiver, expression.method, args)
    if isinstance(expression, nodes.BinOp):
        return nodes.BinOp(
            expression.op,
            _replace_iterator_next(expression.left, iterator_var, replacement),
            _replace_iterator_next(expression.right, iterator_var, replacement),
        )
    if isinstance(expression, nodes.UnaryOp):
        return nodes.UnaryOp(
            expression.op,
            _replace_iterator_next(expression.operand, iterator_var, replacement),
        )
    if isinstance(expression, nodes.Cast):
        return nodes.Cast(
            expression.type_name,
            _replace_iterator_next(expression.operand, iterator_var, replacement),
        )
    if isinstance(expression, nodes.GetField):
        return nodes.GetField(
            _replace_iterator_next(expression.receiver, iterator_var, replacement),
            expression.field,
        )
    if isinstance(expression, nodes.New):
        return nodes.New(
            expression.class_name,
            tuple(
                _replace_iterator_next(arg, iterator_var, replacement)
                for arg in expression.args
            ),
        )
    return expression


def _mentions_has_next(expression: nodes.Expression) -> bool:
    if isinstance(expression, nodes.Call) and expression.method == "hasNext":
        return True
    for child in nodes.children(expression):
        if _mentions_has_next(child):
            return True
    return False


def _check_resolved(
    method: TacMethod, query: ForEachQuery, expression: nodes.Expression
) -> None:
    """After substitution the expression may only reference outside variables
    (method parameters or locals defined before the loop); anything else means
    the path analysis failed to eliminate an intermediate."""
    loop_defined = {
        method.instructions[index].target  # type: ignore[union-attr]
        for index in query.loop.instructions
        if isinstance(method.instructions[index], Assign)
    }
    remaining = nodes.expression_variables(expression) & loop_defined
    remaining -= {query.iterator_var}
    if remaining:
        raise UnsupportedQueryError(
            "path analysis could not eliminate loop-local variables: "
            + ", ".join(sorted(remaining))
        )
