"""Query identification: for-each detection, paths, substitution, simplification."""

from __future__ import annotations

from repro.core.analysis.foreach import ForEachQuery, find_foreach_queries
from repro.core.analysis.paths import LoopPath, enumerate_paths
from repro.core.analysis.sideeffects import check_side_effects
from repro.core.analysis.simplify import negate, simplify
from repro.core.analysis.substitution import PathAnalysis, analyze_path

__all__ = [
    "ForEachQuery",
    "LoopPath",
    "PathAnalysis",
    "analyze_path",
    "check_side_effects",
    "enumerate_paths",
    "find_foreach_queries",
    "negate",
    "simplify",
]
