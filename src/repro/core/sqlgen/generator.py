"""SQL text generation from query trees.

The generator turns a :class:`~repro.core.querytree.nodes.QueryTree` into

* the SQL text (SELECT/FROM/WHERE and optional ORDER BY / LIMIT),
* the ordered list of outer variables to bind to the ``?`` parameters, and
* an *output plan* describing how result rows map back to entities, Pairs or
  scalar values (consumed by :mod:`repro.core.runtime`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.core.querytree.nodes import (
    ColumnOutput,
    EntityOutput,
    Output,
    PairOutput,
    QueryTree,
    TupleOutput,
)
from repro.core.sqlgen.dialect import ExpressionRenderer, render_column
from repro.orm.mapping import OrmMapping
from repro.errors import RewriteError


@dataclass(frozen=True)
class EntityOutputPlan:
    """Result rows contain columns of one entity, with a column prefix.

    ``partial`` is True when projection pruning narrowed the SELECT list to
    a subset of the entity's mapped columns; the runtime then materialises a
    *partially loaded* entity that completes itself lazily (and must not
    poison the identity map — see
    :meth:`repro.orm.entity_manager.EntityManager.materialise_entity`).
    """

    entity_name: str
    binding: str
    column_prefix: str
    partial: bool = False


@dataclass(frozen=True)
class ColumnOutputPlan:
    """Result rows contain one computed column under ``label``."""

    label: str


@dataclass(frozen=True)
class PairOutputPlan:
    """Result rows are mapped into :class:`~repro.orm.pair.Pair` objects."""

    first: "OutputPlan"
    second: "OutputPlan"


@dataclass(frozen=True)
class TupleOutputPlan:
    """Result rows are mapped into plain tuples."""

    items: tuple["OutputPlan", ...]


OutputPlan = Union[
    EntityOutputPlan, ColumnOutputPlan, PairOutputPlan, TupleOutputPlan
]


@dataclass
class GeneratedSql:
    """The outcome of SQL generation for one query loop."""

    sql: str
    parameter_sources: list[str]
    output_plan: OutputPlan
    source_entity: str
    select_items: list[str] = field(default_factory=list)

    def describe(self) -> str:
        """Readable multi-line description (used by docs and benches)."""
        lines = [self.sql]
        if self.parameter_sources:
            lines.append(f"-- parameters: {', '.join(self.parameter_sources)}")
        return "\n".join(lines)


class SqlGenerator:
    """Generates SQL text in the paper's style from query trees."""

    def __init__(self, mapping: OrmMapping) -> None:
        self._mapping = mapping

    def generate(self, tree: QueryTree) -> GeneratedSql:
        """Generate the SELECT statement for ``tree``.

        When the optimizer filled in ``tree.required_columns``, entity
        outputs expand to only the consumed columns (projection pruning)
        instead of every mapped column; identical projected expressions and
        repeated entity outputs are emitted once (redundant-projection
        elimination).
        """
        if tree.output is None:
            raise RewriteError("query tree has no output")
        renderer = ExpressionRenderer()

        select_items: list[str] = []
        state = _SelectState(tree=tree)
        output_plan = self._plan_output(tree.output, select_items, renderer, state)

        from_clause = ", ".join(
            f"{binding.table} AS {binding.alias}" for binding in tree.bindings
        )

        where_parts: list[str] = []
        if tree.where is not None:
            where_parts.append(f"( {renderer.render(tree.where)} )")
        for join_condition in tree.join_conditions:
            where_parts.append(
                f"{render_column(join_condition.left)} = "  # type: ignore[arg-type]
                f"{render_column(join_condition.right)}"  # type: ignore[arg-type]
            )

        sql = f"SELECT {', '.join(select_items)} FROM {from_clause}"
        if where_parts:
            sql += " WHERE " + " AND ".join(where_parts)

        if tree.order_by:
            order_items = []
            for expression, descending in tree.order_by:
                rendered = renderer.render(expression)
                order_items.append(rendered + (" DESC" if descending else ""))
            sql += " ORDER BY " + ", ".join(order_items)
        if tree.limit is not None:
            sql += f" LIMIT {tree.limit}"
        if tree.offset is not None:
            sql += f" OFFSET {tree.offset}"

        return GeneratedSql(
            sql=sql,
            parameter_sources=list(renderer.parameter_sources),
            output_plan=output_plan,
            source_entity=tree.bindings[0].entity_name,
            select_items=select_items,
        )

    # -- internals --------------------------------------------------------------------

    def _plan_output(
        self,
        output: Output,
        select_items: list[str],
        renderer: ExpressionRenderer,
        state: "_SelectState",
    ) -> OutputPlan:
        if isinstance(output, ColumnOutput):
            # Deduplicate on the expression *node*, not its rendered text:
            # rendering has a side effect (parameters are recorded in
            # textual order) and distinct parameters all render as "?".
            label = state.column_labels.get(output.expression)
            if label is None:
                label = f"COL{len(state.column_labels)}"
                state.column_labels[output.expression] = label
                select_items.append(
                    f"({renderer.render(output.expression)}) AS {label}"
                )
            return ColumnOutputPlan(label=label.lower())
        if isinstance(output, EntityOutput):
            return self._plan_entity_output(output, select_items, state)
        if isinstance(output, PairOutput):
            first = self._plan_output(output.first, select_items, renderer, state)
            second = self._plan_output(output.second, select_items, renderer, state)
            return PairOutputPlan(first=first, second=second)
        if isinstance(output, TupleOutput):
            return TupleOutputPlan(
                items=tuple(
                    self._plan_output(item, select_items, renderer, state)
                    for item in output.items
                )
            )
        raise RewriteError(f"unknown output shape {output!r}")

    def _plan_entity_output(
        self,
        output: EntityOutput,
        select_items: list[str],
        state: "_SelectState",
    ) -> EntityOutputPlan:
        cached = state.entity_plans.get(output.binding)
        if cached is not None:
            return cached
        entity_mapping = self._mapping.entity(output.entity_name)
        required = None
        if state.tree.required_columns is not None:
            required = state.tree.required_columns.get(output.binding)
        emitted = 0
        for column_field in entity_mapping.fields:
            if required is not None and column_field.column.lower() not in required:
                continue
            alias = f"{output.binding}_{column_field.column}".upper()
            select_items.append(
                f"({output.binding}.{column_field.column.upper()}) AS {alias}"
            )
            emitted += 1
        plan = EntityOutputPlan(
            entity_name=output.entity_name,
            binding=output.binding,
            column_prefix=f"{output.binding.lower()}_",
            partial=emitted < len(entity_mapping.fields),
        )
        state.entity_plans[output.binding] = plan
        return plan


@dataclass
class _SelectState:
    """Per-generation bookkeeping for select-item deduplication."""

    tree: QueryTree
    #: Projected expression node -> allocated ``COLn`` label.
    column_labels: dict[object, str] = field(default_factory=dict)
    #: Binding alias -> already-emitted entity output plan.
    entity_plans: dict[str, "EntityOutputPlan"] = field(default_factory=dict)
