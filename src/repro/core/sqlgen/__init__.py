"""SQL generation from query trees."""

from __future__ import annotations

from repro.core.sqlgen.generator import (
    ColumnOutputPlan,
    EntityOutputPlan,
    GeneratedSql,
    OutputPlan,
    PairOutputPlan,
    SqlGenerator,
    TupleOutputPlan,
)

__all__ = [
    "ColumnOutputPlan",
    "EntityOutputPlan",
    "GeneratedSql",
    "OutputPlan",
    "PairOutputPlan",
    "SqlGenerator",
    "TupleOutputPlan",
]
