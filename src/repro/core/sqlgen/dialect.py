"""Formatting helpers for the generated SQL.

The generated text intentionally mimics the style shown in the paper's
Table 5: parenthesised column references, ``AS COLn`` aliases, the selection
predicate wrapped in redundant parentheses, and join conditions appended with
``AND`` after the WHERE clause.
"""

from __future__ import annotations

from repro.core.querytree.nodes import (
    SqlBinary,
    SqlColumn,
    SqlExpr,
    SqlLiteral,
    SqlNot,
    SqlParam,
)


def render_literal(value: object) -> str:
    """Render a Python literal as a SQL literal."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return repr(value)


def render_column(column: SqlColumn) -> str:
    """Render a column reference as ``ALIAS.COLUMN``."""
    return f"{column.binding}.{column.column.upper()}"


class ExpressionRenderer:
    """Renders SQL expressions, recording parameter order as it goes.

    Parameters are emitted as ``?`` in textual order; ``parameter_sources``
    afterwards lists, for each ``?``, the outer variable the runtime must
    bind.
    """

    def __init__(self) -> None:
        self.parameter_sources: list[str] = []

    def render(self, expression: SqlExpr) -> str:
        if isinstance(expression, SqlLiteral):
            return render_literal(expression.value)
        if isinstance(expression, SqlColumn):
            return f"({render_column(expression)})"
        if isinstance(expression, SqlParam):
            self.parameter_sources.append(expression.source)
            return "?"
        if isinstance(expression, SqlNot):
            return f"(NOT {self.render(expression.operand)})"
        if isinstance(expression, SqlBinary):
            left = self.render(expression.left)
            right = self.render(expression.right)
            if expression.op in ("AND", "OR"):
                return f"({left} {expression.op} {right})"
            return f"({left} {expression.op} {right})"
        raise TypeError(f"unknown SQL expression {expression!r}")
