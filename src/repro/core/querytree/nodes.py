"""Query tree node definitions.

The query tree is the paper's intermediate form between path analysis and SQL
generation: a relational description (bindings, join conditions, selection
predicate, projection outputs, ordering, limit) that the SQL generator can
print as a ``SELECT .. FROM .. WHERE ..`` statement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


# -- scalar SQL expressions ------------------------------------------------------


@dataclass(frozen=True)
class SqlColumn:
    """A column of one of the query's entity bindings."""

    binding: str
    column: str


@dataclass(frozen=True)
class SqlLiteral:
    """A literal constant."""

    value: Union[int, float, str, bool, None]


@dataclass(frozen=True)
class SqlParam:
    """A runtime parameter (``?``); ``source`` names the outer variable the
    frontend must bind when executing the query."""

    index: int
    source: str


@dataclass(frozen=True)
class SqlBinary:
    """Binary SQL operation (comparison, arithmetic, AND/OR)."""

    op: str
    left: "SqlExpr"
    right: "SqlExpr"


@dataclass(frozen=True)
class SqlNot:
    """Logical negation."""

    operand: "SqlExpr"


SqlExpr = Union[SqlColumn, SqlLiteral, SqlParam, SqlBinary, SqlNot]


# -- output (projection) shapes ----------------------------------------------------


@dataclass(frozen=True)
class EntityOutput:
    """The query returns whole entities of the given binding."""

    binding: str
    entity_name: str


@dataclass(frozen=True)
class ColumnOutput:
    """The query returns a computed scalar column."""

    expression: SqlExpr


@dataclass(frozen=True)
class PairOutput:
    """The query returns :class:`~repro.orm.pair.Pair` objects."""

    first: "Output"
    second: "Output"


@dataclass(frozen=True)
class TupleOutput:
    """The query returns plain tuples (Python-frontend projection)."""

    items: tuple["Output", ...]


Output = Union[EntityOutput, ColumnOutput, PairOutput, TupleOutput]


# -- bindings and the tree -----------------------------------------------------------


@dataclass(frozen=True)
class EntityBinding:
    """One entity participating in the query (one FROM-clause table)."""

    alias: str
    entity_name: str
    table: str


@dataclass
class QueryTree:
    """A complete relational query.

    ``required_columns`` is filled in by the logical optimizer's projection
    pruning (:mod:`repro.core.optimizer`): it maps each binding alias to the
    set of column names the query actually consumes through its outputs,
    predicates and ordering.  ``None`` means "not computed" — the SQL
    generator then expands entity outputs to every mapped column, exactly as
    the unoptimized pipeline always did.
    """

    bindings: list[EntityBinding] = field(default_factory=list)
    where: Optional[SqlExpr] = None
    join_conditions: list[SqlBinary] = field(default_factory=list)
    output: Optional[Output] = None
    order_by: list[tuple[SqlExpr, bool]] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    parameter_sources: list[str] = field(default_factory=list)
    required_columns: Optional[dict[str, frozenset[str]]] = None

    # -- helpers ------------------------------------------------------------------

    def binding(self, alias: str) -> EntityBinding:
        """Look up a binding by alias."""
        for binding in self.bindings:
            if binding.alias == alias:
                return binding
        raise KeyError(f"no binding with alias {alias!r}")

    def add_binding(self, entity_name: str, table: str) -> EntityBinding:
        """Add a new binding with the next free alias (A, B, C, ...)."""
        alias = _alias_for(len(self.bindings))
        binding = EntityBinding(alias=alias, entity_name=entity_name, table=table)
        self.bindings.append(binding)
        return binding

    def add_join_condition(self, condition: SqlBinary) -> None:
        """Record an equi-join condition between two bindings."""
        if condition not in self.join_conditions:
            self.join_conditions.append(condition)

    def output_columns(self) -> list[SqlExpr]:
        """Flatten the output shape into the list of projected expressions
        (entity outputs are excluded: they expand to all columns later)."""
        expressions: list[SqlExpr] = []

        def walk(output: Output) -> None:
            if isinstance(output, ColumnOutput):
                expressions.append(output.expression)
            elif isinstance(output, PairOutput):
                walk(output.first)
                walk(output.second)
            elif isinstance(output, TupleOutput):
                for item in output.items:
                    walk(item)

        if self.output is not None:
            walk(self.output)
        return expressions


def _alias_for(position: int) -> str:
    """A, B, ..., Z, A1, B1, ... — the paper uses single letters."""
    letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    if position < len(letters):
        return letters[position]
    return letters[position % len(letters)] + str(position // len(letters))


def sql_expr_references(expression: SqlExpr) -> set[str]:
    """Aliases referenced by a SQL expression."""
    return {column.binding for column in sql_expr_columns(expression)}


def sql_expr_columns(expression: SqlExpr) -> set[SqlColumn]:
    """Every column reference occurring in a SQL expression."""
    columns: set[SqlColumn] = set()

    def walk(node: SqlExpr) -> None:
        if isinstance(node, SqlColumn):
            columns.add(node)
        elif isinstance(node, SqlBinary):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, SqlNot):
            walk(node.operand)

    walk(expression)
    return columns


def clone_tree(tree: QueryTree) -> QueryTree:
    """Shallow-copy a query tree so a rewrite rule can return a modified
    tree without mutating its input (expressions are immutable, so sharing
    them between the copies is safe)."""
    return QueryTree(
        bindings=list(tree.bindings),
        where=tree.where,
        join_conditions=list(tree.join_conditions),
        output=tree.output,
        order_by=list(tree.order_by),
        limit=tree.limit,
        offset=tree.offset,
        parameter_sources=list(tree.parameter_sources),
        required_columns=(
            dict(tree.required_columns) if tree.required_columns is not None else None
        ),
    )
