"""Interpretation of analysed paths into a relational query tree.

The symbolic expressions produced by backward substitution talk about entity
getters, relationship navigation, outer variables and constants.  This module
maps them onto the ORM mapping: getters become columns, navigation becomes
joins, outer variables become SQL parameters, ``Pair`` construction becomes a
projection — producing a :class:`~repro.core.querytree.nodes.QueryTree` ready
for SQL generation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.core.analysis.substitution import PathAnalysis
from repro.core.expr import nodes
from repro.core.querytree.nodes import (
    ColumnOutput,
    EntityOutput,
    Output,
    PairOutput,
    QueryTree,
    SqlBinary,
    SqlColumn,
    SqlExpr,
    SqlLiteral,
    SqlNot,
    SqlParam,
    TupleOutput,
)
from repro.orm.mapping import OrmMapping
from repro.errors import UnsupportedQueryError

_COMPARISON_MAP = {
    "==": "=",
    "!=": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
}

_ARITHMETIC_OPS = frozenset({"+", "-", "*", "/", "%"})


@dataclass(frozen=True)
class _EntityValue:
    """An intermediate interpretation result denoting a whole entity."""

    alias: str
    entity_name: str


_Interpreted = Union[_EntityValue, SqlColumn, SqlLiteral, SqlParam, SqlBinary, SqlNot]


class QueryTreeBuilder:
    """Builds query trees from analysed paths, given an ORM mapping."""

    def __init__(self, mapping: OrmMapping) -> None:
        self._mapping = mapping

    # -- public API -----------------------------------------------------------------

    def build(
        self,
        source_expression: nodes.Expression,
        path_analyses: Sequence[PathAnalysis],
    ) -> QueryTree:
        """Build the query tree for a loop given its per-path analyses."""
        if not path_analyses:
            raise UnsupportedQueryError("a query needs at least one path")
        entity_name = self.resolve_source_entity(source_expression)
        entity_mapping = self._mapping.entity(entity_name)

        tree = QueryTree()
        tree.add_binding(entity_name, entity_mapping.table)
        state = _BuildState(tree=tree)

        conditions: list[Optional[SqlExpr]] = []
        outputs: list[Output] = []
        for analysis in path_analyses:
            conditions.append(self._build_condition(state, analysis.condition))
            outputs.append(
                self._build_output(state, analysis.value, analysis.add_method)
            )

        first_output = outputs[0]
        for other in outputs[1:]:
            if other != first_output:
                raise UnsupportedQueryError(
                    "every path of a query must add the same kind of value "
                    "to the destination collection"
                )
        tree.output = first_output

        tree.where = _or_conditions(conditions)
        tree.parameter_sources = list(state.parameter_sources)
        return tree

    def resolve_source_entity(self, source_expression: nodes.Expression) -> str:
        """Determine which entity the source collection ranges over.

        Supported shapes: ``em.allClient()`` (Java-style generated accessor)
        and ``em.all(Client)`` / ``em.all('Client')`` (Python-style).
        """
        if isinstance(source_expression, nodes.Call):
            method = source_expression.method
            if method.startswith("all") and len(method) > 3 and not source_expression.args:
                entity_name = method[3:]
                if self._mapping.has_entity(entity_name):
                    return entity_name
            if method == "all" and len(source_expression.args) == 1:
                argument = source_expression.args[0]
                if isinstance(argument, nodes.Var) and self._mapping.has_entity(
                    argument.name
                ):
                    return argument.name
                if isinstance(argument, nodes.Constant) and isinstance(
                    argument.value, str
                ) and self._mapping.has_entity(argument.value):
                    return argument.value
        raise UnsupportedQueryError(
            "cannot determine which entity the source collection iterates over "
            f"(source expression: {source_expression!r})"
        )

    # -- conditions ---------------------------------------------------------------------

    def _build_condition(
        self, state: "_BuildState", condition: nodes.Expression
    ) -> Optional[SqlExpr]:
        """Interpret one path condition into a SQL predicate.

        Returns ``None`` for the always-true condition (an unconditional
        ``add``); the logical optimizer later normalises and prunes the
        combined predicate, so no simplification happens here.
        """
        if isinstance(condition, nodes.Constant) and condition.value is True:
            return None
        interpreted = self._interpret(state, condition)
        if isinstance(interpreted, _EntityValue):
            raise UnsupportedQueryError("a path condition cannot be a whole entity")
        return interpreted

    # -- outputs -------------------------------------------------------------------------

    def _build_output(
        self, state: "_BuildState", value: nodes.Expression, add_method: str
    ) -> Output:
        """Interpret the value a path adds to the destination collection.

        The resulting :class:`Output` shape drives both SQL generation and
        projection pruning: entity outputs expand to column lists (narrowed
        by the optimizer to the consumed columns), column outputs to single
        ``AS COLn`` items.
        """
        if add_method == "addAll":
            return self._build_addall_output(state, value)
        return self._output_of(state, value)

    def _output_of(self, state: "_BuildState", value: nodes.Expression) -> Output:
        """Map an added value onto an output shape (entity, column, Pair,
        tuple), recursing through ``Pair``/tuple construction."""
        if isinstance(value, nodes.New) and value.class_name == "Pair":
            if len(value.args) != 2:
                raise UnsupportedQueryError("Pair construction needs two arguments")
            return PairOutput(
                first=self._output_of(state, value.args[0]),
                second=self._output_of(state, value.args[1]),
            )
        if isinstance(value, nodes.New) and value.class_name == "tuple":
            return TupleOutput(
                items=tuple(self._output_of(state, arg) for arg in value.args)
            )
        interpreted = self._interpret(state, value)
        if isinstance(interpreted, _EntityValue):
            return EntityOutput(
                binding=interpreted.alias, entity_name=interpreted.entity_name
            )
        return ColumnOutput(expression=interpreted)

    def _build_addall_output(
        self, state: "_BuildState", value: nodes.Expression
    ) -> Output:
        """Interpret an ``addAll`` value: a to-many navigation (which joins
        the target entity in) or ``Pair.pairCollection(...)``."""
        # Pair.pairCollection(x, entity.getAccounts()) -> Pair(x, joined entity)
        if isinstance(value, nodes.Call) and value.method.split(".")[-1] in (
            "pairCollection",
            "PairCollection",
            "pair_collection",
        ):
            if len(value.args) != 2:
                raise UnsupportedQueryError("pairCollection needs two arguments")
            first_output = self._output_of(state, value.args[0])
            second_output = self._to_many_output(state, value.args[1])
            return PairOutput(first=first_output, second=second_output)
        # addAll of a to-many navigation directly.
        return self._to_many_output(state, value)

    def _to_many_output(self, state: "_BuildState", value: nodes.Expression) -> Output:
        """Resolve a to-many relationship navigation into a joined entity
        output (``client.getAccounts()`` becomes a binding on Account)."""
        accessor = None
        receiver: Optional[nodes.Expression] = None
        if isinstance(value, nodes.Call) and value.receiver is not None and not value.args:
            accessor = value.method
            receiver = value.receiver
        elif isinstance(value, nodes.GetField):
            accessor = value.field
            receiver = value.receiver
        if accessor is None or receiver is None:
            raise UnsupportedQueryError(
                "addAll can only be used with a to-many relationship navigation "
                "or Pair.pairCollection(...)"
            )
        entity = self._interpret(state, receiver)
        if not isinstance(entity, _EntityValue):
            raise UnsupportedQueryError("to-many navigation requires an entity receiver")
        entity_mapping = self._mapping.entity(entity.entity_name)
        relationship = entity_mapping.relationship_by_accessor(accessor)
        if relationship is None or relationship.kind != "to_many":
            raise UnsupportedQueryError(
                f"{entity.entity_name}.{accessor} is not a to-many relationship"
            )
        joined = state.join(self._mapping, entity, relationship.name, relationship)
        return EntityOutput(binding=joined.alias, entity_name=joined.entity_name)

    # -- expression interpretation ----------------------------------------------------------

    def _interpret(self, state: "_BuildState", expression: nodes.Expression) -> _Interpreted:
        """Translate one symbolic expression into SQL terms.

        Constants become literals, outer variables become parameters,
        getters become columns, to-one navigation adds joins; whole-entity
        values surface as :class:`_EntityValue` so callers can decide
        whether an entity is legal in that position.
        """
        if isinstance(expression, nodes.Constant):
            return SqlLiteral(expression.value)
        if isinstance(expression, nodes.Var):
            return state.parameter(expression.name)
        if isinstance(expression, nodes.SourceEntity):
            binding = state.tree.bindings[0]
            return _EntityValue(alias=binding.alias, entity_name=binding.entity_name)
        if isinstance(expression, nodes.Cast):
            return self._interpret(state, expression.operand)
        if isinstance(expression, nodes.UnaryOp):
            return self._interpret_unary(state, expression)
        if isinstance(expression, nodes.BinOp):
            return self._interpret_binop(state, expression)
        if isinstance(expression, nodes.Call):
            return self._interpret_access(state, expression.receiver, expression.method,
                                          expression.args)
        if isinstance(expression, nodes.GetField):
            return self._interpret_access(state, expression.receiver, expression.field, ())
        if isinstance(expression, nodes.New):
            raise UnsupportedQueryError(
                f"object construction of {expression.class_name!r} is only "
                "supported as the value added to the destination collection"
            )
        raise UnsupportedQueryError(f"cannot translate expression {expression!r} to SQL")

    def _interpret_unary(
        self, state: "_BuildState", expression: nodes.UnaryOp
    ) -> _Interpreted:
        """``!`` becomes ``NOT``; arithmetic negation becomes ``0 - x``."""
        operand = self._interpret(state, expression.operand)
        if isinstance(operand, _EntityValue):
            raise UnsupportedQueryError("cannot apply an operator to a whole entity")
        if expression.op == "!":
            return SqlNot(operand)
        if expression.op == "neg":
            return SqlBinary("-", SqlLiteral(0), operand)
        raise UnsupportedQueryError(f"unsupported unary operator {expression.op!r}")

    def _interpret_binop(
        self, state: "_BuildState", expression: nodes.BinOp
    ) -> _Interpreted:
        """Comparisons, logic and arithmetic; comparing two entities with
        ``==``/``!=`` compares their primary-key columns."""
        left = self._interpret(state, expression.left)
        right = self._interpret(state, expression.right)
        op = expression.op

        if isinstance(left, _EntityValue) or isinstance(right, _EntityValue):
            if (
                op in ("==", "!=")
                and isinstance(left, _EntityValue)
                and isinstance(right, _EntityValue)
            ):
                # Comparing two entities compares their primary keys.
                left_column = self._primary_key_column(left)
                right_column = self._primary_key_column(right)
                return SqlBinary(_COMPARISON_MAP[op], left_column, right_column)
            raise UnsupportedQueryError(
                "entities can only be compared to other entities with == or !="
            )

        if op in ("&&", "||"):
            return SqlBinary("AND" if op == "&&" else "OR", left, right)
        if op in _COMPARISON_MAP:
            return SqlBinary(_COMPARISON_MAP[op], left, right)
        if op in _ARITHMETIC_OPS:
            return SqlBinary(op, left, right)
        raise UnsupportedQueryError(f"unsupported operator {op!r}")

    def _interpret_access(
        self,
        state: "_BuildState",
        receiver: Optional[nodes.Expression],
        accessor: str,
        args: tuple[nodes.Expression, ...],
    ) -> _Interpreted:
        """Resolve a getter/field access against the ORM mapping: a mapped
        field reads as its column, a to-one relationship joins its target
        entity in (reusing the binding on repeated navigation)."""
        if receiver is None:
            raise UnsupportedQueryError(
                f"static call {accessor!r} cannot be translated to SQL"
            )
        if accessor == "equals" and len(args) == 1:
            comparison = nodes.BinOp("==", receiver, args[0])
            return self._interpret_binop(state, comparison)
        if args:
            raise UnsupportedQueryError(
                f"method {accessor!r} with arguments cannot be translated to SQL"
            )
        target = self._interpret(state, receiver)
        if not isinstance(target, _EntityValue):
            raise UnsupportedQueryError(
                f"cannot read {accessor!r} of a non-entity value"
            )
        entity_mapping = self._mapping.entity(target.entity_name)
        field = entity_mapping.field_by_accessor(accessor)
        if field is not None:
            return SqlColumn(binding=target.alias, column=field.column)
        relationship = entity_mapping.relationship_by_accessor(accessor)
        if relationship is not None:
            if relationship.kind != "to_one":
                raise UnsupportedQueryError(
                    f"to-many relationship {accessor!r} can only be used with addAll"
                )
            joined = state.join(self._mapping, target, relationship.name, relationship)
            return _EntityValue(alias=joined.alias, entity_name=joined.entity_name)
        raise UnsupportedQueryError(
            f"{target.entity_name} has no field or relationship {accessor!r}"
        )

    def _primary_key_column(self, entity: _EntityValue) -> SqlColumn:
        """The primary-key column reference of an entity binding."""
        mapping = self._mapping.entity(entity.entity_name)
        return SqlColumn(binding=entity.alias, column=mapping.primary_key.column)


# -- build state -----------------------------------------------------------------------


class _BuildState:
    """Mutable state shared across the paths of one query."""

    def __init__(self, tree: QueryTree) -> None:
        self.tree = tree
        self.parameter_sources: list[str] = []
        self._parameters: dict[str, SqlParam] = {}
        self._joins: dict[tuple[str, str], _EntityValue] = {}

    def parameter(self, name: str) -> SqlParam:
        """Get or create the SQL parameter bound from outer variable ``name``."""
        if name not in self._parameters:
            parameter = SqlParam(index=len(self.parameter_sources), source=name)
            self._parameters[name] = parameter
            self.parameter_sources.append(name)
        return self._parameters[name]

    def join(
        self,
        mapping: OrmMapping,
        source: _EntityValue,
        relationship_name: str,
        relationship,
    ) -> _EntityValue:
        """Get or create the binding for navigating ``relationship`` from
        ``source``, adding the equi-join condition to the tree."""
        key = (source.alias, relationship_name)
        if key in self._joins:
            return self._joins[key]
        target_mapping = mapping.entity(relationship.target_entity)
        binding = self.tree.add_binding(relationship.target_entity, target_mapping.table)
        join_condition = SqlBinary(
            "=",
            SqlColumn(binding=source.alias, column=relationship.local_column),
            SqlColumn(binding=binding.alias, column=relationship.remote_column),
        )
        self.tree.add_join_condition(join_condition)
        joined = _EntityValue(alias=binding.alias, entity_name=binding.entity_name)
        self._joins[key] = joined
        return joined


def _or_conditions(conditions: Sequence[Optional[SqlExpr]]) -> Optional[SqlExpr]:
    """OR together per-path conditions (None meaning "always true")."""
    if any(condition is None for condition in conditions):
        return None
    result: Optional[SqlExpr] = None
    for condition in conditions:
        assert condition is not None
        result = condition if result is None else SqlBinary("OR", result, condition)
    return result
