"""Relational query trees built from analysed query loops."""

from __future__ import annotations

from repro.core.querytree.nodes import (
    ColumnOutput,
    EntityBinding,
    EntityOutput,
    Output,
    PairOutput,
    QueryTree,
    SqlBinary,
    SqlColumn,
    SqlExpr,
    SqlLiteral,
    SqlNot,
    SqlParam,
)
from repro.core.querytree.builder import QueryTreeBuilder

__all__ = [
    "ColumnOutput",
    "EntityBinding",
    "EntityOutput",
    "Output",
    "PairOutput",
    "QueryTree",
    "QueryTreeBuilder",
    "SqlBinary",
    "SqlColumn",
    "SqlExpr",
    "SqlLiteral",
    "SqlNot",
    "SqlParam",
]
