"""Queryll core: the paper's contribution.

The core turns compiled bytecode of query methods into SQL:

1. :mod:`repro.core.tac` — the three-address intermediate representation
   (the analogue of Soot's Jimple).
2. :mod:`repro.core.cfg` — control-flow graph construction, dominators and
   single-entry/single-exit loop detection.
3. :mod:`repro.core.analysis` — for-each pattern recognition, side-effect
   checking, path enumeration, backward symbolic substitution and
   simplification.
4. :mod:`repro.core.expr` — the symbolic expression trees produced by the
   substitution step.
5. :mod:`repro.core.querytree` — interpretation of the symbolic expressions
   against the ORM mapping, producing a relational query tree.
6. :mod:`repro.core.optimizer` — rule-based logical rewriting of query
   trees (predicate normalisation, join pushdown, projection pruning).
7. :mod:`repro.core.sqlgen` — SQL text generation from query trees.
8. :mod:`repro.core.rewriter` / :mod:`repro.core.pipeline` — drivers that tie
   the stages together for a whole method or classfile.
"""

from __future__ import annotations

from repro.core.optimizer import Optimizer, OptimizerOptions
from repro.core.pipeline import QueryllPipeline, RewrittenQuery, analyze_method

__all__ = [
    "Optimizer",
    "OptimizerOptions",
    "QueryllPipeline",
    "RewrittenQuery",
    "analyze_method",
]
