"""Runtime support for rewritten queries.

A rewritten query method no longer iterates the whole database; instead it
calls :func:`execute_generated_query` with the generated SQL, the values of
its outer variables and the destination QuerySet.  This module also knows how
to turn result rows back into entities, Pairs and scalars according to the
:class:`~repro.core.sqlgen.generator.OutputPlan` produced at rewrite time —
including rows narrowed by the optimizer's projection pruning, which map to
partially loaded entities that complete themselves lazily.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.sqlgen.generator import (
    ColumnOutputPlan,
    EntityOutputPlan,
    GeneratedSql,
    OutputPlan,
    PairOutputPlan,
    TupleOutputPlan,
)
from repro.orm.entity_manager import EntityManager, RowMapper, SqlBackedQuery
from repro.orm.pair import Pair
from repro.orm.queryset import QuerySet
from repro.errors import RewriteError


def build_row_mapper(plan: OutputPlan) -> RowMapper:
    """Build a row-mapper closure for an output plan."""

    def map_row(
        entity_manager: EntityManager,
        columns: Sequence[str],
        row: tuple[object, ...],
    ) -> object:
        return _map_value(plan, entity_manager, columns, row)

    return map_row


def _map_value(
    plan: OutputPlan,
    entity_manager: EntityManager,
    columns: Sequence[str],
    row: tuple[object, ...],
) -> object:
    """Map one result row into the value shape ``plan`` describes.

    Entity plans delegate to the EntityManager so the identity map stays
    authoritative; a plan narrowed by projection pruning materialises a
    *partially loaded* entity (``plan.partial``) that lazily completes on
    first access to an unloaded field.
    """
    if isinstance(plan, ColumnOutputPlan):
        label = plan.label.lower()
        for position, column in enumerate(columns):
            if column.lower() == label:
                return row[position]
        raise RewriteError(f"result set has no column {plan.label!r}")
    if isinstance(plan, EntityOutputPlan):
        return entity_manager.materialise_entity(
            plan.entity_name,
            columns,
            row,
            column_prefix=plan.column_prefix,
            partial=plan.partial,
        )
    if isinstance(plan, PairOutputPlan):
        return Pair(
            _map_value(plan.first, entity_manager, columns, row),
            _map_value(plan.second, entity_manager, columns, row),
        )
    if isinstance(plan, TupleOutputPlan):
        return tuple(
            _map_value(item, entity_manager, columns, row) for item in plan.items
        )
    raise RewriteError(f"unknown output plan {plan!r}")


def bind_parameters(
    generated: GeneratedSql, variable_values: Mapping[str, object]
) -> tuple[object, ...]:
    """Bind the generated query's ``?`` parameters from outer variables."""
    values: list[object] = []
    for source in generated.parameter_sources:
        if source not in variable_values:
            raise RewriteError(
                f"no value supplied for outer variable {source!r} "
                f"(needed by the generated query)"
            )
        values.append(variable_values[source])
    return tuple(values)


def execute_generated_query(
    entity_manager: EntityManager,
    generated: GeneratedSql,
    variable_values: Mapping[str, object],
    destination: QuerySet | None = None,
) -> QuerySet:
    """Execute a generated query and fill the destination QuerySet."""
    params = bind_parameters(generated, variable_values)
    mapper = build_row_mapper(generated.output_plan)
    return entity_manager.execute_sql_query(
        generated.sql, params, mapper, destination
    )


def lazy_generated_query(
    entity_manager: EntityManager,
    generated: GeneratedSql,
    variable_values: Mapping[str, object],
) -> QuerySet:
    """Build a *lazy* QuerySet for a generated query.

    The query only hits the database when the QuerySet is first iterated,
    which lets ordering and limit operations applied afterwards (the paper's
    ``sortedByDoubleDescending`` / ``firstN``) be folded into the SQL.
    """
    params = bind_parameters(generated, variable_values)
    mapper = build_row_mapper(generated.output_plan)
    entity_name = (
        generated.output_plan.entity_name
        if isinstance(generated.output_plan, EntityOutputPlan)
        else None
    )
    query = SqlBackedQuery(
        entity_manager,
        generated.sql,
        params,
        mapper,
        entity_name=entity_name,
        order_resolver=make_order_resolver(entity_manager, generated.output_plan),
    )
    return QuerySet.lazy(query)


def make_order_resolver(entity_manager: EntityManager, plan: OutputPlan):
    """Build a resolver mapping sorter accessor chains to ORDER BY columns.

    The resolver walks the output plan: Pair accessors (``first``/``second``
    or their getters) descend into the pair structure, and the final accessor
    must name a field of the entity reached — yielding e.g. ``A.I_TITLE`` for
    a ``Pair<Item, Author>`` sorted by ``pair.getFirst().getTitle()``.
    """

    def resolve(accessors: tuple[str, ...]) -> str | None:
        current: OutputPlan = plan
        remaining = list(accessors)
        while remaining:
            accessor = remaining.pop(0)
            if isinstance(current, PairOutputPlan):
                if accessor in ("first", "getFirst"):
                    current = current.first
                    continue
                if accessor in ("second", "getSecond"):
                    current = current.second
                    continue
                return None
            if isinstance(current, EntityOutputPlan):
                if remaining:
                    return None
                mapping = entity_manager.mapping.entity(current.entity_name)
                field = mapping.field_by_accessor(accessor)
                if field is None:
                    return None
                return f"{current.binding}.{field.column}"
            return None
        return None

    return resolve
