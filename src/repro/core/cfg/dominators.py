"""Dominator computation over a control-flow graph.

The loop detector uses dominators to confirm that a strongly connected
component has a single entry point (its header dominates every block in the
component).  The implementation is the standard iterative data-flow
algorithm, which is more than fast enough for query-sized methods.
"""

from __future__ import annotations

from repro.core.cfg.graph import ControlFlowGraph


def compute_dominators(cfg: ControlFlowGraph) -> dict[int, set[int]]:
    """Map each block id to the set of block ids dominating it.

    Unreachable blocks are reported as dominated by every block (the standard
    lattice top), which keeps them out of any detected loop.
    """
    all_blocks = {block.block_id for block in cfg.blocks}
    if not all_blocks:
        return {}
    dominators: dict[int, set[int]] = {
        block_id: set(all_blocks) for block_id in all_blocks
    }
    dominators[cfg.entry] = {cfg.entry}

    changed = True
    while changed:
        changed = False
        for block in cfg.blocks:
            block_id = block.block_id
            if block_id == cfg.entry:
                continue
            predecessors = cfg.predecessors(block_id)
            if predecessors:
                new_set = set(all_blocks)
                for predecessor in predecessors:
                    new_set &= dominators[predecessor]
            else:
                new_set = set(all_blocks)
            new_set = new_set | {block_id}
            if new_set != dominators[block_id]:
                dominators[block_id] = new_set
                changed = True
    return dominators


def immediate_dominators(cfg: ControlFlowGraph) -> dict[int, int | None]:
    """Map each block to its immediate dominator (None for the entry and for
    unreachable blocks)."""
    dominators = compute_dominators(cfg)
    reachable = _reachable_blocks(cfg)
    result: dict[int, int | None] = {}
    for block in cfg.blocks:
        block_id = block.block_id
        if block_id == cfg.entry or block_id not in reachable:
            result[block_id] = None
            continue
        strict = dominators[block_id] - {block_id}
        # The immediate dominator is the strict dominator dominated by every
        # other strict dominator.
        idom: int | None = None
        for candidate in strict:
            if all(
                candidate == other or candidate in dominators[other]
                for other in strict
            ):
                idom = candidate
                break
        result[block_id] = idom
    return result


def dominates(
    dominators: dict[int, set[int]], dominator: int, dominated: int
) -> bool:
    """True if ``dominator`` dominates ``dominated``."""
    return dominator in dominators.get(dominated, set())


def _reachable_blocks(cfg: ControlFlowGraph) -> set[int]:
    seen: set[int] = set()
    stack = [cfg.entry] if cfg.blocks else []
    while stack:
        block_id = stack.pop()
        if block_id in seen:
            continue
        seen.add(block_id)
        stack.extend(cfg.successors(block_id))
    return seen
