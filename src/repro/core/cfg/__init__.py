"""Control-flow analysis: basic blocks, dominators and loop detection."""

from __future__ import annotations

from repro.core.cfg.graph import BasicBlock, ControlFlowGraph, build_cfg
from repro.core.cfg.dominators import compute_dominators, immediate_dominators
from repro.core.cfg.loops import Loop, find_loops, strongly_connected_components

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "Loop",
    "build_cfg",
    "compute_dominators",
    "find_loops",
    "immediate_dominators",
    "strongly_connected_components",
]
