"""Loop detection.

Following the paper (Section 4): *"Loops are defined as being strongly
connected components in the control flow graph that have a single entry
point.  Queryll further restricts its definition of loops to require that all
exits from the strongly connected component exit to the same instruction."*

The strongly connected components are found with Tarjan's algorithm
(implemented here rather than taken from a library so the whole analysis is
self-contained); loops additionally record their single entry block (header)
and the single exit instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cfg.graph import ControlFlowGraph


@dataclass
class Loop:
    """A detected loop.

    ``header`` is the single entry block; ``blocks`` the block ids in the
    strongly connected component; ``exit_instruction`` the single instruction
    index that every exit edge targets; ``instructions`` all instruction
    indexes belonging to the loop.
    """

    header: int
    blocks: set[int]
    exit_instruction: int
    instructions: set[int] = field(default_factory=set)

    def contains_instruction(self, index: int) -> bool:
        """True if the instruction index belongs to the loop body."""
        return index in self.instructions


def strongly_connected_components(
    nodes: list[int], successors: dict[int, list[int]]
) -> list[set[int]]:
    """Tarjan's strongly-connected-components algorithm (iterative).

    Returns components in reverse topological order; singleton components are
    included (callers filter out those without self-edges when hunting for
    loops).
    """
    index_counter = 0
    indexes: dict[int, int] = {}
    lowlinks: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    components: list[set[int]] = []

    for root in nodes:
        if root in indexes:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            node, child_position = work[-1]
            if child_position == 0:
                indexes[node] = index_counter
                lowlinks[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = successors.get(node, [])
            while child_position < len(children):
                child = children[child_position]
                child_position += 1
                if child not in indexes:
                    work[-1] = (node, child_position)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlinks[node] = min(lowlinks[node], indexes[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indexes[node]:
                component: set[int] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


def find_loops(cfg: ControlFlowGraph) -> list[Loop]:
    """Find every loop satisfying the paper's definition.

    A strongly connected component qualifies when:

    * it contains at least one edge that stays inside the component (so a
      lone block only counts if it branches to itself),
    * exactly one block in the component has predecessors outside it (the
      single entry point / header), and
    * every edge leaving the component targets the same instruction (the
      single exit instruction).
    """
    nodes = [block.block_id for block in cfg.blocks]
    successors = {block.block_id: list(block.successors) for block in cfg.blocks}
    components = strongly_connected_components(nodes, successors)

    loops: list[Loop] = []
    for component in components:
        if not _has_internal_edge(component, successors):
            continue
        headers = _entry_blocks(cfg, component)
        if len(headers) != 1:
            continue
        exit_instructions = _exit_instructions(cfg, component)
        if len(exit_instructions) != 1:
            continue
        header = next(iter(headers))
        instructions: set[int] = set()
        for block_id in component:
            instructions.update(cfg.block(block_id).instruction_range)
        loops.append(
            Loop(
                header=header,
                blocks=set(component),
                exit_instruction=next(iter(exit_instructions)),
                instructions=instructions,
            )
        )
    # Order loops by position of their header so callers see source order.
    loops.sort(key=lambda loop: cfg.block(loop.header).start)
    return loops


def _has_internal_edge(component: set[int], successors: dict[int, list[int]]) -> bool:
    if len(component) > 1:
        return True
    only = next(iter(component))
    return only in successors.get(only, [])


def _entry_blocks(cfg: ControlFlowGraph, component: set[int]) -> set[int]:
    entries: set[int] = set()
    for block_id in component:
        for predecessor in cfg.predecessors(block_id):
            if predecessor not in component:
                entries.add(block_id)
    if not entries and cfg.entry in component:
        entries.add(cfg.entry)
    return entries


def _exit_instructions(cfg: ControlFlowGraph, component: set[int]) -> set[int]:
    exits: set[int] = set()
    for block_id in component:
        for successor in cfg.successors(block_id):
            if successor not in component:
                exits.add(cfg.block(successor).start)
    return exits
