"""Basic blocks and control-flow graph construction over three-address code.

Compiled bytecode expresses all control flow with GOTOs; the paper's analysis
"analyzes the control flow graph as a whole and restructures it to make use
of loops".  The first step is building that graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.tac.instructions import (
    Goto,
    IfGoto,
    Instruction,
    Return,
    branch_targets,
    falls_through,
)
from repro.core.tac.method import TacMethod


@dataclass
class BasicBlock:
    """A maximal straight-line sequence of instructions.

    ``start`` is inclusive, ``end`` exclusive (instruction indexes in the
    owning method).  Successors/predecessors are block ids.
    """

    block_id: int
    start: int
    end: int
    successors: list[int] = field(default_factory=list)
    predecessors: list[int] = field(default_factory=list)

    @property
    def instruction_range(self) -> range:
        """Indexes of the instructions belonging to this block."""
        return range(self.start, self.end)

    def __contains__(self, instruction_index: int) -> bool:
        return self.start <= instruction_index < self.end


@dataclass
class ControlFlowGraph:
    """The CFG of one method: blocks plus entry block id."""

    method: TacMethod
    blocks: list[BasicBlock]
    entry: int

    def block_of_instruction(self, instruction_index: int) -> BasicBlock:
        """The block containing an instruction index."""
        for block in self.blocks:
            if instruction_index in block:
                return block
        raise KeyError(f"no block contains instruction {instruction_index}")

    def block(self, block_id: int) -> BasicBlock:
        """Block by id."""
        return self.blocks[block_id]

    def successors(self, block_id: int) -> list[int]:
        """Successor block ids."""
        return self.blocks[block_id].successors

    def predecessors(self, block_id: int) -> list[int]:
        """Predecessor block ids."""
        return self.blocks[block_id].predecessors

    def instruction_successors(self, instruction_index: int) -> list[int]:
        """Instruction-level successor indexes (used for path enumeration)."""
        instructions = self.method.instructions
        instruction = instructions[instruction_index]
        successors: list[int] = []
        if falls_through(instruction) and instruction_index + 1 < len(instructions):
            successors.append(instruction_index + 1)
        successors.extend(branch_targets(instruction))
        return successors

    def to_dot(self) -> str:
        """Graphviz rendering (debugging aid)."""
        lines = ["digraph cfg {"]
        for block in self.blocks:
            label = f"B{block.block_id} [{block.start},{block.end})"
            lines.append(f'  b{block.block_id} [label="{label}"];')
            for successor in block.successors:
                lines.append(f"  b{block.block_id} -> b{successor};")
        lines.append("}")
        return "\n".join(lines)


def build_cfg(method: TacMethod) -> ControlFlowGraph:
    """Split a method into basic blocks and connect them."""
    instructions = method.instructions
    if not instructions:
        return ControlFlowGraph(method=method, blocks=[], entry=0)

    leaders = {0}
    for index, instruction in enumerate(instructions):
        targets = branch_targets(instruction)
        for target in targets:
            leaders.add(target)
        if isinstance(instruction, (IfGoto, Goto, Return)) and index + 1 < len(
            instructions
        ):
            leaders.add(index + 1)

    ordered_leaders = sorted(leaders)
    blocks: list[BasicBlock] = []
    for position, start in enumerate(ordered_leaders):
        end = (
            ordered_leaders[position + 1]
            if position + 1 < len(ordered_leaders)
            else len(instructions)
        )
        blocks.append(BasicBlock(block_id=position, start=start, end=end))

    start_to_block = {block.start: block.block_id for block in blocks}

    for block in blocks:
        last = instructions[block.end - 1]
        successor_starts: list[int] = []
        if falls_through(last) and block.end < len(instructions):
            successor_starts.append(block.end)
        successor_starts.extend(branch_targets(last))
        for start in successor_starts:
            successor_id = start_to_block[start]
            if successor_id not in block.successors:
                block.successors.append(successor_id)
            if block.block_id not in blocks[successor_id].predecessors:
                blocks[successor_id].predecessors.append(block.block_id)

    return ControlFlowGraph(method=method, blocks=blocks, entry=0)
