"""EntityManager: identity map, lazy loading, navigation and write-back.

The paper: *"Queryll also creates a special class named EntityManager that is
responsible for ensuring that the database data and their in-memory object
representations remain consistent."*

The EntityManager is also the place where the Queryll runtime executes
generated SQL: rewritten queries call :meth:`EntityManager.execute_sql_query`
with the SQL text, parameter values and a row-mapper describing how to turn
result rows back into entities / Pairs / scalars.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from repro.errors import OrmError
from repro.orm.entity import Entity
from repro.orm.mapping import EntityMapping, OrmMapping, RelationshipMapping
from repro.orm.queryset import LazyQuery, QuerySet
from repro.sqlengine.engine import Database

#: A row mapper turns one result row (with its column names) into a result
#: item, given the EntityManager for entity materialisation.
RowMapper = Callable[["EntityManager", Sequence[str], tuple[object, ...]], object]


#: Maps an accessor chain (e.g. ``("getFirst", "getTitle")``) to a SQL column
#: reference usable in an ORDER BY clause, or None if it cannot be expressed.
OrderResolver = Callable[[tuple[str, ...]], Optional[str]]


class SqlBackedQuery(LazyQuery):
    """A pending SQL query (SELECT text + parameters + row mapper)."""

    def __init__(
        self,
        entity_manager: "EntityManager",
        sql: str,
        params: tuple[object, ...],
        row_mapper: RowMapper,
        order_by_sql: list[tuple[str, bool]] | None = None,
        limit: Optional[int] = None,
        entity_name: Optional[str] = None,
        order_resolver: Optional[OrderResolver] = None,
        binding_alias: str = "A",
    ) -> None:
        self._em = entity_manager
        self._sql = sql
        self._params = params
        self._row_mapper = row_mapper
        self._order_by = list(order_by_sql or [])
        self._limit = limit
        self._entity_name = entity_name
        self._order_resolver = order_resolver
        self._binding_alias = binding_alias

    # -- LazyQuery interface ------------------------------------------------------

    def load(self) -> list[object]:
        result = self._em.execute_sql(self.final_sql(), self._params)
        columns = result.columns
        return [self._row_mapper(self._em, columns, row) for row in result.rows]

    def ordered_by(
        self, accessors: tuple[str, ...], descending: bool
    ) -> Optional["SqlBackedQuery"]:
        column = self._order_column(accessors)
        if column is None:
            return None
        return self._copy_with(order_by=self._order_by + [(column, descending)])

    def limited(self, count: int) -> Optional["SqlBackedQuery"]:
        new_limit = count if self._limit is None else min(self._limit, count)
        return self._copy_with(limit=new_limit)

    def describe_sql(self) -> Optional[str]:
        return self.final_sql()

    # -- helpers ---------------------------------------------------------------------

    def final_sql(self) -> str:
        """The SQL including any folded-in ORDER BY / LIMIT clauses."""
        sql = self._sql
        if self._order_by:
            clauses = ", ".join(
                f"({column}){' DESC' if descending else ''}"
                for column, descending in self._order_by
            )
            sql = f"{sql} ORDER BY {clauses}"
        if self._limit is not None:
            sql = f"{sql} LIMIT {self._limit}"
        return sql

    def _copy_with(
        self,
        order_by: list[tuple[str, bool]] | None = None,
        limit: Optional[int] = None,
    ) -> "SqlBackedQuery":
        return SqlBackedQuery(
            self._em,
            self._sql,
            self._params,
            self._row_mapper,
            order_by if order_by is not None else self._order_by,
            limit if limit is not None else self._limit,
            self._entity_name,
            self._order_resolver,
            self._binding_alias,
        )

    def _order_column(self, accessors: tuple[str, ...]) -> Optional[str]:
        """Map an accessor chain to a SQL column reference."""
        if self._order_resolver is not None:
            return self._order_resolver(accessors)
        if self._entity_name is None or len(accessors) != 1:
            return None
        mapping = self._em.mapping.entity(self._entity_name)
        field = mapping.field_by_accessor(accessors[0])
        if field is None:
            return None
        return f"{self._binding_alias}.{field.column}"


class EntityManager:
    """Per-transaction manager of entity objects.

    One EntityManager corresponds to one unit of work: it caches entity
    instances (identity map), tracks modified entities, and writes changes
    back to the database when the transaction commits.
    """

    def __init__(
        self,
        database: Database,
        mapping: OrmMapping,
        entity_classes: dict[str, type[Entity]],
    ) -> None:
        self._database = database
        #: The EntityManager's own engine session: queries and single-object
        #: writes run in auto-commit mode; :meth:`commit` flushes dirty
        #: entities inside one transaction so a failed flush rolls back.
        self._session = database.session(autocommit=True)
        self._mapping = mapping
        self._entity_classes = dict(entity_classes)
        self._identity_map: dict[tuple[str, object], Entity] = {}
        self._dirty: list[Entity] = []
        self._closed = False
        # Generated SQL text per entity, built once: reusing the identical
        # string across executions keeps the engine's shared plan cache hot
        # (the cache is keyed by SQL text).
        self._all_sql: dict[str, str] = {}
        self._find_sql: dict[str, str] = {}
        #: Number of SQL statements issued through this EntityManager.
        self.queries_executed = 0

    # -- properties -----------------------------------------------------------------

    @property
    def database(self) -> Database:
        """The underlying SQL database."""
        return self._database

    @property
    def mapping(self) -> OrmMapping:
        """The ORM mapping."""
        return self._mapping

    def entity_class(self, entity_name: str) -> type[Entity]:
        """The generated class for an entity name."""
        if entity_name not in self._entity_classes:
            raise OrmError(f"no entity class registered for {entity_name!r}")
        return self._entity_classes[entity_name]

    # -- query entry points ------------------------------------------------------------

    def all(self, entity: str | type[Entity]) -> QuerySet:
        """A lazy QuerySet of every instance of ``entity``.

        This is the starting point of every Queryll query: the paper's
        ``em.allClient()`` / ``em.allOffice()`` methods.
        """
        entity_name = self._entity_name(entity)
        sql = self._all_sql.get(entity_name)
        if sql is None:
            mapping = self._mapping.entity(entity_name)
            sql = self._all_sql[entity_name] = (
                f"SELECT A.* FROM {mapping.table} AS A"
            )
        query = SqlBackedQuery(
            self,
            sql,
            (),
            make_entity_row_mapper(entity_name),
            entity_name=entity_name,
        )
        return QuerySet.lazy(query)

    def find(self, entity: str | type[Entity], primary_key: object) -> Optional[Entity]:
        """Look up a single entity by primary key (identity-map aware)."""
        entity_name = self._entity_name(entity)
        cached = self._identity_map.get((entity_name, primary_key))
        if cached is not None:
            return cached
        sql = self._find_sql.get(entity_name)
        if sql is None:
            mapping = self._mapping.entity(entity_name)
            sql = self._find_sql[entity_name] = (
                f"SELECT A.* FROM {mapping.table} AS A "
                f"WHERE A.{mapping.primary_key.column} = ?"
            )
        result = self.execute_sql(sql, (primary_key,))
        if not result.rows:
            return None
        return self.materialise_entity(entity_name, result.columns, result.rows[0])

    def __getattr__(self, name: str):
        # Java-style em.allClient(), em.allAccount() ... accessors.
        if name.startswith("all") and len(name) > 3:
            entity_name = name[3:]
            if self._mapping.has_entity(entity_name):
                return lambda: self.all(entity_name)
        if name.startswith("find") and len(name) > 4:
            entity_name = name[4:]
            if self._mapping.has_entity(entity_name):
                return lambda primary_key: self.find(entity_name, primary_key)
        raise AttributeError(f"EntityManager has no attribute {name!r}")

    # -- SQL execution ---------------------------------------------------------------------

    def execute_sql(self, sql: str, params: Sequence[object] = ()):
        """Execute SQL through this manager's session (counts statements)."""
        self._check_open()
        self.queries_executed += 1
        return self._session.execute(sql, tuple(params))

    def execute_sql_query(
        self,
        sql: str,
        params: Sequence[object],
        row_mapper: RowMapper,
        destination: QuerySet | None = None,
    ) -> QuerySet:
        """Run generated SQL and fill ``destination`` with mapped results.

        This is the runtime entry point used by rewritten query methods.
        """
        result = self.execute_sql(sql, params)
        items = [row_mapper(self, result.columns, row) for row in result.rows]
        if destination is None:
            destination = QuerySet()
        destination.add_all(items)
        return destination

    # -- entity materialisation ---------------------------------------------------------------

    def materialise_entity(
        self,
        entity_name: str,
        columns: Sequence[str],
        row: tuple[object, ...],
        column_prefix: str = "",
        partial: bool = False,
    ) -> Entity:
        """Turn a result row into an entity instance (identity-map aware).

        ``column_prefix`` selects a subset of columns when the row spans
        several joined tables (e.g. ``col0_``, ``col1_`` prefixes).

        ``partial=True`` says the row comes from a projection-pruned SELECT
        and may omit mapped columns.  Partial rows must not poison the
        identity map: when the primary key is already cached, the fresh
        column values are *merged into* the cached instance (never
        overwriting loaded or locally modified data), and a new instance
        built from a partial row is flagged so it lazily completes on first
        access to an unloaded field.
        """
        mapping = self._mapping.entity(entity_name)
        values: dict[str, object] = {}
        for column, value in zip(columns, row):
            name = column.lower()
            if column_prefix:
                if not name.startswith(column_prefix):
                    continue
                name = name[len(column_prefix):]
            if mapping.field_by_column(name) is not None:
                values[name] = value
        key_column = mapping.primary_key.column.lower()
        primary_key = values.get(key_column)
        identity_key = (entity_name, primary_key)
        if primary_key is not None and identity_key in self._identity_map:
            cached = self._identity_map[identity_key]
            cached._merge_row(values)
            return cached
        entity_class = self.entity_class(entity_name)
        instance = entity_class._from_row(self, values, partial=partial)
        if primary_key is not None:
            self._identity_map[identity_key] = instance
        return instance

    def _complete_entity(self, entity: Entity) -> None:
        """Load the full row of a partially loaded entity (one PK lookup).

        Called lazily by :meth:`Entity._column_value` the first time an
        unloaded field is read; the fetched values are merged, so loaded and
        dirty data always win over the re-read row.
        """
        mapping = type(entity)._mapping
        primary_key = entity.primary_key_value
        if primary_key is None:
            return
        sql = self._find_sql.get(mapping.entity_name)
        if sql is None:
            sql = self._find_sql[mapping.entity_name] = (
                f"SELECT A.* FROM {mapping.table} AS A "
                f"WHERE A.{mapping.primary_key.column} = ?"
            )
        result = self.execute_sql(sql, (primary_key,))
        if not result.rows:
            # The row is gone (concurrent delete): stop retrying completion,
            # the unloaded fields simply read as None.
            object.__setattr__(entity, "_partial", False)
            return
        values = {
            column.lower(): value
            for column, value in zip(result.columns, result.rows[0])
        }
        entity._merge_row(values)

    # -- relationship navigation -------------------------------------------------------------------

    def _navigate(self, entity: Entity, relationship_name: str):
        mapping = type(entity)._mapping
        relationship = mapping.relationship_by_accessor(relationship_name)
        if relationship is None:
            raise OrmError(
                f"{mapping.entity_name} has no relationship {relationship_name!r}"
            )
        if relationship.kind == "to_one":
            return self._navigate_to_one(entity, relationship)
        return self._navigate_to_many(entity, mapping, relationship)

    def _navigate_to_one(
        self, entity: Entity, relationship: RelationshipMapping
    ) -> Optional[Entity]:
        # _column_value (not row_values) so a partially loaded entity
        # completes itself instead of silently navigating from a missing FK.
        foreign_key = entity._column_value(relationship.local_column)
        if foreign_key is None:
            return None
        target_mapping = self._mapping.entity(relationship.target_entity)
        if relationship.remote_column.lower() == target_mapping.primary_key.column.lower():
            return self.find(relationship.target_entity, foreign_key)
        sql = (
            f"SELECT A.* FROM {target_mapping.table} AS A "
            f"WHERE A.{relationship.remote_column} = ?"
        )
        result = self.execute_sql(sql, (foreign_key,))
        if not result.rows:
            return None
        return self.materialise_entity(
            relationship.target_entity, result.columns, result.rows[0]
        )

    def _navigate_to_many(
        self,
        entity: Entity,
        mapping: EntityMapping,
        relationship: RelationshipMapping,
    ) -> QuerySet:
        local_value = entity._column_value(relationship.local_column)
        target_mapping = self._mapping.entity(relationship.target_entity)
        sql = (
            f"SELECT A.* FROM {target_mapping.table} AS A "
            f"WHERE A.{relationship.remote_column} = ?"
        )
        query = SqlBackedQuery(
            self,
            sql,
            (local_value,),
            make_entity_row_mapper(relationship.target_entity),
            entity_name=relationship.target_entity,
        )
        return QuerySet.lazy(query)

    # -- persistence ---------------------------------------------------------------------------------

    def persist(self, entity: Entity) -> None:
        """Insert a new entity into the database."""
        self._check_open()
        entity._bind(self)
        mapping = type(entity)._mapping
        values = entity.row_values()
        columns = [field.column for field in mapping.fields]
        placeholders = ", ".join("?" for _ in columns)
        sql = (
            f"INSERT INTO {mapping.table} ({', '.join(columns)}) "
            f"VALUES ({placeholders})"
        )
        params = tuple(values.get(column.lower()) for column in columns)
        self.execute_sql(sql, params)
        entity._clear_dirty()
        key = entity.primary_key_value
        if key is not None:
            self._identity_map[(mapping.entity_name, key)] = entity

    def remove(self, entity: Entity) -> None:
        """Delete an entity from the database."""
        self._check_open()
        mapping = type(entity)._mapping
        key = entity.primary_key_value
        if key is None:
            raise OrmError("cannot remove an entity without a primary key")
        sql = f"DELETE FROM {mapping.table} WHERE {mapping.primary_key.column} = ?"
        self.execute_sql(sql, (key,))
        self._identity_map.pop((mapping.entity_name, key), None)

    def _mark_dirty(self, entity: Entity) -> None:
        if entity not in self._dirty:
            self._dirty.append(entity)

    @property
    def dirty_entities(self) -> list[Entity]:
        """Entities with unsaved modifications."""
        return list(self._dirty)

    def commit(self) -> int:
        """Write every dirty entity back to its table row, atomically.

        Returns the number of UPDATE statements issued.  This is the
        standard ORM write-back the paper describes ("the ORM tool will
        write the objects' data back to individual table rows before a
        transaction completes").  The write-back runs inside one engine
        transaction: if any UPDATE fails, every already-applied UPDATE of
        this flush is rolled back before the error propagates.
        """
        self._check_open()
        own_transaction = bool(self._dirty) and not self._session.in_transaction
        if own_transaction:
            self._session.begin()
        flushed: list[Entity] = []
        try:
            for entity in self._dirty:
                mapping = type(entity)._mapping
                dirty_fields = sorted(entity.dirty_fields)
                if not dirty_fields:
                    continue
                key = entity.primary_key_value
                if key is None:
                    raise OrmError("cannot update an entity without a primary key")
                assignments = []
                params: list[object] = []
                for field_name in dirty_fields:
                    field = mapping.field_by_name(field_name)
                    assert field is not None
                    assignments.append(f"{field.column} = ?")
                    params.append(entity.row_values().get(field.column.lower()))
                params.append(key)
                sql = (
                    f"UPDATE {mapping.table} SET {', '.join(assignments)} "
                    f"WHERE {mapping.primary_key.column} = ?"
                )
                self.execute_sql(sql, tuple(params))
                flushed.append(entity)
        except BaseException:
            # Failed flush: abort the transaction and discard this manager's
            # stale state.  Entities keep their dirty flags — their UPDATEs
            # were rolled back, so they are genuinely not persisted.
            if own_transaction:
                self._session.rollback()
            self._dirty.clear()
            self._identity_map.clear()
            raise
        # Dirty flags are cleared only once every UPDATE of the unit of work
        # succeeded; clearing inside the loop would mark rolled-back
        # entities as persisted when a later UPDATE fails.
        for entity in flushed:
            entity._clear_dirty()
        self._dirty.clear()
        self.execute_sql("COMMIT")
        return len(flushed)

    def rollback(self) -> None:
        """Discard pending modifications and cached entities, aborting any
        open engine transaction."""
        self._check_open()
        self._dirty.clear()
        self._identity_map.clear()
        self.execute_sql("ROLLBACK")

    def close(self) -> None:
        """Close the EntityManager; further use raises.  Any transaction
        left open by a failed flush is rolled back."""
        if not self._closed:
            self._session.close()
        self._closed = True

    # -- internals ----------------------------------------------------------------------------------------

    def _entity_name(self, entity: str | type[Entity]) -> str:
        if isinstance(entity, str):
            name = entity
        elif isinstance(entity, type) and issubclass(entity, Entity):
            name = entity._mapping.entity_name
        else:
            raise OrmError(f"expected an entity name or class, got {entity!r}")
        if not self._mapping.has_entity(name):
            raise OrmError(f"unknown entity {name!r}")
        return name

    def _check_open(self) -> None:
        if self._closed:
            raise OrmError("this EntityManager has been closed")


def make_entity_row_mapper(entity_name: str, column_prefix: str = "") -> RowMapper:
    """Row mapper materialising rows of a single entity."""

    def mapper(
        entity_manager: EntityManager,
        columns: Sequence[str],
        row: tuple[object, ...],
    ) -> object:
        return entity_manager.materialise_entity(
            entity_name, columns, row, column_prefix
        )

    return mapper


def make_scalar_row_mapper(column_index: int = 0) -> RowMapper:
    """Row mapper returning a single column value per row."""

    def mapper(
        entity_manager: EntityManager,
        columns: Sequence[str],
        row: tuple[object, ...],
    ) -> object:
        return row[column_index]

    return mapper
