"""QuerySet: the lazily initialised collection at the heart of Queryll.

The paper: *"A QuerySet is a lazily initialized container of database
entities.  It holds a SQL query, and when any attempt is made to access any
of the elements of a QuerySet, the QuerySet will execute the query on a
database, fill itself with the results of the query, and from then on behave
like a normal Java Collection."*

A QuerySet is therefore in one of two states:

* **lazy** — it holds a :class:`LazyQuery` describing how to fetch its
  contents (a SQL query against an EntityManager); ordering and limit
  operations compose into the pending query when possible;
* **materialised** — it holds a plain list of items and behaves like an
  ordinary collection.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterable, Iterator, Optional, TypeVar

from repro.orm.sorters import CallableSorter, Sorter

Item = TypeVar("Item")


class LazyQuery:
    """Interface for the pending query held by a lazy QuerySet."""

    def load(self) -> list[object]:
        """Execute the query and return its results."""
        raise NotImplementedError

    def ordered_by(
        self, accessors: tuple[str, ...], descending: bool
    ) -> Optional["LazyQuery"]:
        """Return a new query with an ORDER BY folded in, or None if the
        ordering cannot be expressed in SQL.

        ``accessors`` is the chain of attribute/getter names the sort key
        reads (e.g. ``("getFirst", "getTitle")`` for a Pair of entities).
        """
        return None

    def limited(self, count: int) -> Optional["LazyQuery"]:
        """Return a new query with a LIMIT folded in, or None."""
        return None

    def describe_sql(self) -> Optional[str]:
        """The SQL that would be executed (for tests and documentation)."""
        return None


class QuerySet(Generic[Item]):
    """A collection of query results, lazily fetched from the database."""

    def __init__(self, items: Iterable[Item] | None = None) -> None:
        self._items: Optional[list[Item]] = list(items) if items is not None else []
        self._lazy: Optional[LazyQuery] = None

    # -- construction -------------------------------------------------------------

    @classmethod
    def lazy(cls, query: LazyQuery) -> "QuerySet[Item]":
        """Create a QuerySet that will run ``query`` when first accessed."""
        queryset: QuerySet[Item] = cls()
        queryset._items = None
        queryset._lazy = query
        return queryset

    # -- state --------------------------------------------------------------------

    @property
    def is_lazy(self) -> bool:
        """True while the underlying query has not been executed yet."""
        return self._items is None

    @property
    def pending_query(self) -> Optional[LazyQuery]:
        """The pending query of a lazy QuerySet (None once materialised)."""
        return self._lazy if self.is_lazy else None

    def describe_sql(self) -> Optional[str]:
        """SQL text of the pending query, if any."""
        return self._lazy.describe_sql() if self._lazy is not None else None

    def _materialise(self) -> list[Item]:
        if self._items is None:
            assert self._lazy is not None
            self._items = list(self._lazy.load())  # type: ignore[arg-type]
        return self._items

    # -- collection protocol --------------------------------------------------------

    def __iter__(self) -> Iterator[Item]:
        return iter(self._materialise())

    def iterator(self) -> Iterator[Item]:
        """Java-style iterator() alias."""
        return iter(self)

    def __len__(self) -> int:
        return len(self._materialise())

    def size(self) -> int:
        """Java-style size() alias."""
        return len(self)

    def __contains__(self, item: object) -> bool:
        return item in self._materialise()

    def __getitem__(self, index: int) -> Item:
        return self._materialise()[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, QuerySet):
            return self._materialise() == other._materialise()
        if isinstance(other, list):
            return self._materialise() == other
        return NotImplemented

    def __repr__(self) -> str:
        if self.is_lazy:
            return "QuerySet(<lazy>)"
        return f"QuerySet({self._items!r})"

    # -- mutation --------------------------------------------------------------------

    def add(self, item: Item) -> bool:
        """Add one element (Java ``Collection.add`` returns a boolean)."""
        self._materialise().append(item)
        return True

    def add_all(self, items: Iterable[Item]) -> bool:
        """Add every element of ``items``."""
        materialised = self._materialise()
        before = len(materialised)
        materialised.extend(items)
        return len(materialised) != before

    # Java-style alias used in the paper's figures.
    addAll = add_all  # noqa: N815

    def clear(self) -> None:
        """Remove every element (and discard any pending query)."""
        self._items = []
        self._lazy = None

    # -- ordering and limit ------------------------------------------------------------

    def sorted_by(
        self,
        sorter: Sorter[Item] | Callable[[Item], object] | str,
        descending: bool = False,
    ) -> "QuerySet[Item]":
        """Return a new QuerySet sorted by the given key.

        ``sorter`` may be a :class:`~repro.orm.sorters.Sorter`, a plain
        callable, or a field/getter name (dotted chains allowed).  When this
        QuerySet is still lazy and the sort key is a field reachable through
        accessors, the ORDER BY is folded into the pending SQL query;
        otherwise the sort happens in memory.
        """
        accessors: Optional[tuple[str, ...]]
        if isinstance(sorter, str):
            accessors = tuple(sorter.split("."))
            sorter_obj: Sorter[Item] = _AccessorSorter(sorter)
        elif isinstance(sorter, Sorter):
            accessors = sorter.recorded_accessors()
            sorter_obj = sorter
        else:
            sorter_obj = CallableSorter(sorter)
            accessors = sorter_obj.recorded_accessors()

        if self.is_lazy and accessors and self._lazy is not None:
            folded = self._lazy.ordered_by(accessors, descending)
            if folded is not None:
                return QuerySet.lazy(folded)

        items = sorted(
            self._materialise(),
            key=lambda item: _null_safe_key(sorter_obj.value(item)),
            reverse=descending,
        )
        return QuerySet(items)

    def sorted_by_double_descending(self, sorter: Sorter[Item]) -> "QuerySet[Item]":
        """The paper's ``sortedByDoubleDescending`` operation."""
        return self.sorted_by(sorter, descending=True)

    def sorted_by_double_ascending(self, sorter: Sorter[Item]) -> "QuerySet[Item]":
        """Ascending variant."""
        return self.sorted_by(sorter, descending=False)

    # Java-style aliases from the paper's Fig. 8.
    sortedByDoubleDescending = sorted_by_double_descending  # noqa: N815
    sortedByDoubleAscending = sorted_by_double_ascending  # noqa: N815

    def first_n(self, count: int) -> "QuerySet[Item]":
        """The paper's ``firstN`` limit operation."""
        if count < 0:
            raise ValueError("firstN requires a non-negative count")
        if self.is_lazy and self._lazy is not None:
            folded = self._lazy.limited(count)
            if folded is not None:
                return QuerySet.lazy(folded)
        return QuerySet(self._materialise()[:count])

    firstN = first_n  # noqa: N815

    # -- conversions -----------------------------------------------------------------

    def to_list(self) -> list[Item]:
        """Materialise and return a copy of the contents."""
        return list(self._materialise())


class _AccessorSorter(Sorter[Item]):
    """Sorter reading a named attribute or getter (dotted chains allowed)."""

    def __init__(self, accessor: str) -> None:
        self._accessors = tuple(accessor.split("."))

    def value(self, element: Item) -> object:
        value: object = element
        for accessor in self._accessors:
            value = getattr(value, accessor)
            if callable(value):
                value = value()
        return value

    def recorded_accessors(self) -> Optional[tuple[str, ...]]:
        return self._accessors


def _null_safe_key(value: object) -> tuple[int, object]:
    """Sort key that tolerates None values (they sort first)."""
    if value is None:
        return (0, 0)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (1, value)
    return (2, str(value))
