"""Database session facade: the paper's ``db.beginTransaction()`` API.

``QueryllDatabase`` bundles a SQL database, an ORM mapping and the generated
entity classes, and hands out :class:`~repro.orm.entity_manager.EntityManager`
instances per transaction — mirroring the usage in the paper's Fig. 4::

    EntityManager em = db.beginTransaction();
    ...
    db.endTransaction(em, true);
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.orm.entity import Entity
from repro.orm.entity_manager import EntityManager
from repro.orm.generator import OrmTool
from repro.orm.mapping import OrmMapping
from repro.sqlengine.durability import DurabilityOptions
from repro.sqlengine.engine import Database
from repro.sqlengine.planner import PlannerOptions


class QueryllDatabase:
    """An application-facing database handle with ORM support."""

    def __init__(
        self,
        mapping: OrmMapping,
        database: Optional[Database] = None,
        create_schema: bool = True,
        planner_options: Optional[PlannerOptions] = None,
        data_dir: Optional[str] = None,
        durability: Optional[DurabilityOptions] = None,
    ) -> None:
        if database is None:
            # ``data_dir`` opens (or recovers) a durable engine; see
            # repro.sqlengine.durability.  In-memory stays the default.
            database = Database(
                planner_options=planner_options,
                data_dir=data_dir,
                durability=durability,
            )
        self._database = database
        self._tool = OrmTool(mapping)
        if create_schema:
            # On a durable engine part (or all) of the schema may have been
            # recovered from disk — including a partial schema left by a
            # crash mid-creation — so only the missing pieces are created.
            self._tool.create_schema(
                self._database, skip_existing=self._database.durable
            )
        self._entity_classes = self._tool.generate_entity_classes()

    # -- accessors -------------------------------------------------------------------

    @property
    def database(self) -> Database:
        """The underlying SQL engine."""
        return self._database

    @property
    def mapping(self) -> OrmMapping:
        """The ORM mapping."""
        return self._tool.mapping

    @property
    def entity_classes(self) -> dict[str, type[Entity]]:
        """Generated entity classes keyed by entity name."""
        return dict(self._entity_classes)

    def entity_class(self, name: str) -> type[Entity]:
        """One generated entity class by name."""
        return self._entity_classes[name]

    # -- transactions -----------------------------------------------------------------

    def begin_transaction(self) -> EntityManager:
        """Start a unit of work and return its EntityManager."""
        return EntityManager(self._database, self.mapping, self._entity_classes)

    def end_transaction(self, entity_manager: EntityManager, commit: bool = True) -> None:
        """Finish a unit of work, committing or rolling back."""
        if commit:
            entity_manager.commit()
        else:
            entity_manager.rollback()
        entity_manager.close()

    # Java-style aliases matching the paper's figures.
    beginTransaction = begin_transaction  # noqa: N815
    endTransaction = end_transaction  # noqa: N815

    @contextmanager
    def transaction(self) -> Iterator[EntityManager]:
        """Context-manager form of begin/end transaction."""
        entity_manager = self.begin_transaction()
        try:
            yield entity_manager
        except Exception:
            self.end_transaction(entity_manager, commit=False)
            raise
        self.end_transaction(entity_manager, commit=True)
