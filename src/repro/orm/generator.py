"""The ORM tool: generates entity classes and database schemas from mappings.

This is the first of the paper's two programs (Fig. 9): given an ORM
description it produces the "Generated Entity Classes" and can create the
corresponding tables (plus foreign-key indexes) in a database.
"""

from __future__ import annotations

from repro.errors import OrmError
from repro.orm.entity import Entity
from repro.orm.mapping import OrmMapping
from repro.sqlengine.engine import Database


class OrmTool:
    """Generates entity classes and schemas from an :class:`OrmMapping`."""

    def __init__(self, mapping: OrmMapping) -> None:
        mapping.validate()
        self._mapping = mapping

    @property
    def mapping(self) -> OrmMapping:
        """The validated mapping."""
        return self._mapping

    # -- class generation ----------------------------------------------------------

    def generate_entity_classes(self) -> dict[str, type[Entity]]:
        """Create one :class:`~repro.orm.entity.Entity` subclass per mapped
        entity.

        The generated classes carry their mapping as ``_mapping`` and get a
        docstring listing fields and relationships; all field/getter/
        relationship behaviour lives in the Entity base class.
        """
        classes: dict[str, type[Entity]] = {}
        for entity_name in self._mapping.entity_names():
            entity_mapping = self._mapping.entity(entity_name)
            field_list = ", ".join(field.name for field in entity_mapping.fields)
            relationship_list = ", ".join(
                f"{relationship.name} -> {relationship.target_entity}"
                for relationship in entity_mapping.relationships
            )
            doc = (
                f"Generated entity for table {entity_mapping.table!r}.\n\n"
                f"Fields: {field_list or '(none)'}\n"
                f"Relationships: {relationship_list or '(none)'}"
            )
            entity_class = type(
                entity_name,
                (Entity,),
                {"_mapping": entity_mapping, "__doc__": doc},
            )
            classes[entity_name] = entity_class
        return classes

    # -- schema generation -----------------------------------------------------------

    def create_schema(
        self,
        database: Database,
        create_indexes: bool = True,
        skip_existing: bool = False,
    ) -> None:
        """Create the tables (and useful indexes) implied by the mapping.

        With ``skip_existing`` tables and indexes already in the catalog
        are left alone instead of raising — the reopen path for a durable
        database, where part (or all) of the schema was recovered from
        disk and only the remainder must be created.
        """
        for entity_name in self._mapping.entity_names():
            entity_mapping = self._mapping.entity(entity_name)
            schema = entity_mapping.to_table_schema()
            if database.catalog.has_table(schema.name):
                if skip_existing:
                    continue
                raise OrmError(f"table {schema.name!r} already exists")
            database.create_table(schema)
        if create_indexes:
            self._create_foreign_key_indexes(database)

    def _create_foreign_key_indexes(self, database: Database) -> None:
        created: set[tuple[str, str]] = set()
        for entity_name in self._mapping.entity_names():
            entity_mapping = self._mapping.entity(entity_name)
            for relationship in entity_mapping.relationships:
                if relationship.kind == "to_one":
                    table = entity_mapping.table
                    column = relationship.local_column
                else:
                    target = self._mapping.entity(relationship.target_entity)
                    table = target.table
                    column = relationship.remote_column
                key = (table.lower(), column.lower())
                if key in created:
                    continue
                schema = database.catalog.table(table)
                if column.lower() in (
                    name.lower() for name in schema.primary_key_columns
                ):
                    continue
                if database.table_data(table).find_equality_index((column,)) is None:
                    database.create_index(table, [column])
                created.add(key)
