"""Entity base class and dynamic attribute behaviour.

Generated entity classes (see :mod:`repro.orm.generator`) derive from
:class:`Entity`.  An entity instance holds its row data in a column-keyed
dictionary, tracks which fields have been modified (for transaction
write-back), and resolves relationship accessors through its EntityManager —
matching the paper's description of entities as "a cache of database data ...
all lazily instantiated".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.errors import OrmError
from repro.orm.mapping import EntityMapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.orm.entity_manager import EntityManager


class Entity:
    """Base class for all mapped entities."""

    #: Set on generated subclasses by the ORM tool.
    _mapping: EntityMapping

    def __init__(self, **field_values: object) -> None:
        object.__setattr__(self, "_data", {})
        object.__setattr__(self, "_dirty_fields", set())
        object.__setattr__(self, "_entity_manager", None)
        object.__setattr__(self, "_partial", False)
        for name, value in field_values.items():
            setattr(self, name, value)

    # -- wiring --------------------------------------------------------------------

    @classmethod
    def _from_row(
        cls,
        entity_manager: "EntityManager",
        values_by_column: dict[str, object],
        partial: bool = False,
    ) -> "Entity":
        """Build an entity from a database row without marking it dirty.

        ``partial=True`` marks the instance as *partially loaded*: the row
        came from a projection-pruned SELECT and may omit mapped columns.
        Reading an omitted field triggers lazy completion through the
        EntityManager (one primary-key lookup that merges the full row).
        """
        instance = cls.__new__(cls)
        object.__setattr__(instance, "_data", dict(values_by_column))
        object.__setattr__(instance, "_dirty_fields", set())
        object.__setattr__(instance, "_entity_manager", entity_manager)
        object.__setattr__(
            instance, "_partial", bool(partial and instance._missing_columns())
        )
        return instance

    def _bind(self, entity_manager: "EntityManager") -> None:
        object.__setattr__(self, "_entity_manager", entity_manager)

    @property
    def entity_manager(self) -> Optional["EntityManager"]:
        """The EntityManager this entity is attached to (None if detached)."""
        return self._entity_manager

    # -- field access ----------------------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        # Only called when normal attribute lookup fails; resolves mapped
        # fields, relationships and Java-style getters.
        mapping = type(self)._mapping
        field = mapping.field_by_accessor(name)
        if field is not None:
            if name == field.getter:
                return lambda: self._field_value(field.name)
            return self._field_value(name)
        relationship = mapping.relationship_by_accessor(name)
        if relationship is not None:
            if name == relationship.getter:
                return lambda: self._navigate(relationship.name)
            return self._navigate(name)
        # Java-style setter.
        if name.startswith("set") and len(name) > 3:
            attribute = name[3].lower() + name[4:]
            if mapping.field_by_name(attribute) is not None:
                return lambda value: setattr(self, attribute, value)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def __setattr__(self, name: str, value: object) -> None:
        mapping = type(self)._mapping
        field = mapping.field_by_name(name)
        if field is None:
            if mapping.relationship_by_accessor(name) is not None:
                raise OrmError(
                    f"relationship {name!r} cannot be assigned directly; "
                    "assign the foreign-key field instead"
                )
            object.__setattr__(self, name, value)
            return
        self._data[field.column.lower()] = value
        self._dirty_fields.add(field.name)
        manager = self._entity_manager
        if manager is not None:
            manager._mark_dirty(self)

    def _field_value(self, field_name: str) -> object:
        mapping = type(self)._mapping
        field = mapping.field_by_name(field_name)
        if field is None:
            raise OrmError(f"{mapping.entity_name} has no field {field_name!r}")
        return self._column_value(field.column)

    def _column_value(self, column: str) -> object:
        """Value of a table column, lazily completing a partial entity.

        A partially loaded entity (projection pruning) fetches its full row
        once, on the first read of a column the pruned SELECT did not cover.
        """
        key = column.lower()
        if key not in self._data and self._partial:
            manager = self._entity_manager
            if manager is not None:
                manager._complete_entity(self)
        return self._data.get(key)

    def _missing_columns(self) -> frozenset[str]:
        """Mapped columns absent from the loaded row data."""
        mapping = type(self)._mapping
        return frozenset(
            field.column.lower()
            for field in mapping.fields
            if field.column.lower() not in self._data
        )

    def _merge_row(self, values_by_column: dict[str, object]) -> None:
        """Merge freshly read column values into a partially loaded entity.

        Only columns the entity has *not* loaded yet are taken — locally
        modified (dirty) or already-loaded values win, so merging can never
        clobber in-memory state with stale database data.
        """
        if not self._partial:
            return
        for column, value in values_by_column.items():
            if column.lower() not in self._data:
                self._data[column.lower()] = value
        if not self._missing_columns():
            object.__setattr__(self, "_partial", False)

    @property
    def is_partially_loaded(self) -> bool:
        """True while mapped columns are missing from the loaded row."""
        return bool(self._partial)

    def _navigate(self, relationship_name: str):
        manager = self._entity_manager
        if manager is None:
            raise OrmError(
                f"entity {type(self).__name__} is not attached to an "
                "EntityManager; relationships cannot be navigated"
            )
        return manager._navigate(self, relationship_name)

    # -- persistence support ------------------------------------------------------------

    @property
    def primary_key_value(self) -> object:
        """Value of the primary-key field."""
        mapping = type(self)._mapping
        return self._data.get(mapping.primary_key.column.lower())

    @property
    def dirty_fields(self) -> set[str]:
        """Names of the fields modified since the last commit."""
        return set(self._dirty_fields)

    def _clear_dirty(self) -> None:
        self._dirty_fields.clear()

    def row_values(self) -> dict[str, object]:
        """Column-keyed snapshot of the entity's data."""
        return dict(self._data)

    # -- value semantics -------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return NotImplemented
        assert isinstance(other, Entity)
        my_key = self.primary_key_value
        other_key = other.primary_key_value
        if my_key is None or other_key is None:
            return self is other
        return my_key == other_key

    def __hash__(self) -> int:
        key = self.primary_key_value
        if key is None:
            return object.__hash__(self)
        return hash((type(self).__name__, key))

    def __repr__(self) -> str:
        mapping = type(self)._mapping
        key = self.primary_key_value
        return f"{mapping.entity_name}(pk={key!r})"
