"""Sorter objects for the ordering operation (the paper's Fig. 8).

The paper's ordering syntax asks programmers to provide a sorter object whose
``value(element)`` method returns the sort key, similar to Java's
``Comparator``.  To fold the ordering into the generated SQL the system must
know which entity field the sorter reads; we discover that by calling the
sorter once with a *recording probe* that notes the chain of accessors used
(e.g. ``pair.getFirst().getTitle()`` records ``("getFirst", "getTitle")``).
When the sorter does something the probe cannot capture (arbitrary
computation, several fields), the QuerySet falls back to an in-memory sort —
matching the paper's description of ordering support as "preliminary".
"""

from __future__ import annotations

from typing import Callable, Generic, Optional, TypeVar

Element = TypeVar("Element")


class _RecordingProbe:
    """Stand-in element that records the chain of attributes accessed on it.

    Accessing an attribute returns another probe (so chains like
    ``p.first.title`` work); calling a probe returns it unchanged (so
    Java-style getter chains like ``p.getFirst().getTitle()`` work too).
    Arithmetic on a probe raises, which the caller treats as "cannot
    analyse".
    """

    def __init__(self, chain: tuple[str, ...] = (), log: list | None = None) -> None:
        object.__setattr__(self, "_chain", chain)
        object.__setattr__(self, "_log", log if log is not None else [])

    def __getattr__(self, name: str) -> "_RecordingProbe":
        if name.startswith("_"):
            raise AttributeError(name)
        chain = self._chain + (name,)
        probe = _RecordingProbe(chain, self._log)
        self._log.append(probe)
        return probe

    def __call__(self) -> "_RecordingProbe":
        return self

    @property
    def chain(self) -> tuple[str, ...]:
        return self._chain


def _longest_chain(log: list) -> Optional[tuple[str, ...]]:
    """The single maximal accessor chain, or None if several were recorded."""
    if not log:
        return None
    chains = [probe.chain for probe in log]
    longest = max(chains, key=len)
    # Every recorded chain must be a prefix of the longest one, otherwise the
    # sorter touched more than one field and cannot be folded into SQL.
    for chain in chains:
        if chain != longest[: len(chain)]:
            return None
    return longest


class Sorter(Generic[Element]):
    """Base class for sorters: subclasses override :meth:`value`."""

    def value(self, element: Element) -> object:
        """Return the sort key for ``element``."""
        raise NotImplementedError

    # -- key extraction ----------------------------------------------------------

    def recorded_accessors(self) -> Optional[tuple[str, ...]]:
        """Try to discover which accessor chain the sorter reads.

        Returns a tuple of accessor names (attributes or getters), or None if
        the sorter could not be analysed.
        """
        log: list = []
        probe = _RecordingProbe(log=log)
        try:
            result = self.value(probe)  # type: ignore[arg-type]
        except Exception:  # noqa: BLE001 - any failure means "cannot analyse"
            return None
        if not isinstance(result, _RecordingProbe):
            return None
        chain = _longest_chain(log)
        if not chain:
            return None
        return chain

    def recorded_field(self) -> Optional[str]:
        """Single-accessor convenience form of :meth:`recorded_accessors`."""
        chain = self.recorded_accessors()
        if chain is not None and len(chain) == 1:
            return chain[0]
        return None


class DoubleSorter(Sorter[Element]):
    """Sorter returning a floating-point key (paper's ``DoubleSorter``)."""


class IntSorter(Sorter[Element]):
    """Sorter returning an integer key."""


class StringSorter(Sorter[Element]):
    """Sorter returning a string key."""


class FieldSorter(Sorter[Element]):
    """Sorter reading a named field (or dotted chain); trivially analysable."""

    def __init__(self, field: str) -> None:
        self._field = field

    def value(self, element: Element) -> object:
        value: object = element
        for accessor in self._field.split("."):
            value = getattr(value, accessor)
            if callable(value):
                value = value()
        return value

    def recorded_accessors(self) -> Optional[tuple[str, ...]]:
        return tuple(self._field.split("."))


class CallableSorter(Sorter[Element]):
    """Adapter turning a plain callable into a sorter.

    The callable is analysed with the same recording probe, so lambdas that
    read a single field chain still fold into SQL.
    """

    def __init__(self, func: Callable[[Element], object]) -> None:
        self._func = func

    def value(self, element: Element) -> object:
        return self._func(element)
