"""Queryll's light-weight object-relational mapping layer.

The paper: *"Queryll uses a custom light-weight ORM tool to map tables to
classes...  programmers must describe how table rows should map to objects,
how table fields should be mapped into object fields, and the various
relationships between tables."*  This package provides that tool: mapping
descriptions, generated entity classes, the ``EntityManager``, lazily
evaluated ``QuerySet`` collections, ``Pair`` objects and sorters.
"""

from __future__ import annotations

from repro.orm.mapping import (
    EntityMapping,
    FieldMapping,
    OrmMapping,
    RelationshipMapping,
)
from repro.orm.entity import Entity
from repro.orm.entity_manager import EntityManager
from repro.orm.generator import OrmTool
from repro.orm.pair import Pair
from repro.orm.queryset import QuerySet
from repro.orm.session import QueryllDatabase
from repro.orm.sorters import DoubleSorter, FieldSorter, IntSorter, StringSorter

__all__ = [
    "DoubleSorter",
    "Entity",
    "EntityManager",
    "EntityMapping",
    "FieldMapping",
    "FieldSorter",
    "IntSorter",
    "OrmMapping",
    "OrmTool",
    "Pair",
    "QueryllDatabase",
    "QuerySet",
    "RelationshipMapping",
    "StringSorter",
]
