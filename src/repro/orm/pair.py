"""The ``Pair`` value object used for projection.

The paper: *"To support projection operations, Queryll supplies a Pair object
that can hold two arbitrary values...  the Pair object can be used to
construct simple data structures during a query."*
"""

from __future__ import annotations

from typing import Generic, Iterable, Iterator, TypeVar

First = TypeVar("First")
Second = TypeVar("Second")


class Pair(Generic[First, Second]):
    """An immutable pair of two values.

    Pairs compare by value and are hashable when their components are, so
    they behave well inside QuerySets.  Both Java-style accessors
    (``getFirst``/``getSecond``) and Pythonic attributes (``first``/
    ``second``) are provided, to keep the paper's examples recognisable.
    """

    __slots__ = ("_first", "_second")

    def __init__(self, first: First, second: Second) -> None:
        self._first = first
        self._second = second

    @property
    def first(self) -> First:
        """The first component (the LISP ``car``)."""
        return self._first

    @property
    def second(self) -> Second:
        """The second component (the LISP ``cdr``)."""
        return self._second

    def getFirst(self) -> First:  # noqa: N802 - Java-style accessor
        """Java-style accessor for the first component."""
        return self._first

    def getSecond(self) -> Second:  # noqa: N802 - Java-style accessor
        """Java-style accessor for the second component."""
        return self._second

    @staticmethod
    def pair_collection(first: First, seconds: Iterable[Second]) -> list["Pair[First, Second]"]:
        """Pair a single value with every element of a collection.

        This is the paper's ``Pair.PairCollection(c, c.getAccounts())``
        helper: it expresses the "one row joined with multiple rows" case.
        """
        return [Pair(first, second) for second in seconds]

    # Java-style static alias used in the paper's figures.
    PairCollection = pair_collection

    def __iter__(self) -> Iterator[object]:
        yield self._first
        yield self._second

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pair):
            return NotImplemented
        return self._first == other._first and self._second == other._second

    def __hash__(self) -> int:
        return hash((Pair, self._first, self._second))

    def __repr__(self) -> str:
        return f"Pair({self._first!r}, {self._second!r})"
