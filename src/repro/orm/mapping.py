"""Object-relational mapping descriptions.

A mapping describes, for each entity: the table it is stored in, the mapping
from object fields to table columns, and its relationships to other entities.
It is consumed both by the runtime ORM (EntityManager / entity classes) and
by the Queryll query-tree builder, which needs to know which getter reads
which column and which getter navigates which relationship.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import OrmError
from repro.sqlengine.catalog import ColumnSchema, SqlType, TableSchema


@dataclass(frozen=True)
class FieldMapping:
    """One scalar field of an entity mapped to a table column."""

    name: str
    column: str
    sql_type: SqlType = SqlType.TEXT
    primary_key: bool = False

    @property
    def getter(self) -> str:
        """Java-style getter name (``name`` -> ``getName``)."""
        return "get" + self.name[0].upper() + self.name[1:]


@dataclass(frozen=True)
class RelationshipMapping:
    """A relationship between two entities.

    ``to_one`` relationships (e.g. ``Account.holder``) store the foreign key
    in ``local_column`` of this entity's table and point at ``remote_column``
    (usually the primary key) of the target.  ``to_many`` relationships (e.g.
    ``Client.accounts``) are the reverse: the target table's
    ``remote_column`` refers back to this entity's ``local_column``.
    """

    name: str
    target_entity: str
    local_column: str
    remote_column: str
    kind: str = "to_one"  # "to_one" | "to_many"

    def __post_init__(self) -> None:
        if self.kind not in ("to_one", "to_many"):
            raise OrmError(f"unknown relationship kind {self.kind!r}")

    @property
    def getter(self) -> str:
        """Java-style getter name."""
        return "get" + self.name[0].upper() + self.name[1:]


@dataclass
class EntityMapping:
    """Mapping of one entity class to one table."""

    entity_name: str
    table: str
    fields: list[FieldMapping] = field(default_factory=list)
    relationships: list[RelationshipMapping] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for mapping in self.fields:
            if mapping.name in seen:
                raise OrmError(
                    f"duplicate field {mapping.name!r} in entity {self.entity_name!r}"
                )
            seen.add(mapping.name)
        for relationship in self.relationships:
            if relationship.name in seen:
                raise OrmError(
                    f"relationship {relationship.name!r} clashes with a field "
                    f"in entity {self.entity_name!r}"
                )
            seen.add(relationship.name)

    # -- lookups ---------------------------------------------------------------

    @property
    def primary_key(self) -> FieldMapping:
        """The primary key field (exactly one is required)."""
        keys = [mapping for mapping in self.fields if mapping.primary_key]
        if len(keys) != 1:
            raise OrmError(
                f"entity {self.entity_name!r} must have exactly one primary key field"
            )
        return keys[0]

    def field_by_name(self, name: str) -> Optional[FieldMapping]:
        """Field mapping by attribute name (``country``)."""
        for mapping in self.fields:
            if mapping.name == name:
                return mapping
        return None

    def field_by_accessor(self, accessor: str) -> Optional[FieldMapping]:
        """Field mapping by attribute name or Java-style getter name."""
        for mapping in self.fields:
            if accessor in (mapping.name, mapping.getter):
                return mapping
        return None

    def field_by_column(self, column: str) -> Optional[FieldMapping]:
        """Field mapping by table column name (case-insensitive)."""
        for mapping in self.fields:
            if mapping.column.lower() == column.lower():
                return mapping
        return None

    def relationship_by_accessor(self, accessor: str) -> Optional[RelationshipMapping]:
        """Relationship mapping by attribute name or getter name."""
        for relationship in self.relationships:
            if accessor in (relationship.name, relationship.getter):
                return relationship
        return None

    # -- schema generation -------------------------------------------------------

    def to_table_schema(self) -> TableSchema:
        """Derive the SQL table schema implied by this mapping."""
        columns = tuple(
            ColumnSchema(
                name=mapping.column,
                sql_type=mapping.sql_type,
                primary_key=mapping.primary_key,
                nullable=not mapping.primary_key,
            )
            for mapping in self.fields
        )
        return TableSchema(name=self.table, columns=columns)


class OrmMapping:
    """The full mapping: a set of entity mappings, validated as a whole."""

    def __init__(self, entities: Iterable[EntityMapping] = ()) -> None:
        self._entities: dict[str, EntityMapping] = {}
        for entity in entities:
            self.add_entity(entity)

    def add_entity(self, entity: EntityMapping) -> None:
        """Register an entity mapping."""
        if entity.entity_name in self._entities:
            raise OrmError(f"entity {entity.entity_name!r} is already mapped")
        self._entities[entity.entity_name] = entity

    def entity(self, name: str) -> EntityMapping:
        """Entity mapping by entity name."""
        if name not in self._entities:
            raise OrmError(f"no mapping for entity {name!r}")
        return self._entities[name]

    def has_entity(self, name: str) -> bool:
        """True if an entity with this name is mapped."""
        return name in self._entities

    def entity_names(self) -> list[str]:
        """All mapped entity names."""
        return list(self._entities)

    def entity_for_table(self, table: str) -> Optional[EntityMapping]:
        """Entity mapping whose table matches ``table`` (case-insensitive)."""
        for entity in self._entities.values():
            if entity.table.lower() == table.lower():
                return entity
        return None

    def validate(self) -> None:
        """Check cross-entity consistency of relationships."""
        for entity in self._entities.values():
            entity.primary_key  # noqa: B018 - raises if missing
            for relationship in entity.relationships:
                if relationship.target_entity not in self._entities:
                    raise OrmError(
                        f"entity {entity.entity_name!r} has a relationship to "
                        f"unmapped entity {relationship.target_entity!r}"
                    )
                target = self._entities[relationship.target_entity]
                if relationship.kind == "to_one":
                    local, remote = entity, target
                else:
                    local, remote = target, entity
                if local.field_by_column(relationship.local_column) is None and (
                    relationship.kind == "to_one"
                ):
                    raise OrmError(
                        f"relationship {entity.entity_name}.{relationship.name}: "
                        f"column {relationship.local_column!r} is not mapped on "
                        f"{entity.entity_name!r}"
                    )
                if relationship.kind == "to_one" and remote.field_by_column(
                    relationship.remote_column
                ) is None:
                    raise OrmError(
                        f"relationship {entity.entity_name}.{relationship.name}: "
                        f"column {relationship.remote_column!r} is not mapped on "
                        f"{relationship.target_entity!r}"
                    )

    def table_schemas(self) -> list[TableSchema]:
        """SQL schemas for every mapped entity."""
        return [entity.to_table_schema() for entity in self._entities.values()]
