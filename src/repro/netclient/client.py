"""Low-level wire client, remote sessions and the remote Database facade.

Three layers, bottom up:

* :class:`WireClient` — one TCP connection speaking the protocol of
  :mod:`repro.server.protocol`: framing, handshake, request/response,
  structured-error raising, and per-connection counters (round trips,
  bytes).  It mirrors the server session's transaction state from the
  flags byte every response carries, so ``in_transaction`` is always
  authoritative without extra round trips.
* :class:`RemoteSession` — the client-side counterpart of the engine's
  :class:`~repro.sqlengine.engine.Session`: ``execute``/``begin``/
  ``commit``/``rollback``/``close`` with the same semantics, plus the
  server-only verbs (prepare, server_stats, explain, checkpoint).  Its
  results stream: a SELECT larger than ``batch_rows`` comes back as a
  first batch plus a server-side cursor drained with FETCH.
* :class:`RemoteDatabase` — a Database-shaped session factory, so the
  embedded dbapi :class:`~repro.dbapi.connection.Connection` and the ORM's
  :class:`~repro.orm.entity_manager.EntityManager` run unmodified against
  a remote server.
"""

from __future__ import annotations

import json
import socket
import time
from collections import OrderedDict
from typing import Optional, Sequence

from repro.errors import SqlError
from repro.obs.trace import TraceBuffer, TraceContext, TracingOptions, new_root_context
from repro.server import protocol
from repro.sqlengine.engine import build_column_map
from repro.sqlengine.errors import SqlExecutionError

#: Default FETCH batch size: large enough that typical OLTP results ship in
#: one round trip, small enough to bound a frame for wide scans.
DEFAULT_BATCH_ROWS = 256


class WireClient:
    """One client socket speaking the binary wire protocol."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: Optional[float] = None,
        connect_timeout: float = 10.0,
        client_name: str = "repro-netclient",
    ) -> None:
        self.host = host
        self.port = port
        sock = socket.create_connection((host, port), timeout=connect_timeout)
        sock.settimeout(timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self._closed = False
        #: Mirrors the server session's transaction state (updated from the
        #: flags byte of every response frame).
        self.in_transaction = False
        #: Mirrors the server session's auto-commit flag (server default on).
        self.autocommit = True
        self.round_trips = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.last_used = time.monotonic()
        #: The server's log position from the most recent response that
        #: carried one — on a primary its end of WAL (a read-your-writes
        #: token after a write), on a replica its replayed watermark.
        self.last_lsn: tuple[int, int] = (0, 0)
        # Client-side cache of server-side prepared-statement ids, keyed by
        # SQL text.  The server's registration lives as long as this
        # connection, so pooled reuse across many short-lived
        # PreparedStatement objects pays PREPARE once per distinct SQL.
        self._statement_ids: "OrderedDict[str, int]" = OrderedDict()
        try:
            reply = self.request(protocol.encode_hello(client_name=client_name))
            if reply.op != protocol.HELLO_OK:
                raise protocol.ProtocolError(
                    f"expected HELLO_OK, got {reply.op_name}"
                )
        except BaseException:
            # A rejected handshake (version mismatch, server at capacity)
            # arrives as a structured ERROR: make sure the socket does not
            # outlive the failed constructor.
            self._teardown()
            raise
        self.server_banner = reply.text

    # -- request/response ----------------------------------------------------

    def request(self, payload: bytes) -> protocol.ServerMessage:
        """Send one request frame and decode the one response frame.

        A transport failure (reset, timeout, torn frame) closes the client
        — there is no way to resynchronise a request/response stream — and
        raises :class:`SqlExecutionError`.  A structured ERROR response is
        re-raised under its original engine error class; the connection
        stays usable, exactly like a failed statement on a local session.
        """
        if self._closed:
            raise SqlExecutionError("connection to server is closed")
        framed = protocol.frame(payload)
        try:
            self._sock.sendall(framed)
            response = protocol.read_frame(self._rfile)
        except protocol.ProtocolError:
            self._teardown()
            raise
        except OSError as error:
            self._teardown()
            raise SqlExecutionError(f"lost connection to server: {error}") from error
        if response is None:
            self._teardown()
            raise SqlExecutionError("server closed the connection")
        self.round_trips += 1
        self.bytes_sent += len(framed)
        self.bytes_received += len(response) + 8
        self.last_used = time.monotonic()
        message = protocol.decode_server_message(response)
        self.in_transaction = message.in_transaction
        if message.lsn != (0, 0) and message.lsn > self.last_lsn:
            self.last_lsn = message.lsn
        if message.op == protocol.ERROR:
            protocol.raise_remote_error(message.error_class, message.message)
        return message

    # -- protocol verbs ------------------------------------------------------

    def execute(
        self,
        sql: str,
        params: Sequence[object] = (),
        max_rows: int = 0,
        trace: Optional[TraceContext] = None,
    ) -> protocol.ServerMessage:
        """EXECUTE one statement; returns the RESULT message."""
        return self.request(
            protocol.encode_execute(sql, tuple(params), max_rows, trace)
        )

    #: Bound on cached prepared-statement registrations per connection.
    STATEMENT_CACHE_SIZE = 256

    def prepare(self, sql: str) -> int:
        """PREPARE a server-side statement; returns its id."""
        return self.request(protocol.encode_prepare(sql)).stmt_id

    def prepared_statement_id(self, sql: str) -> int:
        """The server-side statement id for ``sql``, PREPAREing on a cache
        miss.  Evicted entries are CLOSE_STATEMENTed (best effort)."""
        stmt_id = self._statement_ids.get(sql)
        if stmt_id is not None:
            self._statement_ids.move_to_end(sql)
            return stmt_id
        stmt_id = self.prepare(sql)
        self._statement_ids[sql] = stmt_id
        while len(self._statement_ids) > self.STATEMENT_CACHE_SIZE:
            _, evicted = self._statement_ids.popitem(last=False)
            try:
                self.close_statement(evicted)
            except (SqlError, OSError):  # pragma: no cover - best effort
                break
        return stmt_id

    def execute_prepared(
        self,
        stmt_id: int,
        params: Sequence[object] = (),
        max_rows: int = 0,
        trace: Optional[TraceContext] = None,
    ) -> protocol.ServerMessage:
        """EXECUTE_PREPARED with fresh parameters; returns the RESULT."""
        return self.request(
            protocol.encode_execute_prepared(stmt_id, tuple(params), max_rows, trace)
        )

    def fetch(
        self, cursor_id: int, max_rows: int, trace: Optional[TraceContext] = None
    ) -> protocol.ServerMessage:
        """FETCH the next batch of an open cursor."""
        return self.request(protocol.encode_fetch(cursor_id, max_rows, trace))

    def close_cursor(self, cursor_id: int) -> None:
        """Drop a server-side cursor without draining it."""
        self.request(protocol.encode_close_cursor(cursor_id))

    def close_statement(self, stmt_id: int) -> None:
        """Drop a server-side prepared statement."""
        self.request(protocol.encode_close_statement(stmt_id))

    def begin(self) -> None:
        """Open an explicit transaction on the server session."""
        self.request(protocol.encode_simple(protocol.BEGIN))

    def commit(self, trace: Optional[TraceContext] = None) -> None:
        """Commit the server session's open transaction."""
        self.request(protocol.encode_simple(protocol.COMMIT, trace))

    def rollback(self) -> None:
        """Roll back the server session's open transaction."""
        self.request(protocol.encode_simple(protocol.ROLLBACK))

    def set_autocommit(self, value: bool) -> None:
        """Flip the server session's auto-commit flag (no-op round trip is
        skipped when the cached flag already matches)."""
        if value == self.autocommit:
            return
        self.request(protocol.encode_set_autocommit(value))
        self.autocommit = value

    def explain(self, sql: str) -> str:
        """The engine's cost-annotated plan for ``sql``."""
        return self.request(protocol.encode_explain(sql)).text

    def checkpoint(self) -> None:
        """Checkpoint the server's database."""
        self.request(protocol.encode_simple(protocol.CHECKPOINT))

    def server_stats(self) -> dict:
        """The SERVER_STATS document (server counters + engine stats)."""
        return json.loads(self.request(protocol.encode_simple(protocol.SERVER_STATS)).text)

    def wal_position(self) -> tuple[int, int]:
        """The server's current log position (primary: end of WAL;
        replica: replayed watermark)."""
        return self.request(protocol.encode_simple(protocol.WAL_POSITION)).lsn

    def wait_lsn(self, lsn: tuple[int, int], timeout: float = 5.0) -> tuple[int, int]:
        """Block until the server's applied position reaches ``lsn``; the
        reached position is returned.  Raises on timeout."""
        message = self.request(
            protocol.encode_wait_lsn(lsn[0], lsn[1], int(timeout * 1000))
        )
        return message.lsn

    def promote(self, data_dir: Optional[str] = None) -> None:
        """PROMOTE a replica server into a writable primary; with
        ``data_dir`` the promoted server becomes durable there first."""
        self.request(protocol.encode_promote(data_dir or ""))

    # -- two-phase commit (the sharding coordinator's verbs) ------------------

    def prepare_txn(self, gid: str, trace: Optional[TraceContext] = None) -> None:
        """PREPARE_TXN: make the open transaction durable under ``gid``
        without committing it (phase one of two-phase commit)."""
        self.request(protocol.encode_prepare_txn(gid, trace))

    def commit_prepared(self, gid: str, trace: Optional[TraceContext] = None) -> None:
        """COMMIT_PREPARED: apply a prepared transaction (idempotent)."""
        self.request(protocol.encode_commit_prepared(gid, trace))

    def abort_prepared(self, gid: str, trace: Optional[TraceContext] = None) -> None:
        """ABORT_PREPARED: discard a prepared transaction (presumed abort:
        unknown gids succeed silently)."""
        self.request(protocol.encode_abort_prepared(gid, trace))

    def list_prepared(self) -> list[str]:
        """LIST_PREPARED: gids of every in-doubt transaction on the server."""
        return json.loads(
            self.request(protocol.encode_simple(protocol.LIST_PREPARED)).text
        )

    def traces(self, trace_id: Optional[str] = None) -> dict:
        """TRACES: the server's buffered spans — ``{"node": ..., "spans":
        [...]}`` — optionally filtered to one trace id."""
        return json.loads(
            self.request(protocol.encode_traces(trace_id or "")).text
        )

    def metrics(self) -> str:
        """METRICS: the server's registry in Prometheus text format."""
        return self.request(protocol.encode_metrics()).text

    def ping(self) -> bool:
        """Round-trip liveness probe; False (never an exception) when the
        server is gone.  A failed ping closes the client."""
        if self._closed:
            return False
        try:
            self.request(protocol.encode_simple(protocol.PING))
            return True
        except (SqlError, OSError):
            return False

    # -- lifecycle -----------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether the transport is gone."""
        return self._closed

    def close(self) -> None:
        """Say GOODBYE (best effort) and close the socket."""
        if self._closed:
            return
        try:
            self._sock.sendall(protocol.frame(protocol.encode_simple(protocol.GOODBYE)))
        except OSError:
            pass
        self._teardown()

    def _teardown(self) -> None:
        self._closed = True
        try:
            self._rfile.close()
        except OSError:  # pragma: no cover - close is best effort
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best effort
            pass


class RemoteResult:
    """A query result that streams row batches from a server-side cursor.

    Shaped like the engine's :class:`~repro.sqlengine.engine.ResultSet`
    (``columns``/``rows``/``rowcount``/``column_index``/``value``) so the
    ORM and the dbapi layer consume it unchanged; ``rows`` drains the
    cursor, while :meth:`available` lets streaming consumers pull batches
    lazily.
    """

    def __init__(
        self,
        session: "RemoteSession",
        message: protocol.ServerMessage,
        trace: Optional[TraceContext] = None,
    ) -> None:
        self.columns = list(message.columns)
        self.rowcount = message.rowcount
        self._buffer: list[tuple[object, ...]] = list(message.rows)
        self._cursor_id = message.cursor_id
        self._exhausted = message.exhausted
        self._session = session
        #: Context FETCHes ride under, so server-side fetch spans parent to
        #: the span that executed the statement.
        self._trace = trace
        self._column_map: Optional[dict[str, int]] = None
        if self._cursor_id:
            # Track the server-side cursor so an abandoned (never fully
            # drained) result is closed when the session is.
            session._open_cursors.add(self._cursor_id)

    def available(self, index: int) -> bool:
        """Whether row ``index`` exists, fetching batches as needed."""
        while index >= len(self._buffer) and not self._exhausted:
            self._fetch_more()
        return index < len(self._buffer)

    @property
    def rows(self) -> list[tuple[object, ...]]:
        """Every row (drains the server-side cursor)."""
        while not self._exhausted:
            self._fetch_more()
        return self._buffer

    @property
    def fetched_rows(self) -> int:
        """Rows received so far (observability for the streaming tests)."""
        return len(self._buffer)

    def column_index(self, name: str) -> int:
        """Index of a column by case-insensitive name (same contract as
        the engine ResultSet — the map builder is shared)."""
        if self._column_map is None:
            self._column_map = build_column_map(self.columns)
        try:
            return self._column_map[name.lower()]
        except KeyError as exc:
            raise KeyError(f"no column named {name!r}") from exc

    def value(self, row: int, column: str) -> object:
        """Value at (row, column-name)."""
        return self.rows[row][self.column_index(column)]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def _fetch_more(self) -> None:
        message = self._session._fetch(self._cursor_id, trace=self._trace)
        self._buffer.extend(message.rows)
        if message.exhausted:
            self._exhausted = True
            self._session._open_cursors.discard(self._cursor_id)
            self._cursor_id = 0


class RemoteSession:
    """A Session over the network: one checked-out server connection.

    Matches the engine Session's client-facing surface (``execute``,
    ``begin``/``commit``/``rollback``, ``in_transaction``, ``autocommit``,
    ``close``) so the dbapi Connection and the ORM EntityManager work
    against it unmodified.  ``close`` rolls back any open transaction
    explicitly — never commits — and either returns the underlying
    connection to its pool or closes the socket.
    """

    def __init__(
        self,
        client: WireClient,
        *,
        autocommit: bool = True,
        pool=None,
        batch_rows: int = DEFAULT_BATCH_ROWS,
        tracing: Optional[TracingOptions] = None,
        trace_buffer: Optional[TraceBuffer] = None,
        node: str = "client",
    ) -> None:
        self._client = client
        self._pool = pool
        self.batch_rows = batch_rows
        self._closed = False
        #: Client-edge tracing: with ``tracing.enabled`` this session
        #: starts root spans for sampled statements and propagates the
        #: context on the wire; spans land in ``trace_buffer``.
        self._tracing = tracing
        self._trace_buffer = trace_buffer
        self._node = node
        self._trace_counter = 0
        #: Server-side cursor ids of results not yet drained; closed with
        #: the session so abandoned result sets do not pile up server-side.
        self._open_cursors: set[int] = set()
        client.set_autocommit(autocommit)

    # -- properties ----------------------------------------------------------

    @property
    def client(self) -> WireClient:
        """The underlying wire connection (for counters and tests)."""
        return self._client

    @property
    def in_transaction(self) -> bool:
        """Whether the server session has an open transaction."""
        return self._client.in_transaction

    @property
    def autocommit(self) -> bool:
        """The server session's auto-commit flag."""
        return self._client.autocommit

    @autocommit.setter
    def autocommit(self, value: bool) -> None:
        self._client.set_autocommit(value)

    # -- SQL interface -------------------------------------------------------

    def execute(
        self,
        sql: str,
        params: Sequence[object] = (),
        *,
        trace: Optional[TraceContext] = None,
    ) -> RemoteResult:
        """Execute one statement; large results stream in FETCH batches.

        An explicit inbound ``trace`` (a coordinator fanning out) is
        forwarded verbatim — the remote node records the span.  Otherwise,
        when this session's :class:`TracingOptions` sample the statement,
        a fresh root trace starts here: a ``client`` span wraps the round
        trip and the propagated context makes the server's span its child.
        """
        self._check_open()
        if trace is not None:
            return RemoteResult(
                self,
                self._client.execute(sql, params, self.batch_rows, trace),
                trace=trace,
            )
        tracing = self._tracing
        if tracing is None or not tracing.enabled:
            return RemoteResult(self, self._client.execute(sql, params, self.batch_rows))
        return self._execute_traced(sql, params)

    def _execute_traced(self, sql: str, params: Sequence[object]) -> RemoteResult:
        self._trace_counter += 1
        if not self._tracing.samples(self._trace_counter) or self._trace_buffer is None:
            return RemoteResult(self, self._client.execute(sql, params, self.batch_rows))
        span = self._trace_buffer.start_span(new_root_context(), "client", self._node)
        span.tag(sql=sql)
        t0 = time.perf_counter()
        try:
            message = self._client.execute(
                sql, params, self.batch_rows, span.context
            )
        except Exception as error:
            span.finish(error)
            raise
        span.phase("request", time.perf_counter() - t0)
        span.tag(rows=message.rowcount)
        span.finish()
        return RemoteResult(self, message, trace=span.context)

    def prepare(self, sql: str) -> int:
        """The server-side prepared-statement id for ``sql``.

        Cached per wire connection, so short-lived PreparedStatement
        objects over a pooled connection pay the PREPARE round trip once
        per distinct SQL text — the client-side twin of the engine's
        SQL-text-keyed plan cache.
        """
        self._check_open()
        return self._client.prepared_statement_id(sql)

    def execute_prepared(
        self,
        stmt_id: int,
        params: Sequence[object] = (),
        *,
        trace: Optional[TraceContext] = None,
    ) -> RemoteResult:
        """Execute a server-side prepared statement."""
        self._check_open()
        return RemoteResult(
            self,
            self._client.execute_prepared(stmt_id, params, self.batch_rows, trace),
            trace=trace,
        )

    def close_statement(self, stmt_id: int) -> None:
        """Drop a server-side prepared statement (best effort)."""
        if not self._closed and not self._client.closed:
            try:
                self._client.close_statement(stmt_id)
            except (SqlError, OSError):
                pass

    # -- transactions --------------------------------------------------------

    def begin(self) -> None:
        """Open an explicit transaction."""
        self._check_open()
        self._client.begin()

    def commit(self, *, trace: Optional[TraceContext] = None) -> None:
        """Commit the open transaction (no-op when none is open).  A
        ``trace`` context lets the server attribute the WAL fsync."""
        self._check_open()
        self._client.commit(trace)

    def rollback(self) -> None:
        """Roll back the open transaction (no-op when none is open)."""
        self._check_open()
        self._client.rollback()

    def prepare_txn(self, gid: str, *, trace: Optional[TraceContext] = None) -> None:
        """Two-phase commit phase one: park the open transaction under
        ``gid``; a later :meth:`commit_prepared`/:meth:`abort_prepared`
        (from any connection) decides it."""
        self._check_open()
        self._client.prepare_txn(gid, trace)

    def commit_prepared(self, gid: str, *, trace: Optional[TraceContext] = None) -> None:
        """Apply a prepared transaction (idempotent)."""
        self._check_open()
        self._client.commit_prepared(gid, trace)

    def abort_prepared(self, gid: str, *, trace: Optional[TraceContext] = None) -> None:
        """Discard a prepared transaction (presumed abort)."""
        self._check_open()
        self._client.abort_prepared(gid, trace)

    def list_prepared(self) -> list[str]:
        """Gids of every in-doubt transaction on the server."""
        self._check_open()
        return self._client.list_prepared()

    # -- server-side extras --------------------------------------------------

    def explain(self, sql: str) -> str:
        """The engine's plan text for ``sql``."""
        self._check_open()
        return self._client.explain(sql)

    def checkpoint(self) -> None:
        """Checkpoint the server's database."""
        self._check_open()
        self._client.checkpoint()

    def server_stats(self) -> dict:
        """The server's SERVER_STATS document."""
        self._check_open()
        return self._client.server_stats()

    def traces(self, trace_id: Optional[str] = None) -> dict:
        """The server's buffered spans document."""
        self._check_open()
        return self._client.traces(trace_id)

    def metrics(self) -> str:
        """The server's metrics in Prometheus text format."""
        self._check_open()
        return self._client.metrics()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Roll back any open transaction, then release the connection.

        The rollback is an explicit round trip (not just a socket close):
        that keeps "close rolls back" deterministic — the transaction is
        gone before ``close()`` returns, on the pooled and the direct path
        alike.
        """
        if self._closed:
            return
        self._closed = True
        client = self._client
        if not client.closed:
            # Abandoned (undrained) result sets: free their server-side
            # cursors before the connection outlives this session in a
            # pool.  Best effort — a dead transport skips them and the
            # server's per-connection cursor cap bounds the damage anyway.
            for cursor_id in list(self._open_cursors):
                try:
                    client.close_cursor(cursor_id)
                except (SqlError, OSError):
                    break
        self._open_cursors.clear()
        if self._pool is not None:
            self._pool.release(client)
            return
        if not client.closed and client.in_transaction:
            try:
                client.rollback()
            except (SqlError, OSError):
                pass
        client.close()

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            if not self._closed and not self._client.closed:
                if exc_type is None:
                    self.commit()
                else:
                    self.rollback()
        finally:
            self.close()

    def _fetch(
        self, cursor_id: int, trace: Optional[TraceContext] = None
    ) -> protocol.ServerMessage:
        self._check_open()
        return self._client.fetch(cursor_id, self.batch_rows, trace)

    def _check_open(self) -> None:
        if self._closed:
            raise SqlExecutionError("session is closed")


class RemoteDatabase:
    """A Database-shaped facade over a server address.

    Provides the ``session(autocommit=...)`` factory the embedded
    :class:`~repro.sqlengine.engine.Database` exposes, so every consumer
    written against that surface — the dbapi ``Connection``, the ORM's
    ``EntityManager``, the rewritten ``@query`` pipeline — runs unmodified
    against a remote server.  With a :class:`~repro.netclient.pool.
    ConnectionPool` the sessions check their wire connection out of the
    pool; without one each session opens its own socket.
    """

    def __init__(
        self,
        host: str,
        port: Optional[int] = None,
        *,
        pool=None,
        batch_rows: int = DEFAULT_BATCH_ROWS,
        timeout: Optional[float] = None,
        client_name: str = "repro-netclient",
        tracing: Optional[TracingOptions] = None,
        node_name: str = "client",
    ) -> None:
        if port is None:
            host, port = host  # an (host, port) address tuple
        self.host = host
        self.port = port
        self.pool = pool
        self.batch_rows = batch_rows
        self.timeout = timeout
        self.client_name = client_name
        #: Client-edge tracing: sessions start root traces when enabled,
        #: and their ``client`` spans land in this shared buffer.
        self.tracing = TracingOptions() if tracing is None else tracing
        self.trace_buffer = TraceBuffer(self.tracing.buffer_size)
        self.node_name = node_name

    def session(self, autocommit: bool = True) -> RemoteSession:
        """Open a remote session (pooled when a pool was configured)."""
        if self.pool is not None:
            return self.pool.session(
                autocommit=autocommit,
                batch_rows=self.batch_rows,
                tracing=self.tracing,
                trace_buffer=self.trace_buffer,
                node=self.node_name,
            )
        client = WireClient(
            self.host, self.port, timeout=self.timeout, client_name=self.client_name
        )
        return RemoteSession(
            client,
            autocommit=autocommit,
            batch_rows=self.batch_rows,
            tracing=self.tracing,
            trace_buffer=self.trace_buffer,
            node=self.node_name,
        )

    def connect(self, auto_commit: bool = True):
        """Open a remote dbapi :class:`~repro.netclient.connection.Connection`."""
        from repro.netclient.connection import Connection

        return Connection(self, auto_commit=auto_commit)

    def server_stats(self) -> dict:
        """One-shot SERVER_STATS request."""
        session = self.session()
        try:
            return session.server_stats()
        finally:
            session.close()

    def traces(self, trace_id: Optional[str] = None) -> list[dict]:
        """Client-side spans merged with the server's buffered spans —
        the assembled trace for a single-server deployment."""
        spans = self.trace_buffer.spans(trace_id)
        session = self.session()
        try:
            spans.extend(session.traces(trace_id)["spans"])
        finally:
            session.close()
        return spans

    def metrics(self) -> str:
        """One-shot METRICS request (Prometheus text)."""
        session = self.session()
        try:
            return session.metrics()
        finally:
            session.close()
