"""The remote dbapi driver: the ``repro.dbapi`` surface over the network.

:class:`Connection` subclasses the embedded driver's Connection — the
transaction semantics, round-trip accounting and context-manager protocol
are inherited, not re-implemented — and swaps in:

* server-side prepared statements (:class:`RemotePreparedStatement`): the
  SQL text crosses the wire once at PREPARE, later executions ship only a
  statement id and parameters, and the server maps the registered text
  onto the engine's shared plan cache;
* streaming result sets (:class:`RemoteResultSet`): rows arrive in FETCH
  batches as the cursor advances instead of being materialised up front.

The shared contract — including "``close()`` with an open transaction
rolls back, never commits" — is documented once in ``docs/server.md``
§ "Connection lifecycle" and tested against both drivers.
"""

from __future__ import annotations

from typing import Optional

from repro.dbapi.connection import Connection as _EmbeddedConnection
from repro.dbapi.resultset import ResultSet
from repro.dbapi.statement import PreparedStatement
from repro.netclient.client import RemoteDatabase, RemoteResult, RemoteSession


class RemoteResultSet(ResultSet):
    """A ResultSet over a server-side cursor: batches stream in on demand.

    Rows already received stay buffered client-side, so cursor rewinds
    (``before_first``) and re-reads behave exactly like the embedded
    driver; only the *first* pass over unseen rows costs FETCH round trips.
    """

    def __init__(self, result: RemoteResult) -> None:
        super().__init__(result.columns, ())
        self._result = result
        # Share the streaming buffer: rows appended by FETCH become
        # visible to the inherited accessors without copying.
        self._rows = result._buffer

    def _available(self, index: int) -> bool:
        return self._result.available(index)

    @property
    def row_count(self) -> int:
        """Total number of rows (drains the cursor)."""
        return len(self._result.rows)

    def fetch_all(self) -> list[tuple[object, ...]]:
        """All rows as tuples (drains the cursor; cursor position unmoved)."""
        return list(self._result.rows)

    def __len__(self) -> int:
        return len(self._result.rows)


class RemotePreparedStatement(PreparedStatement):
    """A prepared statement executed server-side by id.

    The statement is registered lazily on first execution; afterwards each
    execution sends only ``(stmt_id, parameters)`` — the remote analogue
    of the engine's plan-cache reuse, and one less SQL parse per call.
    """

    def __init__(self, connection: "Connection", sql: str) -> None:
        super().__init__(connection, sql)
        self._stmt_id: Optional[int] = None

    def _run(self):
        connection = self._connection
        connection._check_open()
        session: RemoteSession = connection._session
        # Re-resolve the id on every execution rather than pinning it: the
        # lookup is a local cache hit (no round trip) that also refreshes
        # the statement's LRU position, and it re-PREPAREs transparently if
        # the registration was evicted by 256+ other statements meanwhile.
        self._stmt_id = session.prepare(self._sql)
        connection.round_trips += 1
        return session.execute_prepared(self._stmt_id, self._ordered_parameters())

    def explain(self) -> str:
        """The server engine's cost-annotated plan for this statement."""
        self._check_open()
        self._connection.round_trips += 1
        return self._connection._session.explain(self._sql)

    def close(self) -> None:
        """Close the statement object.

        The server-side registration is deliberately kept: it belongs to
        the wire connection's SQL-text-keyed statement cache, so the next
        PreparedStatement with the same text (possibly from a different
        pool checkout) reuses it without another PREPARE round trip.
        """
        self._stmt_id = None
        super().close()


class Connection(_EmbeddedConnection):
    """A dbapi connection whose session lives on a remote server."""

    def __init__(
        self,
        database: RemoteDatabase,
        auto_commit: bool = True,
        session: Optional[RemoteSession] = None,
    ) -> None:
        super().__init__(database, auto_commit=auto_commit, session=session)

    def prepare_statement(self, sql: str) -> RemotePreparedStatement:
        """Create a server-side prepared statement for ``sql``."""
        self._check_open()
        return RemotePreparedStatement(self, sql)

    def commit(self) -> None:
        """Commit via the protocol's dedicated COMMIT message."""
        self._check_open()
        self.round_trips += 1
        self._session.commit()

    def rollback(self) -> None:
        """Roll back via the protocol's dedicated ROLLBACK message."""
        self._check_open()
        self.round_trips += 1
        self._session.rollback()

    def _wrap_result(self, result) -> RemoteResultSet:
        return RemoteResultSet(result)

    @property
    def wire_round_trips(self) -> int:
        """Actual frames exchanged with the server (includes PREPARE and
        FETCH traffic, unlike the statement-level ``round_trips``)."""
        return self._session.client.round_trips
