"""Remote dbapi driver: the ``repro.dbapi`` surface over the wire protocol.

The package mirrors the embedded driver layer by layer —
:class:`RemoteDatabase` stands in for the engine's ``Database`` as a
session factory, :class:`Connection`/``PreparedStatement``/``ResultSet``
keep the JDBC-style surface — so application code (the hand-written TPC-W
queries, the ORM's EntityManager, the rewritten ``@query`` pipeline) runs
unmodified against a :class:`repro.server.SqlServer`.  A
:class:`ConnectionPool` adds the client-side pooling the middleware tier
needs: bounded size, checkout timeout, liveness checks and
rollback-on-return.
"""

from __future__ import annotations

from typing import Optional

from repro.netclient.client import (
    DEFAULT_BATCH_ROWS,
    RemoteDatabase,
    RemoteResult,
    RemoteSession,
    WireClient,
)
from repro.netclient.connection import (
    Connection,
    RemotePreparedStatement,
    RemoteResultSet,
)
from repro.netclient.pool import (
    ConnectionPool,
    PoolTimeoutError,
    ReplicatedConnectionPool,
    RoutedSession,
)

__all__ = [
    "DEFAULT_BATCH_ROWS",
    "Connection",
    "ConnectionPool",
    "PoolTimeoutError",
    "RemoteDatabase",
    "RemotePreparedStatement",
    "RemoteResult",
    "RemoteResultSet",
    "RemoteSession",
    "ReplicatedConnectionPool",
    "RoutedSession",
    "WireClient",
    "connect",
]


def connect(
    host: str,
    port: Optional[int] = None,
    auto_commit: bool = True,
    *,
    batch_rows: int = DEFAULT_BATCH_ROWS,
    timeout: Optional[float] = None,
) -> Connection:
    """Open a remote connection (the network twin of ``repro.dbapi.connect``)."""
    database = RemoteDatabase(host, port, batch_rows=batch_rows, timeout=timeout)
    return database.connect(auto_commit=auto_commit)
