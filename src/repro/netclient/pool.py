"""Thread-safe client-side connection pooling for the remote driver.

A :class:`ConnectionPool` keeps a bounded set of handshaken wire
connections to one server and hands them out per unit of work — the
middleware pattern the paper's application tier assumes: many request
handlers, few database connections.

Contract (each piece is tested):

* **min/max size** — ``min_size`` connections are opened eagerly; the pool
  grows on demand up to ``max_size`` and never beyond.
* **checkout timeout** — when every connection is busy, ``acquire`` waits
  up to ``checkout_timeout`` seconds and then raises
  :class:`PoolTimeoutError` instead of blocking forever.
* **liveness check on checkout** — an idle connection that has not been
  used for ``liveness_check_after`` seconds is PINGed before being handed
  out; a dead one (server restarted, socket reset) is discarded and
  replaced transparently.
* **return-to-pool rollback** — a connection released with a transaction
  still open is rolled back (and its auto-commit flag restored) before it
  becomes available again, so one caller's abandoned transaction can never
  leak into the next checkout.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.errors import SqlError
from repro.netclient.client import (
    DEFAULT_BATCH_ROWS,
    RemoteSession,
    WireClient,
)
from repro.sqlengine.errors import SqlExecutionError


class PoolTimeoutError(SqlError):
    """No pooled connection became available within the checkout timeout."""


class ConnectionPool:
    """A bounded pool of wire connections to one SQL server."""

    def __init__(
        self,
        host: str,
        port: Optional[int] = None,
        *,
        min_size: int = 0,
        max_size: int = 8,
        checkout_timeout: float = 5.0,
        liveness_check_after: float = 1.0,
        batch_rows: int = DEFAULT_BATCH_ROWS,
        timeout: Optional[float] = None,
        client_name: str = "repro-pool",
    ) -> None:
        if port is None:
            host, port = host  # an (host, port) address tuple
        if max_size < 1:
            raise SqlExecutionError("max_size must be at least 1")
        if min_size > max_size:
            raise SqlExecutionError("min_size cannot exceed max_size")
        self.host = host
        self.port = port
        self.min_size = min_size
        self.max_size = max_size
        self.checkout_timeout = checkout_timeout
        self.liveness_check_after = liveness_check_after
        self.batch_rows = batch_rows
        self.timeout = timeout
        self.client_name = client_name
        self._cond = threading.Condition()
        self._idle: list[WireClient] = []
        self._size = 0
        self._closed = False
        #: Live clients (for aggregate wire counters); a retired client's
        #: counters are folded into the running totals and its reference
        #: dropped, so churn cannot grow this list without bound.
        self._clients: list[WireClient] = []
        self._retired_round_trips = 0
        self._retired_bytes_sent = 0
        self._retired_bytes_received = 0
        self.checkouts = 0
        self.created = 0
        self.discarded = 0
        self.liveness_failures = 0
        self.checkout_timeouts = 0
        for _ in range(min_size):
            with self._cond:
                self._size += 1
            try:
                client = self._open()
            except BaseException:
                with self._cond:
                    self._size -= 1
                raise
            with self._cond:
                self._idle.append(client)

    # -- checkout / release --------------------------------------------------

    def acquire(self) -> WireClient:
        """Check a live connection out of the pool.

        Prefers the most recently returned idle connection (its statement
        cache and liveness are warmest), grows the pool when allowed, and
        otherwise waits — up to ``checkout_timeout`` — for a release.
        """
        deadline = time.monotonic() + self.checkout_timeout
        while True:
            client: Optional[WireClient] = None
            grow = False
            with self._cond:
                if self._closed:
                    raise SqlExecutionError("connection pool is closed")
                if self._idle:
                    client = self._idle.pop()
                elif self._size < self.max_size:
                    self._size += 1
                    grow = True
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self.checkout_timeouts += 1
                        raise PoolTimeoutError(
                            f"no connection became available within "
                            f"{self.checkout_timeout}s (max_size={self.max_size})"
                        )
                    self._cond.wait(remaining)
                    continue
            if grow:
                try:
                    client = self._open()
                except BaseException:
                    with self._cond:
                        self._size -= 1
                        self._cond.notify()
                    raise
                with self._cond:
                    self.checkouts += 1
                return client
            assert client is not None
            if (
                self.liveness_check_after is not None
                and time.monotonic() - client.last_used > self.liveness_check_after
                and not client.ping()
            ):
                with self._cond:
                    self.liveness_failures += 1
                self._discard(client)
                continue
            with self._cond:
                self.checkouts += 1
            return client

    def release(self, client: WireClient) -> None:
        """Return a connection, rolling back any abandoned transaction."""
        if client.closed:
            self._discard(client)
            return
        try:
            if client.in_transaction:
                client.rollback()
            if not client.autocommit:
                client.set_autocommit(True)
        except (SqlError, OSError):
            # The reset itself failed: the connection state is unknown, so
            # it must not be reused.
            self._discard(client)
            return
        with self._cond:
            if self._closed:
                pass  # fall through to retire outside the lock
            else:
                self._idle.append(client)
                self._cond.notify()
                return
        client.close()
        with self._cond:
            self._size -= 1
            self._retire(client)

    # -- session/connection factories ---------------------------------------

    def session(
        self, autocommit: bool = True, batch_rows: Optional[int] = None
    ) -> RemoteSession:
        """Check out a connection wrapped as a :class:`RemoteSession`;
        closing the session returns the connection to this pool."""
        client = self.acquire()
        try:
            return RemoteSession(
                client,
                autocommit=autocommit,
                pool=self,
                batch_rows=self.batch_rows if batch_rows is None else batch_rows,
            )
        except BaseException:
            self.release(client)
            raise

    def connection(self, auto_commit: bool = True):
        """Check out a connection wrapped in the remote dbapi surface;
        ``close()`` (or leaving its ``with`` block) returns it here."""
        from repro.netclient.connection import Connection

        session = self.session(autocommit=auto_commit)
        try:
            return Connection(None, session=session)
        except BaseException:
            session.close()
            raise

    # -- observability -------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Pool counters plus aggregate wire counters over every
        connection this pool ever opened."""
        with self._cond:
            return {
                "size": self._size,
                "idle": len(self._idle),
                "in_use": self._size - len(self._idle),
                "max_size": self.max_size,
                "checkouts": self.checkouts,
                "created": self.created,
                "discarded": self.discarded,
                "liveness_failures": self.liveness_failures,
                "checkout_timeouts": self.checkout_timeouts,
                "round_trips": self._retired_round_trips
                + sum(c.round_trips for c in self._clients),
                "bytes_sent": self._retired_bytes_sent
                + sum(c.bytes_sent for c in self._clients),
                "bytes_received": self._retired_bytes_received
                + sum(c.bytes_received for c in self._clients),
            }

    def round_trips(self) -> int:
        """Total request/response round trips across every connection this
        pool ever opened (retired ones included)."""
        with self._cond:
            return self._retired_round_trips + sum(
                client.round_trips for client in self._clients
            )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close every idle connection and refuse further checkouts.

        Connections currently checked out are closed as they come back.
        """
        with self._cond:
            self._closed = True
            idle = list(self._idle)
            self._idle.clear()
            self._size -= len(idle)
            self._cond.notify_all()
        for client in idle:
            client.close()
        with self._cond:
            for client in idle:
                self._retire(client)

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- internals -----------------------------------------------------------

    def _open(self) -> WireClient:
        client = WireClient(
            self.host, self.port, timeout=self.timeout, client_name=self.client_name
        )
        with self._cond:
            self._clients.append(client)
            self.created += 1
        return client

    def _discard(self, client: WireClient) -> None:
        client.close()
        with self._cond:
            self.discarded += 1
            self._size -= 1
            self._retire(client)
            self._cond.notify()

    def _retire(self, client: WireClient) -> None:
        """Fold a dead client's counters into the totals and drop it.
        Caller holds the condition lock."""
        try:
            self._clients.remove(client)
        except ValueError:  # pragma: no cover - retired twice
            return
        self._retired_round_trips += client.round_trips
        self._retired_bytes_sent += client.bytes_sent
        self._retired_bytes_received += client.bytes_received
