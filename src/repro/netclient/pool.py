"""Thread-safe client-side connection pooling for the remote driver.

A :class:`ConnectionPool` keeps a bounded set of handshaken wire
connections to one server and hands them out per unit of work — the
middleware pattern the paper's application tier assumes: many request
handlers, few database connections.

Contract (each piece is tested):

* **min/max size** — ``min_size`` connections are opened eagerly; the pool
  grows on demand up to ``max_size`` and never beyond.
* **checkout timeout** — when every connection is busy, ``acquire`` waits
  up to ``checkout_timeout`` seconds and then raises
  :class:`PoolTimeoutError` instead of blocking forever.
* **liveness check on checkout** — an idle connection that has not been
  used for ``liveness_check_after`` seconds is PINGed before being handed
  out; a dead one (server restarted, socket reset) is discarded and
  replaced transparently.
* **return-to-pool rollback** — a connection released with a transaction
  still open is rolled back (and its auto-commit flag restored) before it
  becomes available again, so one caller's abandoned transaction can never
  leak into the next checkout.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.errors import SqlError
from repro.netclient.client import (
    DEFAULT_BATCH_ROWS,
    RemoteSession,
    WireClient,
)
from repro.obs.trace import new_root_context
from repro.sqlengine.errors import SqlExecutionError


class PoolTimeoutError(SqlError):
    """No pooled connection became available within the checkout timeout."""


#: The documented :meth:`ConnectionPool.stats` schema.  Every key is an
#: integer counter/gauge; the contract test in ``tests/obs`` pins this
#: tuple, so additions here must update it (removals are breaking).
POOL_STATS_KEYS = (
    "size", "idle", "in_use", "max_size",
    "checkouts", "created", "discarded",
    "liveness_failures", "ping_failures", "replacements",
    "checkout_timeouts",
    "round_trips", "bytes_sent", "bytes_received",
)

#: The documented :meth:`ReplicatedConnectionPool.stats` schema: routing
#: and failover counters, plus ``primary`` (one :data:`POOL_STATS_KEYS`
#: document with an ``address``) and ``replicas`` (a list of the same).
ROUTED_POOL_STATS_KEYS = (
    "reads_on_replicas", "reads_on_primary", "writes_on_primary",
    "read_your_writes_waits", "watermark_wait_timeouts", "lag_fallbacks",
    "replicas_evicted", "replicas_detached", "failovers",
    "generation", "last_write_lsn",
    "primary", "replicas",
)


class ConnectionPool:
    """A bounded pool of wire connections to one SQL server."""

    def __init__(
        self,
        host: str,
        port: Optional[int] = None,
        *,
        min_size: int = 0,
        max_size: int = 8,
        checkout_timeout: float = 5.0,
        liveness_check_after: float = 1.0,
        batch_rows: int = DEFAULT_BATCH_ROWS,
        timeout: Optional[float] = None,
        client_name: str = "repro-pool",
    ) -> None:
        if port is None:
            host, port = host  # an (host, port) address tuple
        if max_size < 1:
            raise SqlExecutionError("max_size must be at least 1")
        if min_size > max_size:
            raise SqlExecutionError("min_size cannot exceed max_size")
        self.host = host
        self.port = port
        self.min_size = min_size
        self.max_size = max_size
        self.checkout_timeout = checkout_timeout
        self.liveness_check_after = liveness_check_after
        self.batch_rows = batch_rows
        self.timeout = timeout
        self.client_name = client_name
        self._cond = threading.Condition()
        self._idle: list[WireClient] = []
        self._size = 0
        self._closed = False
        #: Live clients (for aggregate wire counters); a retired client's
        #: counters are folded into the running totals and its reference
        #: dropped, so churn cannot grow this list without bound.
        self._clients: list[WireClient] = []
        self._retired_round_trips = 0
        self._retired_bytes_sent = 0
        self._retired_bytes_received = 0
        self.checkouts = 0
        self.created = 0
        self.discarded = 0
        self.liveness_failures = 0
        self.checkout_timeouts = 0
        #: Checkout PINGs that found a dead connection (== liveness_failures,
        #: under the name the ops docs use), and the transparent replacements
        #: those triggered — the checkout continues with another connection.
        self.ping_failures = 0
        self.replacements = 0
        for _ in range(min_size):
            with self._cond:
                self._size += 1
            try:
                client = self._open()
            except BaseException:
                with self._cond:
                    self._size -= 1
                raise
            with self._cond:
                self._idle.append(client)

    # -- checkout / release --------------------------------------------------

    def acquire(self) -> WireClient:
        """Check a live connection out of the pool.

        Prefers the most recently returned idle connection (its statement
        cache and liveness are warmest), grows the pool when allowed, and
        otherwise waits — up to ``checkout_timeout`` — for a release.
        """
        deadline = time.monotonic() + self.checkout_timeout
        while True:
            client: Optional[WireClient] = None
            grow = False
            with self._cond:
                if self._closed:
                    raise SqlExecutionError("connection pool is closed")
                if self._idle:
                    client = self._idle.pop()
                elif self._size < self.max_size:
                    self._size += 1
                    grow = True
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self.checkout_timeouts += 1
                        raise PoolTimeoutError(
                            f"no connection became available within "
                            f"{self.checkout_timeout}s (max_size={self.max_size})"
                        )
                    self._cond.wait(remaining)
                    continue
            if grow:
                try:
                    client = self._open()
                except BaseException:
                    with self._cond:
                        self._size -= 1
                        self._cond.notify()
                    raise
                with self._cond:
                    self.checkouts += 1
                return client
            assert client is not None
            if (
                self.liveness_check_after is not None
                and time.monotonic() - client.last_used > self.liveness_check_after
                and not client.ping()
            ):
                with self._cond:
                    self.liveness_failures += 1
                    self.ping_failures += 1
                    self.replacements += 1
                self._discard(client)
                continue
            with self._cond:
                self.checkouts += 1
            return client

    def release(self, client: WireClient) -> None:
        """Return a connection, rolling back any abandoned transaction."""
        if client.closed:
            self._discard(client)
            return
        try:
            if client.in_transaction:
                client.rollback()
            if not client.autocommit:
                client.set_autocommit(True)
        except (SqlError, OSError):
            # The reset itself failed: the connection state is unknown, so
            # it must not be reused.
            self._discard(client)
            return
        with self._cond:
            if self._closed:
                pass  # fall through to retire outside the lock
            else:
                self._idle.append(client)
                self._cond.notify()
                return
        client.close()
        with self._cond:
            self._size -= 1
            self._retire(client)

    # -- session/connection factories ---------------------------------------

    def session(
        self,
        autocommit: bool = True,
        batch_rows: Optional[int] = None,
        tracing=None,
        trace_buffer=None,
        node: str = "client",
    ) -> RemoteSession:
        """Check out a connection wrapped as a :class:`RemoteSession`;
        closing the session returns the connection to this pool."""
        client = self.acquire()
        try:
            return RemoteSession(
                client,
                autocommit=autocommit,
                pool=self,
                batch_rows=self.batch_rows if batch_rows is None else batch_rows,
                tracing=tracing,
                trace_buffer=trace_buffer,
                node=node,
            )
        except BaseException:
            self.release(client)
            raise

    def connection(self, auto_commit: bool = True):
        """Check out a connection wrapped in the remote dbapi surface;
        ``close()`` (or leaving its ``with`` block) returns it here."""
        from repro.netclient.connection import Connection

        session = self.session(autocommit=auto_commit)
        try:
            return Connection(None, session=session)
        except BaseException:
            session.close()
            raise

    # -- observability -------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Pool counters plus aggregate wire counters over every
        connection this pool ever opened."""
        with self._cond:
            return {
                "size": self._size,
                "idle": len(self._idle),
                "in_use": self._size - len(self._idle),
                "max_size": self.max_size,
                "checkouts": self.checkouts,
                "created": self.created,
                "discarded": self.discarded,
                "liveness_failures": self.liveness_failures,
                "ping_failures": self.ping_failures,
                "replacements": self.replacements,
                "checkout_timeouts": self.checkout_timeouts,
                "round_trips": self._retired_round_trips
                + sum(c.round_trips for c in self._clients),
                "bytes_sent": self._retired_bytes_sent
                + sum(c.bytes_sent for c in self._clients),
                "bytes_received": self._retired_bytes_received
                + sum(c.bytes_received for c in self._clients),
            }

    def round_trips(self) -> int:
        """Total request/response round trips across every connection this
        pool ever opened (retired ones included)."""
        with self._cond:
            return self._retired_round_trips + sum(
                client.round_trips for client in self._clients
            )

    def traces(self, trace_id: Optional[str] = None) -> list[dict]:
        """Spans buffered on the server this pool fronts."""
        session = self.session()
        try:
            return session.traces(trace_id)["spans"]
        finally:
            session.close()

    def metrics(self) -> str:
        """The fronted server's metrics in Prometheus text format."""
        session = self.session()
        try:
            return session.metrics()
        finally:
            session.close()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close every idle connection and refuse further checkouts.

        Connections currently checked out are closed as they come back.
        """
        with self._cond:
            self._closed = True
            idle = list(self._idle)
            self._idle.clear()
            self._size -= len(idle)
            self._cond.notify_all()
        for client in idle:
            client.close()
        with self._cond:
            for client in idle:
                self._retire(client)

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- internals -----------------------------------------------------------

    def _open(self) -> WireClient:
        client = WireClient(
            self.host, self.port, timeout=self.timeout, client_name=self.client_name
        )
        with self._cond:
            self._clients.append(client)
            self.created += 1
        return client

    def _discard(self, client: WireClient) -> None:
        client.close()
        with self._cond:
            self.discarded += 1
            self._size -= 1
            self._retire(client)
            self._cond.notify()

    def _retire(self, client: WireClient) -> None:
        """Fold a dead client's counters into the totals and drop it.
        Caller holds the condition lock."""
        try:
            self._clients.remove(client)
        except ValueError:  # pragma: no cover - retired twice
            return
        self._retired_round_trips += client.round_trips
        self._retired_bytes_sent += client.bytes_sent
        self._retired_bytes_received += client.bytes_received


# ---------------------------------------------------------------------------
# Replica-aware routing
# ---------------------------------------------------------------------------

_READ_ONLY_KEYWORDS = frozenset({"select", "explain"})


def _read_only_sql(sql: str) -> bool:
    """Lexical read-only test: does this statement only read?

    The router cannot ask the engine without a round trip, so it keys off
    the first keyword — exactly the set of statements a read-only server
    accepts (SELECT, EXPLAIN).  Anything unrecognised routes to the
    primary, which is always correct, just not load-balanced.
    """
    head = sql.lstrip()[:16].split(None, 1)
    return bool(head) and head[0].lower() in _READ_ONLY_KEYWORDS


def _transport_dead(session: Optional[RemoteSession], error: BaseException) -> bool:
    """Did ``error`` mean the node (not the statement) failed?

    A broken transport always tears the wire client down before raising,
    so "the client is now closed" separates dead-node errors from ordinary
    SQL errors on a healthy connection.  Pool saturation
    (:class:`PoolTimeoutError`) is neither.
    """
    if isinstance(error, PoolTimeoutError):
        return False
    if isinstance(error, (OSError, EOFError)):
        return True
    return (
        isinstance(error, SqlError)
        and session is not None
        and session.client.closed
    )


class _Node:
    """One server endpoint and its connection pool."""

    def __init__(self, address: tuple[str, int], pool: ConnectionPool) -> None:
        self.address = (address[0], int(address[1]))
        self.pool = pool
        self.healthy = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "healthy" if self.healthy else "evicted"
        return f"<_Node {self.address[0]}:{self.address[1]} {state}>"


class RoutedSession:
    """A RemoteSession-shaped facade that routes statements across nodes.

    Reads (auto-commit SELECT/EXPLAIN, or everything when ``read_only``)
    go to a replica; writes and explicit read-write transactions go to the
    primary.  Underlying per-node sessions are checked out lazily from the
    routed pool's node pools and held for this session's lifetime, so a
    transaction stays pinned to one connection.
    """

    def __init__(
        self,
        pool: "ReplicatedConnectionPool",
        *,
        autocommit: bool = True,
        batch_rows: Optional[int] = None,
        read_only: bool = False,
        tracing=None,
        trace_buffer=None,
        node: str = "client",
    ) -> None:
        self._routed = pool
        self._autocommit = autocommit
        self._read_only = read_only
        self.batch_rows = pool.batch_rows if batch_rows is None else batch_rows
        self._closed = False
        #: Client-edge tracing (see RemoteSession): enabled options start
        #: root spans for sampled statements; ``_stmt_trace`` holds the
        #: context of the statement currently being routed so the
        #: read-your-writes barrier can record its wait against it.
        self._tracing = tracing
        self._trace_buffer = trace_buffer
        self._node = node
        self._trace_counter = 0
        self._stmt_trace = None
        self._primary: Optional[RemoteSession] = None
        #: Pool generation the pinned primary session was checked out
        #: under; a mismatch means a failover happened elsewhere and the
        #: session points at a demoted (dead) node.
        self._primary_generation = 0
        #: The replica this session reads from, pinned once chosen so a
        #: read-only transaction sees one snapshot-consistent node.
        self._replica: Optional[tuple[_Node, RemoteSession]] = None
        #: Synthetic prepared-statement ids -> SQL text.  Execution routes
        #: the text like any statement; the per-connection statement cache
        #: underneath keeps the server-side PREPARE amortised.
        self._prepared: dict[int, str] = {}
        self._prepared_seq = 0

    # -- properties ----------------------------------------------------------

    @property
    def client(self):
        """The wire client of whichever node this session last pinned
        (for counter-reading tests; per-node counters live on the pools)."""
        if self._primary is not None:
            return self._primary.client
        if self._replica is not None:
            return self._replica[1].client
        return _NULL_CLIENT

    @property
    def in_transaction(self) -> bool:
        if self._read_only:
            return self._replica is not None and self._replica[1].in_transaction
        return self._primary is not None and self._primary.in_transaction

    @property
    def autocommit(self) -> bool:
        return self._autocommit

    @autocommit.setter
    def autocommit(self, value: bool) -> None:
        self._autocommit = value
        if self._primary is not None:
            self._primary.autocommit = value
        if self._read_only and self._replica is not None:
            self._replica[1].autocommit = value

    # -- SQL interface -------------------------------------------------------

    def execute(self, sql: str, params=(), *, trace=None):
        self._check_open()
        span = None
        if trace is None and self._tracing is not None and self._tracing.enabled:
            self._trace_counter += 1
            if self._tracing.samples(self._trace_counter) and self._trace_buffer is not None:
                span = self._trace_buffer.start_span(
                    new_root_context(), "client", self._node
                )
                span.tag(sql=sql)
                trace = span.context
        self._stmt_trace = trace
        try:
            result = self._execute_routed(sql, params, trace)
        except Exception as error:
            if span is not None:
                span.finish(error)
            raise
        finally:
            self._stmt_trace = None
        if span is not None:
            span.tag(rows=result.rowcount)
            span.finish()
        return result

    def _execute_routed(self, sql: str, params, trace):
        pool = self._routed
        if self._read_only or self._routes_to_replica(sql):
            return self._with_replica(lambda s: s.execute(sql, params, trace=trace))
        write = not _read_only_sql(sql)
        retryable = write and not self.in_transaction and pool.retry_writes_on_failover
        result = self._with_primary(
            lambda s: s.execute(sql, params, trace=trace), retryable=retryable
        )
        if write:
            pool._count("writes_on_primary")
            if not self.in_transaction:
                pool._note_write(self._primary.client.last_lsn)
        else:
            pool._count("reads_on_primary")
        return result

    def prepare(self, sql: str) -> int:
        """A synthetic statement id valid for this session; execution
        re-routes the SQL text, so a prepared read can run on a replica
        while a prepared write runs on the primary — and survives a
        failover in between."""
        self._check_open()
        self._prepared_seq += 1
        self._prepared[self._prepared_seq] = sql
        return self._prepared_seq

    def execute_prepared(self, stmt_id: int, params=()):
        self._check_open()
        sql = self._prepared.get(stmt_id)
        if sql is None:
            raise SqlExecutionError(f"unknown prepared statement id {stmt_id}")
        return self.execute(sql, params)

    def close_statement(self, stmt_id: int) -> None:
        self._prepared.pop(stmt_id, None)

    # -- transactions --------------------------------------------------------

    def begin(self) -> None:
        self._check_open()
        if self._read_only:
            self._with_replica(lambda s: s.begin(), statement=False)
        else:
            self._with_primary(lambda s: s.begin(), retryable=True)

    def commit(self, *, trace=None) -> None:
        self._check_open()
        if self._read_only:
            if self._replica is not None:
                self._replica[1].commit()
            return
        if self._primary is not None:
            # A commit must never be retried on a new primary: if the old
            # one died mid-COMMIT the outcome is unknown.
            self._with_primary(lambda s: s.commit(trace=trace), retryable=False)
            self._routed._note_write(self._primary.client.last_lsn)

    def rollback(self) -> None:
        self._check_open()
        if self._read_only:
            if self._replica is not None:
                self._replica[1].rollback()
            return
        if self._primary is not None:
            self._with_primary(lambda s: s.rollback(), retryable=False)

    # -- two-phase commit (the sharding coordinator's verbs) ------------------

    def prepare_txn(self, gid: str, *, trace=None) -> None:
        """Phase one against the primary.  Never retried across a
        failover: the transaction's server state died with the old
        primary, so the coordinator must treat the failure as a veto."""
        self._check_open()
        self._with_primary(lambda s: s.prepare_txn(gid, trace=trace), retryable=False)

    def commit_prepared(self, gid: str, *, trace=None) -> None:
        """Apply a prepared transaction.  Retryable: the decision is
        idempotent, and a promoted replica adopted the prepared batch."""
        self._check_open()
        self._with_primary(
            lambda s: s.commit_prepared(gid, trace=trace), retryable=True
        )
        self._routed._note_write(self._primary.client.last_lsn)

    def abort_prepared(self, gid: str, *, trace=None) -> None:
        """Discard a prepared transaction (presumed abort; retryable)."""
        self._check_open()
        self._with_primary(
            lambda s: s.abort_prepared(gid, trace=trace), retryable=True
        )

    def list_prepared(self) -> list:
        """Gids in doubt on the current primary."""
        self._check_open()
        return self._with_primary(lambda s: s.list_prepared(), retryable=True)

    # -- server-side extras --------------------------------------------------

    def explain(self, sql: str) -> str:
        self._check_open()
        if self._read_only:
            return self._with_replica(lambda s: s.explain(sql), statement=False)
        return self._with_primary(lambda s: s.explain(sql), retryable=True)

    def checkpoint(self) -> None:
        self._check_open()
        self._with_primary(lambda s: s.checkpoint(), retryable=False)

    def server_stats(self) -> dict:
        self._check_open()
        if self._read_only:
            return self._with_replica(lambda s: s.server_stats(), statement=False)
        return self._with_primary(lambda s: s.server_stats(), retryable=True)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._prepared.clear()
        replica = self._replica
        self._replica = None
        if replica is not None:
            replica[1].close()
        primary = self._primary
        self._primary = None
        if primary is not None:
            primary.close()

    def __enter__(self) -> "RoutedSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            if not self._closed and exc_type is None:
                self.commit()
            elif not self._closed:
                try:
                    self.rollback()
                except (SqlError, OSError):
                    pass
        finally:
            self.close()

    # -- routing internals ---------------------------------------------------

    def _routes_to_replica(self, sql: str) -> bool:
        if not self._autocommit or self.in_transaction:
            return False
        return _read_only_sql(sql)

    def _ensure_primary(self) -> RemoteSession:
        pool_generation = self._routed.generation
        session = self._primary
        if session is not None:
            if (
                not session.client.closed
                and self._primary_generation == pool_generation
            ):
                return session
            self._drop_primary()
        session = self._routed._primary_node().pool.session(
            autocommit=self._autocommit, batch_rows=self.batch_rows
        )
        self._primary = session
        self._primary_generation = pool_generation
        return session

    def _drop_primary(self) -> None:
        session = self._primary
        self._primary = None
        if session is not None:
            session.close()

    def _with_primary(self, fn, *, retryable: bool):
        """Run ``fn`` against the primary's session, failing over once.

        On a dead-node error the routed pool promotes a replica; the
        statement is retried on the new primary only when ``retryable``
        (an auto-commit statement outside any transaction) — an explicit
        transaction lost its server state, so its caller must restart it.
        """
        pool = self._routed
        failed_over = False
        while True:
            session = None
            try:
                session = self._ensure_primary()
                return fn(session)
            except PoolTimeoutError:
                raise
            except (SqlError, OSError) as error:
                if (
                    failed_over
                    or not pool.failover
                    or not _transport_dead(session, error)
                ):
                    raise
                had_txn = session is not None and session.in_transaction
                # The generation the dead session was routed under: the
                # pool only runs a new promotion if no one else already
                # moved the generation past it.
                session_generation = self._primary_generation
                self._drop_primary()
                if not pool._failover(session_generation):
                    raise
                failed_over = True
                if had_txn or not retryable:
                    raise

    def _ensure_replica(self) -> Optional[tuple[_Node, RemoteSession]]:
        pinned = self._replica
        if pinned is not None:
            node, session = pinned
            if (
                node.healthy
                and not session.client.closed
                and self._routed._is_replica(node)
            ):
                return pinned
            self._drop_replica()
        checkout = self._routed._checkout_replica(
            autocommit=True if not self._read_only else self._autocommit,
            batch_rows=self.batch_rows,
        )
        if checkout is not None:
            self._replica = checkout
        return checkout

    def _drop_replica(self) -> None:
        pinned = self._replica
        self._replica = None
        if pinned is not None:
            pinned[1].close()

    def _with_replica(self, fn, *, statement: bool = True):
        """Run ``fn`` on a replica, evicting dead ones and falling back.

        A dead replica is evicted from the routed pool and the work moves
        to the next one (or the primary) — unless a read-only transaction
        was open on it, in which case its snapshot is gone and the error
        must surface.  A read-your-writes wait that times out falls back
        to the primary without evicting: the replica is lagging, not dead.
        """
        pool = self._routed
        while True:
            pinned = self._ensure_replica()
            if pinned is None:
                if self._read_only:
                    raise SqlExecutionError(
                        "no healthy replica available for a read-only session"
                    )
                result = self._with_primary(fn, retryable=True)
                pool._count("reads_on_primary")
                return result
            node, session = pinned
            try:
                if statement:
                    self._read_your_writes_barrier(session)
                result = fn(session)
            except _LagTimeout:
                # Fall back for this read; keep the replica pinned.
                pool._count("lag_fallbacks")
                if self._read_only:
                    raise SqlExecutionError(
                        "replica did not catch up to the last write in time"
                    )
                result = self._with_primary(fn, retryable=True)
                pool._count("reads_on_primary")
                return result
            except PoolTimeoutError:
                raise
            except (SqlError, OSError) as error:
                if not _transport_dead(session, error):
                    raise
                in_txn = session.in_transaction
                self._drop_replica()
                pool._evict(node)
                if in_txn:
                    raise
                continue
            pool._count("reads_on_replicas")
            return result

    def _read_your_writes_barrier(self, session: RemoteSession) -> None:
        """Make a replica read see this pool's last acknowledged write.

        Every response from a replica carries its replayed watermark, so
        the wait round trip is skipped whenever this connection has
        already observed a watermark past the last write's LSN.
        """
        pool = self._routed
        if not pool.read_your_writes:
            return
        target = pool.last_write_lsn
        if target == (0, 0):
            return
        client = session.client
        if client.last_lsn >= target:
            return
        pool._count("read_your_writes_waits")
        span = None
        trace = self._stmt_trace
        if trace is not None and trace.sampled and self._trace_buffer is not None:
            span = self._trace_buffer.start_span(trace, "wait_lsn", self._node)
        t0 = time.perf_counter()
        try:
            reached = client.wait_lsn(target, pool.read_your_writes_timeout)
        except SqlError as error:
            if span is not None:
                span.phase("wait_lsn", time.perf_counter() - t0)
                span.finish(error)
            if client.closed:
                raise  # transport death, not a lag timeout
            pool._count("watermark_wait_timeouts")
            raise _LagTimeout() from error
        if span is not None:
            span.phase("wait_lsn", time.perf_counter() - t0)
            span.finish()
        if reached < target:
            pool._count("watermark_wait_timeouts")
            raise _LagTimeout()

    def _check_open(self) -> None:
        if self._closed:
            raise SqlExecutionError("session is closed")


class _LagTimeout(Exception):
    """Internal: a read-your-writes wait timed out (replica lagging)."""


class _NullClient:
    """Counter stub for a routed session that has not pinned a node yet."""

    round_trips = 0
    bytes_sent = 0
    bytes_received = 0
    closed = False
    in_transaction = False
    last_lsn = (0, 0)


_NULL_CLIENT = _NullClient()


class ReplicatedConnectionPool:
    """Replica-aware routing over one primary and N read replicas.

    Owns one :class:`ConnectionPool` per node.  Sessions from
    :meth:`session` route auto-commit reads round-robin across healthy
    replicas and everything else to the primary; with ``read_your_writes``
    (the default) a replica read first waits for the replica to replay the
    pool's last acknowledged write, so a client never reads its own write's
    absence.  When the primary dies mid-statement the pool promotes the
    first healthy replica (draining its stream) and re-points writes at
    it — ``failovers`` in :meth:`stats` counts these.
    """

    def __init__(
        self,
        primary: tuple[str, int],
        replicas=(),
        *,
        read_your_writes: bool = True,
        read_your_writes_timeout: float = 5.0,
        failover: bool = True,
        retry_writes_on_failover: bool = True,
        promote_data_dir: Optional[str] = None,
        min_size: int = 0,
        max_size: int = 8,
        checkout_timeout: float = 5.0,
        liveness_check_after: float = 1.0,
        batch_rows: int = DEFAULT_BATCH_ROWS,
        timeout: Optional[float] = None,
        client_name: str = "repro-routed",
    ) -> None:
        self.read_your_writes = read_your_writes
        self.read_your_writes_timeout = read_your_writes_timeout
        self.failover = failover
        self.retry_writes_on_failover = retry_writes_on_failover
        #: When set, a failover promotion asks the replica to become
        #: durable at this path (PROMOTE's optional data_dir), so the new
        #: primary's committed prefix survives its own crashes too.
        self.promote_data_dir = promote_data_dir
        self.batch_rows = batch_rows
        self._pool_options = dict(
            min_size=min_size,
            max_size=max_size,
            checkout_timeout=checkout_timeout,
            liveness_check_after=liveness_check_after,
            batch_rows=batch_rows,
            timeout=timeout,
        )
        self.client_name = client_name
        self._lock = threading.Lock()
        self._primary = self._make_node(primary, f"{client_name}-primary")
        self._replicas: list[_Node] = [
            self._make_node(address, f"{client_name}-replica{index}")
            for index, address in enumerate(replicas)
        ]
        self._rr = 0
        self._generation = 0
        self._last_write_lsn = (0, 0)
        self._closed = False
        self.reads_on_replicas = 0
        self.reads_on_primary = 0
        self.writes_on_primary = 0
        self.read_your_writes_waits = 0
        #: Read-your-writes waits that timed out (the replica was lagging
        #: past ``read_your_writes_timeout``)...
        self.watermark_wait_timeouts = 0
        #: ...and the reads that consequently fell back to the primary
        #: (every timeout becomes a fallback; read-only sessions surface
        #: the error instead, so the two can differ).
        self.lag_fallbacks = 0
        self.replicas_evicted = 0
        self.replicas_detached = 0
        self.failovers = 0

    def _make_node(self, address, client_name: str) -> _Node:
        return _Node(
            address, ConnectionPool(address, client_name=client_name, **self._pool_options)
        )

    # -- session factories ---------------------------------------------------

    def session(
        self,
        autocommit: bool = True,
        batch_rows: Optional[int] = None,
        read_only: bool = False,
        tracing=None,
        trace_buffer=None,
        node: str = "client",
    ) -> RoutedSession:
        """A routed session; ``read_only=True`` pins every statement —
        explicit transactions included — to one replica."""
        with self._lock:
            if self._closed:
                raise SqlExecutionError("connection pool is closed")
        return RoutedSession(
            self,
            autocommit=autocommit,
            batch_rows=batch_rows,
            read_only=read_only,
            tracing=tracing,
            trace_buffer=trace_buffer,
            node=node,
        )

    def connection(self, auto_commit: bool = True, read_only: bool = False):
        """The remote dbapi surface over a routed session."""
        from repro.netclient.connection import Connection

        session = self.session(autocommit=auto_commit, read_only=read_only)
        try:
            return Connection(None, session=session)
        except BaseException:
            session.close()
            raise

    # -- topology ------------------------------------------------------------

    @property
    def generation(self) -> int:
        """Bumped by every failover; routed sessions use it to detect a
        promotion that raced their own error handling."""
        with self._lock:
            return self._generation

    @property
    def primary_address(self) -> tuple[str, int]:
        with self._lock:
            return self._primary.address

    @property
    def replica_addresses(self) -> list[tuple[str, int]]:
        with self._lock:
            return [node.address for node in self._replicas if node.healthy]

    @property
    def last_write_lsn(self) -> tuple[int, int]:
        """The primary LSN of the last write acknowledged via this pool."""
        with self._lock:
            return self._last_write_lsn

    def _note_write(self, lsn: tuple[int, int]) -> None:
        with self._lock:
            if lsn > self._last_write_lsn:
                self._last_write_lsn = lsn

    def _primary_node(self) -> _Node:
        with self._lock:
            return self._primary

    def _is_replica(self, node: _Node) -> bool:
        with self._lock:
            return node in self._replicas

    def _checkout_replica(self, *, autocommit: bool, batch_rows: Optional[int]):
        """(node, session) from the next healthy replica, or None.

        Walks the ring at most once; a replica whose pool cannot produce a
        connection (node down) is evicted on the spot.  Saturation
        (:class:`PoolTimeoutError`) propagates — the node is alive, the
        caller is just over-driving it.
        """
        while True:
            with self._lock:
                candidates = [node for node in self._replicas if node.healthy]
                if not candidates:
                    return None
                node = candidates[self._rr % len(candidates)]
                self._rr += 1
            try:
                session = node.pool.session(
                    autocommit=autocommit, batch_rows=batch_rows
                )
            except PoolTimeoutError:
                raise
            except (SqlError, OSError):
                self._evict(node)
                continue
            return node, session

    def _evict(self, node: _Node) -> None:
        """Drop a dead replica from rotation and close its pool."""
        with self._lock:
            if not node.healthy or node not in self._replicas:
                return
            node.healthy = False
            self._replicas.remove(node)
            self.replicas_evicted += 1
        node.pool.close()

    # -- failover ------------------------------------------------------------

    def _failover(self, observed_generation: int) -> bool:
        """Promote a replica to primary; True when a (possibly concurrent)
        failover produced a new primary to retry against.

        Serialised: the first session to notice the dead primary runs the
        promotion; racers block on the lock, see the generation moved on,
        and simply retry.  ``observed_generation`` is the generation the
        caller routed its failed statement under.
        """
        if not self.failover:
            return False
        with self._lock:
            if self._closed:
                return False
            if self._generation != observed_generation:
                return True  # someone else already failed over
            candidates = list(self._replicas)
            old_primary = self._primary
        for node in candidates:
            if not node.healthy:
                continue
            try:
                with node.pool.session() as session:
                    session.client.promote(self.promote_data_dir)
            except (SqlError, OSError):
                self._evict(node)
                continue
            with self._lock:
                if self._generation != observed_generation:
                    return True
                self._replicas.remove(node)
                # The surviving replicas still follow the dead primary:
                # they will never see writes acknowledged by the new one,
                # so serving reads from them would break read-your-writes.
                # Detach them; reads fall back to the new primary.
                detached = list(self._replicas)
                self._replicas = []
                self.replicas_detached += len(detached)
                self._primary = node
                self._generation += 1
                self.failovers += 1
            for stale in detached:
                stale.healthy = False
                stale.pool.close()
            old_primary.healthy = False
            old_primary.pool.close()
            return True
        return False

    # -- observability -------------------------------------------------------

    def stats(self) -> dict[str, object]:
        """Routing and failover counters plus per-node pool stats."""
        with self._lock:
            primary = self._primary
            replicas = list(self._replicas)
            counters = {
                "reads_on_replicas": self.reads_on_replicas,
                "reads_on_primary": self.reads_on_primary,
                "writes_on_primary": self.writes_on_primary,
                "read_your_writes_waits": self.read_your_writes_waits,
                "watermark_wait_timeouts": self.watermark_wait_timeouts,
                "lag_fallbacks": self.lag_fallbacks,
                "replicas_evicted": self.replicas_evicted,
                "replicas_detached": self.replicas_detached,
                "failovers": self.failovers,
                "generation": self._generation,
                "last_write_lsn": list(self._last_write_lsn),
            }
        counters["primary"] = {
            "address": list(primary.address),
            **primary.pool.stats(),
        }
        counters["replicas"] = [
            {"address": list(node.address), **node.pool.stats()} for node in replicas
        ]
        return counters

    def round_trips(self) -> int:
        """Aggregate wire round trips across every node pool."""
        with self._lock:
            pools = [self._primary.pool] + [node.pool for node in self._replicas]
        return sum(pool.round_trips() for pool in pools)

    def traces(self, trace_id: Optional[str] = None) -> list[dict]:
        """Server-side spans gathered from the primary and every healthy
        replica.  Unreachable nodes are skipped: traces are a diagnostic
        surface and must not fail when the cluster is degraded."""
        with self._lock:
            pools = [self._primary.pool] + [
                node.pool for node in self._replicas if node.healthy
            ]
        spans: list[dict] = []
        for pool in pools:
            try:
                spans.extend(pool.traces(trace_id))
            except (SqlError, OSError):
                continue
        return spans

    def metrics(self) -> str:
        """Prometheus text from the primary and every healthy replica,
        concatenated with per-node comment headers."""
        with self._lock:
            nodes = [self._primary] + [n for n in self._replicas if n.healthy]
        chunks: list[str] = []
        for node in nodes:
            try:
                text = node.pool.metrics()
            except (SqlError, OSError):
                continue
            chunks.append(f"# node {node.address[0]}:{node.address[1]}\n{text}")
        return "\n".join(chunks)

    def _count(self, counter: str) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + 1)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pools = [self._primary.pool] + [node.pool for node in self._replicas]
        for pool in pools:
            pool.close()

    def __enter__(self) -> "ReplicatedConnectionPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
