"""Property test: the logical optimizer never changes query results.

Hypothesis generates random query trees over the bank schema — one or two
bindings, randomly shaped predicates (comparisons, AND/OR/NOT, constants,
equi-joins in the WHERE clause) and entity/column/pair outputs.  Each tree
is run through the real SQL engine twice: once as built (optimizer off) and
once through the full rule set.  The returned rows must be identical as
multisets, with entities compared by primary key.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.optimizer import Optimizer, OptimizerOptions
from repro.core.querytree.nodes import (
    ColumnOutput,
    EntityOutput,
    PairOutput,
    QueryTree,
    SqlBinary,
    SqlColumn,
    SqlExpr,
    SqlLiteral,
    SqlNot,
    TupleOutput,
)
from repro.core.runtime import execute_generated_query
from repro.core.sqlgen.generator import SqlGenerator
from repro.orm.entity import Entity
from repro.orm.pair import Pair
from repro.testing import make_bank_db, make_bank_mapping

#: (column, kind) pools per binding alias of the generated trees.
_CLIENT_COLUMNS = [
    ("ClientID", "int"),
    ("Name", "text"),
    ("Country", "text"),
    ("PostalCode", "text"),
]
_ACCOUNT_COLUMNS = [
    ("AccountID", "int"),
    ("ClientID", "int"),
    ("Balance", "num"),
    ("MinBalance", "num"),
]

_TEXT_LITERALS = ["Canada", "Switzerland", "Peru", "Alice", "LA", ""]
_COMPARISONS = ["=", "!=", "<", "<=", ">", ">="]


def _columns_for(alias: str) -> list[tuple[str, str]]:
    return _CLIENT_COLUMNS if alias == "A" else _ACCOUNT_COLUMNS


def _leaf_strategy(aliases: list[str]) -> st.SearchStrategy[SqlExpr]:
    def make_comparison(draw_tuple):
        alias, (column, kind), op, number, text = draw_tuple
        column_ref = SqlColumn(alias, column)
        if kind == "text":
            literal = SqlLiteral(text)
            op = op if op in ("=", "!=") else "="
        else:
            literal = SqlLiteral(number)
        return SqlBinary(op, column_ref, literal)

    comparison = st.tuples(
        st.sampled_from(aliases),
        st.sampled_from(_CLIENT_COLUMNS + _ACCOUNT_COLUMNS),
        st.sampled_from(_COMPARISONS),
        st.integers(min_value=-5, max_value=1005) | st.sampled_from([0, 1000, 1001, 1002]),
        st.sampled_from(_TEXT_LITERALS),
    ).map(
        lambda t: make_comparison(
            (t[0], t[1] if t[1] in _columns_for(t[0]) else _columns_for(t[0])[0], *t[2:])
        )
    )
    constant = st.sampled_from([SqlLiteral(True), SqlLiteral(False)])
    return comparison | constant


def _predicate_strategy(aliases: list[str]) -> st.SearchStrategy[SqlExpr]:
    leaf = _leaf_strategy(aliases)
    return st.recursive(
        leaf,
        lambda children: st.one_of(
            st.tuples(st.sampled_from(["AND", "OR"]), children, children).map(
                lambda t: SqlBinary(t[0], t[1], t[2])
            ),
            children.map(SqlNot),
        ),
        max_leaves=6,
    )


@st.composite
def query_trees(draw) -> QueryTree:
    tree = QueryTree()
    tree.add_binding("Client", "Client")
    two_bindings = draw(st.booleans())
    if two_bindings:
        tree.add_binding("Account", "Account")
        # The equi-join lives in WHERE so push-join-conditions has work.
        join = SqlBinary("=", SqlColumn("A", "ClientID"), SqlColumn("B", "ClientID"))
        predicate = draw(_predicate_strategy(["A", "B"]))
        tree.where = SqlBinary("AND", join, predicate)
        output_pool = [
            EntityOutput("A", "Client"),
            EntityOutput("B", "Account"),
            ColumnOutput(SqlColumn("B", "Balance")),
            ColumnOutput(SqlColumn("A", "Name")),
        ]
    else:
        tree.where = draw(_predicate_strategy(["A"]))
        output_pool = [
            EntityOutput("A", "Client"),
            ColumnOutput(SqlColumn("A", "Name")),
            ColumnOutput(SqlColumn("A", "ClientID")),
        ]
    first = draw(st.sampled_from(output_pool))
    shape = draw(st.sampled_from(["single", "pair", "tuple"]))
    if shape == "single":
        tree.output = first
    elif shape == "pair":
        tree.output = PairOutput(first=first, second=draw(st.sampled_from(output_pool)))
    else:
        tree.output = TupleOutput(
            items=(first, draw(st.sampled_from(output_pool)))
        )
    return tree


def _normalise(value: object) -> object:
    """Entities compare by (class, pk); Pairs/tuples recurse."""
    if isinstance(value, Entity):
        return (type(value).__name__, value.primary_key_value)
    if isinstance(value, Pair):
        return ("pair", _normalise(value.getFirst()), _normalise(value.getSecond()))
    if isinstance(value, tuple):
        return tuple(_normalise(item) for item in value)
    return value


def _run(tree: QueryTree) -> list[object]:
    database = make_bank_db()
    generated = SqlGenerator(make_bank_mapping()).generate(tree)
    result = execute_generated_query(
        database.begin_transaction(), generated, {}, None
    )
    return sorted((repr(_normalise(item)) for item in result.to_list()))


@settings(max_examples=60, deadline=None)
@given(tree=query_trees())
def test_optimized_tree_returns_identical_rows(tree: QueryTree) -> None:
    optimized = Optimizer(make_bank_mapping(), OptimizerOptions()).optimize(tree).tree
    assert _run(optimized) == _run(tree)


@settings(max_examples=20, deadline=None)
@given(tree=query_trees())
def test_each_rule_alone_preserves_rows(tree: QueryTree) -> None:
    """Every individual rule is row-preserving, not just the composition."""
    mapping = make_bank_mapping()
    baseline = _run(tree)
    for rule in Optimizer(mapping).rules:
        alone = Optimizer(mapping, OptimizerOptions(rules=(rule.name,)))
        assert _run(alone.optimize(tree).tree) == baseline, rule.name
