"""Select-item deduplication must keep ``?`` placeholders and the bound
parameter list in lockstep (regression: dedup used to key on rendered text,
where every parameter renders as ``?``)."""

from __future__ import annotations

from repro.core.querytree.nodes import (
    ColumnOutput,
    EntityOutput,
    PairOutput,
    QueryTree,
    SqlBinary,
    SqlColumn,
    SqlLiteral,
    SqlParam,
    TupleOutput,
)
from repro.core.sqlgen.generator import SqlGenerator
from repro.testing import make_bank_db, make_bank_mapping


def _tree(output, where=None) -> QueryTree:
    tree = QueryTree()
    tree.add_binding("Client", "Client")
    tree.output = output
    tree.where = where
    return tree


class TestSelectItemDedup:
    def test_distinct_parameters_are_not_collapsed(self) -> None:
        generated = SqlGenerator(make_bank_mapping()).generate(
            _tree(
                TupleOutput(
                    items=(
                        ColumnOutput(SqlParam(0, "x")),
                        ColumnOutput(SqlParam(1, "y")),
                    )
                ),
                where=SqlBinary(
                    "=", SqlColumn("A", "ClientID"), SqlParam(2, "cid")
                ),
            )
        )
        assert len(generated.select_items) == 2
        # One bound value per placeholder, in textual order.
        assert generated.sql.count("?") == len(generated.parameter_sources) == 3
        assert generated.parameter_sources == ["x", "y", "cid"]

    def test_identical_expressions_share_one_select_item(self) -> None:
        column = ColumnOutput(SqlColumn("A", "Name"))
        generated = SqlGenerator(make_bank_mapping()).generate(
            _tree(TupleOutput(items=(column, column)))
        )
        assert len(generated.select_items) == 1
        plan = generated.output_plan
        assert plan.items[0] == plan.items[1]

    def test_repeated_identical_parameter_binds_once(self) -> None:
        parameter = ColumnOutput(SqlParam(0, "x"))
        generated = SqlGenerator(make_bank_mapping()).generate(
            _tree(TupleOutput(items=(parameter, parameter)))
        )
        assert len(generated.select_items) == 1
        assert generated.sql.count("?") == len(generated.parameter_sources) == 1

    def test_repeated_entity_output_is_emitted_once_and_executes(self) -> None:
        entity = EntityOutput("A", "Client")
        generated = SqlGenerator(make_bank_mapping()).generate(
            _tree(
                PairOutput(first=entity, second=entity),
                where=SqlBinary("=", SqlColumn("A", "ClientID"), SqlLiteral(1000)),
            )
        )
        aliases = [item.split(" AS ")[1] for item in generated.select_items]
        assert len(aliases) == len(set(aliases))

        from repro.core.runtime import execute_generated_query

        em = make_bank_db().begin_transaction()
        pair = execute_generated_query(em, generated, {}, None).to_list()[0]
        assert pair.getFirst() is pair.getSecond()
        assert pair.getFirst().clientId == 1000
