"""Unit tests for the logical optimizer: one class per rule, plus the
fixed-point driver (termination, pass cap, fire counters, trace mode)."""

from __future__ import annotations

import pytest

from repro.core.optimizer import (
    Optimizer,
    OptimizerOptions,
    Rule,
    RuleContext,
    classify_conjuncts,
)
from repro.core.optimizer import bridge
from repro.core.optimizer.rules import (
    decompose_selection,
    eliminate_duplicates,
    merge_ranges,
    prune_projection,
    push_join_conditions,
    simplify_predicate,
    split_conjuncts,
)
from repro.core.querytree.nodes import (
    ColumnOutput,
    EntityOutput,
    PairOutput,
    QueryTree,
    SqlBinary,
    SqlColumn,
    SqlLiteral,
    SqlNot,
    SqlParam,
    clone_tree,
)
from repro.testing import make_bank_mapping


def col(binding: str, column: str) -> SqlColumn:
    return SqlColumn(binding, column)


def eq(left, right) -> SqlBinary:
    return SqlBinary("=", left, right)


def conj(*conjuncts) -> SqlBinary:
    result = conjuncts[0]
    for item in conjuncts[1:]:
        result = SqlBinary("AND", result, item)
    return result


@pytest.fixture()
def context() -> RuleContext:
    return RuleContext(mapping=make_bank_mapping(), options=OptimizerOptions())


@pytest.fixture()
def account_client_tree() -> QueryTree:
    """``FROM Account A, Client B`` with an entity output on both."""
    tree = QueryTree()
    tree.add_binding("Account", "Account")
    tree.add_binding("Client", "Client")
    tree.output = PairOutput(
        EntityOutput("B", "Client"), ColumnOutput(col("A", "Balance"))
    )
    return tree


class TestDecomposeSelection:
    def test_flattens_and_orders_selections_before_residual(
        self, account_client_tree, context
    ) -> None:
        tree = account_client_tree
        residual = SqlBinary(">", col("A", "Balance"), col("B", "ClientID"))
        tree.where = conj(
            residual,
            eq(col("B", "Country"), SqlLiteral("Canada")),
            eq(col("A", "Balance"), SqlLiteral(7)),
        )
        result = decompose_selection(tree, context)
        assert result is not None
        conjuncts = split_conjuncts(result.where)
        assert conjuncts == [
            eq(col("A", "Balance"), SqlLiteral(7)),
            eq(col("B", "Country"), SqlLiteral("Canada")),
            residual,
        ]

    def test_is_idempotent(self, account_client_tree, context) -> None:
        tree = account_client_tree
        tree.where = conj(
            eq(col("B", "Country"), SqlLiteral("Canada")),
            eq(col("A", "Balance"), SqlLiteral(7)),
        )
        once = decompose_selection(tree, context)
        assert once is not None
        assert decompose_selection(once, context) is None

    def test_does_not_reorder_inside_or(self, account_client_tree, context) -> None:
        tree = account_client_tree
        tree.where = SqlBinary(
            "OR",
            eq(col("B", "Country"), SqlLiteral("Canada")),
            eq(col("A", "Balance"), SqlLiteral(7)),
        )
        assert decompose_selection(tree, context) is None


class TestClassifyConjuncts:
    def test_three_classes(self) -> None:
        where = conj(
            eq(col("A", "ClientID"), col("B", "ClientID")),
            eq(col("B", "Country"), SqlLiteral("Canada")),
            SqlBinary(">", col("A", "Balance"), col("B", "ClientID")),
        )
        classes = classify_conjuncts(where)
        assert classes.join_conditions == [eq(col("A", "ClientID"), col("B", "ClientID"))]
        assert classes.selections == {
            "B": [eq(col("B", "Country"), SqlLiteral("Canada"))]
        }
        assert classes.residual == [SqlBinary(">", col("A", "Balance"), col("B", "ClientID"))]


class TestPushJoinConditions:
    def test_moves_equi_join_out_of_where(self, account_client_tree, context) -> None:
        tree = account_client_tree
        tree.where = conj(
            eq(col("A", "ClientID"), col("B", "ClientID")),
            eq(col("B", "Country"), SqlLiteral("Canada")),
        )
        result = push_join_conditions(tree, context)
        assert result is not None
        assert result.join_conditions == [eq(col("A", "ClientID"), col("B", "ClientID"))]
        assert result.where == eq(col("B", "Country"), SqlLiteral("Canada"))

    def test_mirrored_duplicate_not_added_twice(self, account_client_tree, context) -> None:
        tree = account_client_tree
        tree.join_conditions = [eq(col("B", "ClientID"), col("A", "ClientID"))]
        tree.where = eq(col("A", "ClientID"), col("B", "ClientID"))
        result = push_join_conditions(tree, context)
        assert result is not None
        assert result.join_conditions == [eq(col("B", "ClientID"), col("A", "ClientID"))]
        assert result.where is None

    def test_same_binding_equality_stays(self, account_client_tree, context) -> None:
        tree = account_client_tree
        tree.where = eq(col("A", "Balance"), col("A", "MinBalance"))
        assert push_join_conditions(tree, context) is None


class TestSimplifyPredicate:
    def test_folds_constants_and_boolean_identities(
        self, account_client_tree, context
    ) -> None:
        tree = account_client_tree
        # (Balance > (2 + 3)) AND TRUE
        tree.where = SqlBinary(
            "AND",
            SqlBinary(
                ">", col("A", "Balance"), SqlBinary("+", SqlLiteral(2), SqlLiteral(3))
            ),
            SqlLiteral(True),
        )
        result = simplify_predicate(tree, context)
        assert result is not None
        assert result.where == SqlBinary(">", col("A", "Balance"), SqlLiteral(5))

    def test_pushes_negation_through_comparison(
        self, account_client_tree, context
    ) -> None:
        tree = account_client_tree
        tree.where = SqlNot(eq(col("B", "Country"), SqlLiteral("Canada")))
        result = simplify_predicate(tree, context)
        assert result is not None
        assert result.where == SqlBinary(
            "!=", col("B", "Country"), SqlLiteral("Canada")
        )

    def test_true_predicate_becomes_no_where(self, account_client_tree, context) -> None:
        tree = account_client_tree
        tree.where = SqlBinary("OR", SqlLiteral(True), eq(col("A", "Balance"), SqlLiteral(1)))
        result = simplify_predicate(tree, context)
        assert result is not None
        assert result.where is None

    def test_round_trip_preserves_parameters(self) -> None:
        expression = eq(col("A", "Balance"), SqlParam(0, "threshold"))
        assert bridge.to_sql(bridge.to_symbolic(expression)) == expression


class TestMergeRanges:
    def test_tightens_redundant_lower_bounds(self, account_client_tree, context) -> None:
        tree = account_client_tree
        tree.where = conj(
            SqlBinary(">", col("A", "Balance"), SqlLiteral(3)),
            SqlBinary(">", col("A", "Balance"), SqlLiteral(5)),
        )
        result = merge_ranges(tree, context)
        assert result is not None
        assert result.where == SqlBinary(">", col("A", "Balance"), SqlLiteral(5))

    def test_equality_subsumes_compatible_bounds(self, account_client_tree, context) -> None:
        tree = account_client_tree
        tree.where = conj(
            SqlBinary(">=", col("A", "Balance"), SqlLiteral(0)),
            eq(col("A", "Balance"), SqlLiteral(10)),
        )
        result = merge_ranges(tree, context)
        assert result is not None
        assert result.where == eq(col("A", "Balance"), SqlLiteral(10))

    def test_contradictory_equalities_collapse_to_false(
        self, account_client_tree, context
    ) -> None:
        tree = account_client_tree
        tree.where = conj(
            eq(col("B", "Country"), SqlLiteral("Canada")),
            eq(col("B", "Country"), SqlLiteral("Peru")),
        )
        result = merge_ranges(tree, context)
        assert result is not None
        assert result.where == SqlLiteral(False)

    def test_empty_numeric_range_collapses_to_false(
        self, account_client_tree, context
    ) -> None:
        tree = account_client_tree
        tree.where = conj(
            SqlBinary(">", col("A", "Balance"), SqlLiteral(10)),
            SqlBinary("<", col("A", "Balance"), SqlLiteral(5)),
        )
        result = merge_ranges(tree, context)
        assert result is not None
        assert result.where == SqlLiteral(False)

    def test_parameters_are_left_alone(self, account_client_tree, context) -> None:
        tree = account_client_tree
        tree.where = conj(
            SqlBinary(">", col("A", "Balance"), SqlParam(0, "low")),
            SqlBinary(">", col("A", "Balance"), SqlParam(1, "high")),
        )
        assert merge_ranges(tree, context) is None


class TestEliminateDuplicates:
    def test_drops_duplicate_conjuncts(self, account_client_tree, context) -> None:
        tree = account_client_tree
        predicate = eq(col("B", "Country"), SqlLiteral("Canada"))
        tree.where = conj(predicate, predicate)
        result = eliminate_duplicates(tree, context)
        assert result is not None
        assert result.where == predicate

    def test_false_conjunct_absorbs_predicate(self, account_client_tree, context) -> None:
        tree = account_client_tree
        tree.where = conj(
            eq(col("B", "Country"), SqlLiteral("Canada")), SqlLiteral(False)
        )
        result = eliminate_duplicates(tree, context)
        assert result is not None
        assert result.where == SqlLiteral(False)

    def test_deduplicates_mirrored_join_conditions(
        self, account_client_tree, context
    ) -> None:
        tree = account_client_tree
        tree.join_conditions = [
            eq(col("A", "ClientID"), col("B", "ClientID")),
            eq(col("B", "ClientID"), col("A", "ClientID")),
        ]
        result = eliminate_duplicates(tree, context)
        assert result is not None
        assert result.join_conditions == [eq(col("A", "ClientID"), col("B", "ClientID"))]


class TestPruneProjection:
    def test_collects_output_predicate_and_ordering_columns(
        self, account_client_tree, context
    ) -> None:
        tree = account_client_tree
        tree.where = eq(col("B", "Country"), SqlLiteral("Canada"))
        tree.join_conditions = [eq(col("A", "ClientID"), col("B", "ClientID"))]
        tree.order_by = [(col("B", "PostalCode"), False)]
        result = prune_projection(tree, context)
        assert result is not None
        # Client (entity output): pk + predicate/join/order columns.
        assert result.required_columns["B"] == frozenset(
            {"clientid", "country", "postalcode"}
        )
        # Account (column output only): the consumed columns.
        assert result.required_columns["A"] == frozenset({"balance", "clientid"})

    def test_entity_output_keeps_to_one_foreign_keys(self, context) -> None:
        tree = QueryTree()
        tree.add_binding("Account", "Account")
        tree.output = EntityOutput("A", "Account")
        result = prune_projection(tree, context)
        assert result is not None
        # AccountID is the pk, ClientID the holder FK; Balance/MinBalance
        # are not consumed by anything and get pruned.
        assert result.required_columns["A"] == frozenset({"accountid", "clientid"})

    def test_disabled_by_option(self, account_client_tree) -> None:
        context = RuleContext(
            mapping=make_bank_mapping(),
            options=OptimizerOptions(prune_projections=False),
        )
        assert prune_projection(account_client_tree, context) is None

    def test_idempotent_once_computed(self, account_client_tree, context) -> None:
        first = prune_projection(account_client_tree, context)
        assert first is not None
        assert prune_projection(first, context) is None


class TestFixedPointDriver:
    def make_tree(self) -> QueryTree:
        tree = QueryTree()
        tree.add_binding("Account", "Account")
        tree.add_binding("Client", "Client")
        tree.output = EntityOutput("B", "Client")
        tree.where = conj(
            eq(col("A", "ClientID"), col("B", "ClientID")),
            SqlBinary(">", col("A", "Balance"), SqlLiteral(3)),
            SqlBinary(">", col("A", "Balance"), SqlLiteral(5)),
            SqlBinary("AND", SqlLiteral(True), eq(col("B", "Country"), SqlLiteral("Canada"))),
        )
        return tree

    def test_reaches_fixed_point_and_counts_fires(self) -> None:
        optimizer = Optimizer(make_bank_mapping(), OptimizerOptions())
        result = optimizer.optimize(self.make_tree())
        assert result.fired
        assert result.passes <= OptimizerOptions().max_passes
        assert result.fire_counts["push-join-conditions"] >= 1
        assert result.fire_counts["merge-ranges"] >= 1
        assert result.fire_counts["prune-projection"] >= 1
        # Fixed point: a second run over the result changes nothing.
        again = optimizer.optimize(result.tree)
        assert not again.fired
        assert again.tree == result.tree

    def test_input_tree_is_not_mutated(self) -> None:
        tree = self.make_tree()
        snapshot = clone_tree(tree)
        Optimizer(make_bank_mapping()).optimize(tree)
        assert tree == snapshot

    def test_optimize_false_is_identity(self) -> None:
        tree = self.make_tree()
        result = Optimizer(
            make_bank_mapping(), OptimizerOptions(optimize=False)
        ).optimize(tree)
        assert result.tree is tree
        assert not result.fired
        assert result.passes == 0

    def test_trace_records_every_firing(self) -> None:
        optimizer = Optimizer(make_bank_mapping(), OptimizerOptions(trace=True))
        result = optimizer.optimize(self.make_tree())
        assert len(result.trace) == sum(result.fire_counts.values())
        assert any(app.rule == "push-join-conditions" for app in result.trace)
        for application in result.trace:
            assert application.before != application.after
        assert "push-join-conditions" in result.describe_trace()

    def test_pass_cap_stops_a_non_converging_rule(self) -> None:
        """A (buggy) rule that always fires must be stopped by the cap."""
        flips = []

        def flip_limit(tree, context):
            flipped = clone_tree(tree)
            flipped.limit = (tree.limit or 0) + 1
            flips.append(1)
            return flipped

        rule = Rule("flip-limit", "never converges", flip_limit)
        optimizer = Optimizer(
            make_bank_mapping(), OptimizerOptions(max_passes=7), rules=[rule]
        )
        result = optimizer.optimize(self.make_tree())
        assert result.passes == 7
        assert result.fire_counts["flip-limit"] == 7

    def test_rule_subset_selection(self) -> None:
        optimizer = Optimizer(
            make_bank_mapping(),
            OptimizerOptions(rules=("push-join-conditions",)),
        )
        assert [rule.name for rule in optimizer.rules] == ["push-join-conditions"]
        result = optimizer.optimize(self.make_tree())
        assert result.fire_counts == {"push-join-conditions": 1}
        # Only the join moved; the redundant bound survived.
        assert SqlBinary(">", col("A", "Balance"), SqlLiteral(3)) in split_conjuncts(
            result.tree.where
        )
