"""Tests of the whole analysis pipeline on the paper's running example
(Fig. 10/11, Table 1, Table 2, Fig. 12) built directly in TAC."""

from __future__ import annotations

import pytest

from repro.core.analysis.foreach import find_foreach_queries
from repro.core.analysis.paths import enumerate_paths
from repro.core.cfg import build_cfg
from repro.core.expr import nodes as E
from repro.core.expr.printer import to_text
from repro.core.pipeline import QueryllPipeline, analyze_method
from repro.core.querytree.nodes import EntityOutput, SqlBinary
from repro.core.rewriter import QueryRegistry, splice_rewritten_queries
from repro.core.tac.builder import TacBuilder
from repro.core.tac.printer import format_method
from repro.errors import UnsupportedQueryError
from tests.conftest import make_bank_mapping


def office_query_method() -> object:
    """TAC for the paper's Fig. 10 query (Seattle/LA offices)."""
    builder = TacBuilder("findWestCoast", parameters=["em", "westcoast"])
    builder.assign("r12", E.Call(E.Var("em"), "allOffice"))
    builder.assign("it", E.Call(E.Var("r12"), "iterator"))
    builder.goto("cond")
    builder.label("body")
    builder.assign("r13", E.Call(E.Var("it"), "next"))
    builder.assign("r14", E.Cast("Office", E.Var("r13")))
    builder.assign("r15", E.Call(E.Var("r14"), "getName"))
    builder.assign("z3", E.Call(E.Var("r15"), "equals", (E.Constant("Seattle"),)))
    builder.if_goto(E.BinOp("==", E.Var("z3"), E.Constant(0)), "else1")
    builder.statement(E.Call(E.Var("westcoast"), "add", (E.Var("r14"),)))
    builder.goto("cond")
    builder.label("else1")
    builder.assign("r16", E.Call(E.Var("r14"), "getName"))
    builder.assign("z5", E.Call(E.Var("r16"), "equals", (E.Constant("LA"),)))
    builder.if_goto(E.BinOp("==", E.Var("z5"), E.Constant(0)), "cond")
    builder.statement(E.Call(E.Var("westcoast"), "add", (E.Var("r14"),)))
    builder.label("cond")
    builder.assign("z7", E.Call(E.Var("it"), "hasNext"))
    builder.if_goto(E.BinOp("!=", E.Var("z7"), E.Constant(0)), "body")
    builder.return_(E.Var("westcoast"))
    return builder.build()


@pytest.fixture()
def mapping():
    return make_bank_mapping()


class TestForEachRecognition:
    def test_query_loop_is_identified(self) -> None:
        method = office_query_method()
        queries = find_foreach_queries(method)
        assert len(queries) == 1
        query = queries[0]
        assert query.iterator_var == "it"
        assert query.dest_var == "westcoast"
        assert to_text(query.source_expression) == "em.allOffice()"
        assert len(query.add_instruction_indexes) == 2

    def test_format_method_lists_labels(self) -> None:
        listing = format_method(office_query_method())
        assert "hasNext" in listing and "goto" in listing


class TestPathEnumeration:
    def test_two_paths_as_in_table1(self) -> None:
        """Table 1: the loop has exactly two paths adding to the destination."""
        method = office_query_method()
        query = find_foreach_queries(method)[0]
        paths = enumerate_paths(method, build_cfg(method), query)
        assert len(paths) == 2
        # Path 1 takes the first branch (Seattle); path 2 falls through it.
        lengths = sorted(len(path) for path in paths)
        assert lengths[0] < lengths[1]


class TestAnalysis:
    def test_path_conditions_match_paper(self, mapping) -> None:
        queries = analyze_method(office_query_method(), mapping, record_trace=True)
        assert len(queries) == 1
        rewritten = queries[0]
        conditions = [to_text(analysis.condition) for analysis in rewritten.path_analyses]
        assert '(((Office)entry).Name = "Seattle")' in conditions
        assert (
            '(((Office)entry).Name != "Seattle") AND (((Office)entry).Name = "LA")'
            in conditions
        )

    def test_substitution_trace_reports_steps(self, mapping) -> None:
        """Table 2: the backward walk is traceable step by step."""
        pipeline = QueryllPipeline(mapping, record_trace=True)
        report = pipeline.analyze_method(office_query_method())
        trace = report.queries[0].path_analyses[1].trace
        assert any("Initial" in line for line in trace)
        assert any("Simplification" in line for line in trace)
        assert len(trace) >= 5

    def test_generated_sql_matches_fig12_shape(self, mapping) -> None:
        """Fig. 12: WHERE is the OR of the two path conditions."""
        rewritten = analyze_method(office_query_method(), mapping)[0]
        sql = rewritten.sql
        assert sql.startswith("SELECT")
        assert "FROM Office AS A" in sql
        assert "(A.NAME) = 'Seattle'" in sql
        assert "(A.NAME) != 'Seattle'" in sql
        assert "(A.NAME) = 'LA'" in sql
        assert " OR " in sql
        assert rewritten.parameter_sources == []
        assert isinstance(rewritten.tree.output, EntityOutput)

    def test_outer_variable_becomes_parameter(self, mapping) -> None:
        builder = TacBuilder("byCountry", parameters=["em", "dest", "country"])
        builder.assign("it", E.Call(E.Call(E.Var("em"), "allClient"), "iterator"))
        builder.goto("cond")
        builder.label("body")
        builder.assign("c", E.Cast("Client", E.Call(E.Var("it"), "next")))
        builder.assign("z", E.Call(E.Call(E.Var("c"), "getCountry"), "equals", (E.Var("country"),)))
        builder.if_goto(E.BinOp("==", E.Var("z"), E.Constant(0)), "cond")
        builder.statement(E.Call(E.Var("dest"), "add", (E.Var("c"),)))
        builder.label("cond")
        builder.assign("h", E.Call(E.Var("it"), "hasNext"))
        builder.if_goto(E.BinOp("!=", E.Var("h"), E.Constant(0)), "body")
        builder.return_(E.Var("dest"))
        rewritten = analyze_method(builder.build(), mapping)[0]
        assert rewritten.parameter_sources == ["country"]
        assert "?" in rewritten.sql

    def test_constant_local_is_inlined(self, mapping) -> None:
        """Fig. 5 assigns ``country = "Canada"`` before the loop; the constant
        is folded into the generated SQL instead of becoming a parameter."""
        builder = TacBuilder("canadians", parameters=["em", "dest"])
        builder.assign("country", E.Constant("Canada"))
        builder.assign("it", E.Call(E.Call(E.Var("em"), "allClient"), "iterator"))
        builder.goto("cond")
        builder.label("body")
        builder.assign("c", E.Cast("Client", E.Call(E.Var("it"), "next")))
        builder.assign("z", E.Call(E.Call(E.Var("c"), "getCountry"), "equals", (E.Var("country"),)))
        builder.if_goto(E.BinOp("==", E.Var("z"), E.Constant(0)), "cond")
        builder.statement(E.Call(E.Var("dest"), "add", (E.Call(E.Var("c"), "getName"),)))
        builder.label("cond")
        builder.assign("h", E.Call(E.Var("it"), "hasNext"))
        builder.if_goto(E.BinOp("!=", E.Var("h"), E.Constant(0)), "body")
        builder.return_(E.Var("dest"))
        rewritten = analyze_method(builder.build(), mapping)[0]
        assert rewritten.parameter_sources == []
        assert "'Canada'" in rewritten.sql

    def test_side_effecting_loop_is_skipped_not_fatal(self, mapping) -> None:
        builder = TacBuilder("sideEffect", parameters=["em", "dest", "log"])
        builder.assign("it", E.Call(E.Call(E.Var("em"), "allClient"), "iterator"))
        builder.goto("cond")
        builder.label("body")
        builder.assign("c", E.Cast("Client", E.Call(E.Var("it"), "next")))
        builder.statement(E.Call(E.Var("log"), "println", (E.Var("c"),)))
        builder.statement(E.Call(E.Var("dest"), "add", (E.Var("c"),)))
        builder.label("cond")
        builder.assign("h", E.Call(E.Var("it"), "hasNext"))
        builder.if_goto(E.BinOp("!=", E.Var("h"), E.Constant(0)), "body")
        builder.return_(E.Var("dest"))
        pipeline = QueryllPipeline(mapping)
        report = pipeline.analyze_method(builder.build())
        assert report.queries == []
        assert len(report.skipped) == 1
        assert "side effects" in report.skipped[0][1]

    def test_unknown_entity_method_is_unsupported(self, mapping) -> None:
        builder = TacBuilder("badAccessor", parameters=["em", "dest"])
        builder.assign("it", E.Call(E.Call(E.Var("em"), "allClient"), "iterator"))
        builder.goto("cond")
        builder.label("body")
        builder.assign("c", E.Cast("Client", E.Call(E.Var("it"), "next")))
        builder.assign("z", E.Call(E.Call(E.Var("c"), "getShoeSize"), "equals", (E.Constant(9),)))
        builder.if_goto(E.BinOp("==", E.Var("z"), E.Constant(0)), "cond")
        builder.statement(E.Call(E.Var("dest"), "add", (E.Var("c"),)))
        builder.label("cond")
        builder.assign("h", E.Call(E.Var("it"), "hasNext"))
        builder.if_goto(E.BinOp("!=", E.Var("h"), E.Constant(0)), "body")
        builder.return_(E.Var("dest"))
        report = QueryllPipeline(mapping).analyze_method(builder.build())
        assert report.queries == []
        assert "getShoeSize" in report.skipped[0][1]


class TestJoinsInTree:
    def test_relationship_navigation_creates_join(self, mapping) -> None:
        builder = TacBuilder("swiss", parameters=["em", "dest"])
        builder.assign("it", E.Call(E.Call(E.Var("em"), "allAccount"), "iterator"))
        builder.goto("cond")
        builder.label("body")
        builder.assign("a", E.Cast("Account", E.Call(E.Var("it"), "next")))
        builder.assign("h", E.Call(E.Var("a"), "getHolder"))
        builder.assign("z", E.Call(E.Call(E.Var("h"), "getCountry"), "equals", (E.Constant("Switzerland"),)))
        builder.if_goto(E.BinOp("==", E.Var("z"), E.Constant(0)), "cond")
        builder.statement(
            E.Call(E.Var("dest"), "add", (E.New("Pair", (E.Var("h"), E.Var("a"))),))
        )
        builder.label("cond")
        builder.assign("hn", E.Call(E.Var("it"), "hasNext"))
        builder.if_goto(E.BinOp("!=", E.Var("hn"), E.Constant(0)), "body")
        builder.return_(E.Var("dest"))
        rewritten = analyze_method(builder.build(), mapping)[0]
        assert len(rewritten.tree.bindings) == 2
        assert len(rewritten.tree.join_conditions) == 1
        join = rewritten.tree.join_conditions[0]
        assert isinstance(join, SqlBinary) and join.op == "="
        assert "A.CLIENTID = B.CLIENTID" in rewritten.sql


class TestSplice:
    def test_loop_is_replaced_by_runtime_call(self, mapping) -> None:
        method = office_query_method()
        registry = QueryRegistry()
        queries = analyze_method(method, mapping)
        result = splice_rewritten_queries(method, queries, registry)
        assert len(result.replaced) == 1
        assert len(registry) == 1
        text = format_method(result.method)
        assert "queryllExecuteQuery" in text
        assert "hasNext" not in text  # the loop is gone
        assert "iterator" not in text  # dead iterator setup removed

    def test_splice_preserves_instruction_count_sanity(self, mapping) -> None:
        method = office_query_method()
        queries = analyze_method(method, mapping)
        result = splice_rewritten_queries(method, queries)
        assert len(result.method.instructions) < len(method.instructions)
        result.method.validate()
