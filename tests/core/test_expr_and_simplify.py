"""Tests for symbolic expressions, substitution and the simplifier."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analysis.simplify import is_boolean_expression, negate, simplify
from repro.core.expr import nodes
from repro.core.expr.evaluator import EvaluationError, evaluate
from repro.core.expr.printer import to_text


class TestSubstitution:
    def test_substitute_replaces_variables(self) -> None:
        expression = nodes.BinOp("+", nodes.Var("x"), nodes.Var("y"))
        result = nodes.substitute(expression, {"x": nodes.Constant(1)})
        assert result == nodes.BinOp("+", nodes.Constant(1), nodes.Var("y"))

    def test_substitute_is_recursive(self) -> None:
        expression = nodes.Call(nodes.Var("a"), "getName", (nodes.Var("b"),))
        result = nodes.substitute(
            expression, {"a": nodes.Var("c"), "b": nodes.Constant(2)}
        )
        assert result == nodes.Call(nodes.Var("c"), "getName", (nodes.Constant(2),))

    def test_substitute_returns_same_object_when_unchanged(self) -> None:
        expression = nodes.BinOp("+", nodes.Constant(1), nodes.Constant(2))
        assert nodes.substitute(expression, {"zzz": nodes.Constant(0)}) is expression

    def test_expression_variables(self) -> None:
        expression = nodes.BinOp(
            "&&",
            nodes.Call(nodes.Var("c"), "getName"),
            nodes.UnaryOp("!", nodes.Var("flag")),
        )
        assert nodes.expression_variables(expression) == {"c", "flag"}

    def test_children_covers_every_node_kind(self) -> None:
        samples: list[nodes.Expression] = [
            nodes.Constant(1),
            nodes.Var("x"),
            nodes.BinOp("+", nodes.Constant(1), nodes.Var("x")),
            nodes.UnaryOp("!", nodes.Var("x")),
            nodes.Cast("Client", nodes.Var("x")),
            nodes.Call(nodes.Var("x"), "getName", (nodes.Constant(1),)),
            nodes.GetField(nodes.Var("x"), "name"),
            nodes.New("Pair", (nodes.Constant(1), nodes.Constant(2))),
            nodes.SourceEntity(nodes.Var("coll")),
        ]
        for sample in samples:
            children = nodes.children(sample)
            assert isinstance(children, tuple)


class TestEvaluator:
    def test_arithmetic_and_comparison(self) -> None:
        expression = nodes.BinOp(
            "<",
            nodes.BinOp("*", nodes.Var("a"), nodes.Constant(2)),
            nodes.Constant(10),
        )
        assert evaluate(expression, {"a": 3}) is True
        assert evaluate(expression, {"a": 7}) is False

    def test_java_integer_division_truncates_toward_zero(self) -> None:
        expression = nodes.BinOp("/", nodes.Var("a"), nodes.Constant(2))
        assert evaluate(expression, {"a": -3}) == -1
        assert evaluate(expression, {"a": 3}) == 1

    def test_unbound_variable_raises(self) -> None:
        with pytest.raises(EvaluationError):
            evaluate(nodes.Var("missing"), {})

    def test_logical_operators_are_java_truthy(self) -> None:
        expression = nodes.BinOp("&&", nodes.Var("a"), nodes.Var("b"))
        assert evaluate(expression, {"a": 1, "b": 0}) is False
        assert evaluate(expression, {"a": 2, "b": 3}) is True

    def test_call_requires_handler(self) -> None:
        with pytest.raises(EvaluationError):
            evaluate(nodes.Call(nodes.Var("x"), "getName"), {"x": object()})
        handled = evaluate(
            nodes.Call(nodes.Var("x"), "getName"),
            {"x": "ignored"},
            call_handler=lambda node, env: "handled",
        )
        assert handled == "handled"


class TestPrinter:
    def test_getter_rendered_as_field(self) -> None:
        expression = nodes.Call(
            nodes.Cast("Office", nodes.SourceEntity(nodes.Var("c"))), "getName"
        )
        assert to_text(expression) == "((Office)entry).Name"

    def test_equals_rendered_as_comparison(self) -> None:
        expression = nodes.Call(nodes.Var("name"), "equals", (nodes.Constant("LA"),))
        assert to_text(expression) == '(name = "LA")'

    def test_logical_and_constants(self) -> None:
        expression = nodes.BinOp("&&", nodes.Constant(True), nodes.Constant(None))
        assert to_text(expression) == "true AND null"


class TestSimplify:
    def test_equals_call_becomes_comparison(self) -> None:
        expression = nodes.Call(nodes.Var("name"), "equals", (nodes.Constant("LA"),))
        assert simplify(expression) == nodes.BinOp(
            "==", nodes.Var("name"), nodes.Constant("LA")
        )

    def test_redundant_comparison_with_zero_removed(self) -> None:
        comparison = nodes.BinOp("==", nodes.Var("x"), nodes.Constant("LA"))
        assert simplify(nodes.BinOp("!=", comparison, nodes.Constant(0))) == comparison
        assert simplify(nodes.BinOp("==", comparison, nodes.Constant(0))) == nodes.BinOp(
            "!=", nodes.Var("x"), nodes.Constant("LA")
        )

    def test_paper_table2_simplification(self) -> None:
        """((entry.Name = "Seattle") = 0) AND ((entry.Name = "LA") != 0)
        simplifies to (entry.Name != "Seattle") AND (entry.Name = "LA")."""
        entry_name = nodes.GetField(nodes.Var("entry"), "Name")
        seattle = nodes.BinOp("==", entry_name, nodes.Constant("Seattle"))
        la = nodes.BinOp("==", entry_name, nodes.Constant("LA"))
        expression = nodes.BinOp(
            "&&",
            nodes.BinOp("==", seattle, nodes.Constant(0)),
            nodes.BinOp("!=", la, nodes.Constant(0)),
        )
        simplified = simplify(expression)
        assert simplified == nodes.BinOp(
            "&&",
            nodes.BinOp("!=", entry_name, nodes.Constant("Seattle")),
            la,
        )

    def test_not_pushed_through_comparisons(self) -> None:
        expression = nodes.UnaryOp(
            "!", nodes.BinOp("<", nodes.Var("a"), nodes.Var("b"))
        )
        assert simplify(expression) == nodes.BinOp(">=", nodes.Var("a"), nodes.Var("b"))

    def test_double_negation_removed_for_boolean_operands(self) -> None:
        comparison = nodes.BinOp("<", nodes.Var("a"), nodes.Var("b"))
        expression = nodes.UnaryOp("!", nodes.UnaryOp("!", comparison))
        assert simplify(expression) == comparison

    def test_double_negation_kept_for_integer_operands(self) -> None:
        # !!x normalises an int to a boolean, so it must not collapse to x.
        expression = nodes.UnaryOp("!", nodes.UnaryOp("!", nodes.Var("a")))
        assert simplify(expression) == expression

    def test_constant_folding(self) -> None:
        expression = nodes.BinOp(
            "*", nodes.Constant(6), nodes.BinOp("+", nodes.Constant(2), nodes.Constant(5))
        )
        assert simplify(expression) == nodes.Constant(42)

    def test_logical_identities(self) -> None:
        x = nodes.BinOp("==", nodes.Var("x"), nodes.Constant(1))
        assert simplify(nodes.BinOp("&&", nodes.Constant(True), x)) == x
        assert simplify(nodes.BinOp("&&", x, nodes.Constant(False))) == nodes.Constant(False)
        assert simplify(nodes.BinOp("||", nodes.Constant(False), x)) == x
        assert simplify(nodes.BinOp("||", x, nodes.Constant(True))) == nodes.Constant(True)

    def test_negate_helper(self) -> None:
        x = nodes.BinOp("==", nodes.Var("x"), nodes.Constant(1))
        assert negate(x) == nodes.BinOp("!=", nodes.Var("x"), nodes.Constant(1))

    def test_is_boolean_expression(self) -> None:
        assert is_boolean_expression(nodes.BinOp("<", nodes.Var("a"), nodes.Var("b")))
        assert is_boolean_expression(nodes.Call(nodes.Var("a"), "equals", (nodes.Var("b"),)))
        assert not is_boolean_expression(nodes.Var("a"))
        assert not is_boolean_expression(nodes.Constant(3))


# -- property-based: simplification preserves meaning ---------------------------------------

_variables = st.sampled_from(["a", "b", "c"])
_leaf = st.one_of(
    st.integers(min_value=-5, max_value=5).map(nodes.Constant),
    st.booleans().map(nodes.Constant),
    _variables.map(nodes.Var),
)
_boolean_expr = st.recursive(
    _leaf,
    lambda children: st.one_of(
        st.builds(
            nodes.BinOp,
            st.sampled_from(["==", "!=", "<", "<=", ">", ">=", "&&", "||", "+", "-", "*"]),
            children,
            children,
        ),
        st.builds(nodes.UnaryOp, st.just("!"), children),
    ),
    max_leaves=10,
)
_env = st.fixed_dictionaries(
    {"a": st.integers(-5, 5), "b": st.integers(-5, 5), "c": st.integers(-5, 5)}
)


class TestSimplifyProperties:
    @given(expression=_boolean_expr, env=_env)
    @settings(max_examples=150, deadline=None)
    def test_simplification_preserves_truth_value(self, expression, env) -> None:
        """simplify() never changes what an expression evaluates to.

        This is the key invariant behind the paper's "simplification step":
        removing the redundant comparisons must not alter which rows the
        WHERE clause selects.
        """
        try:
            original = evaluate(expression, env)
        except EvaluationError:
            return  # e.g. comparing bool to int in unordered ways
        simplified = simplify(expression)
        try:
            after = evaluate(simplified, env)
        except EvaluationError:
            return
        assert _truthy(original) == _truthy(after)


def _truthy(value: object) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    return bool(value)
