"""Tests for CFG construction, dominators, SCCs and loop detection."""

from __future__ import annotations

import networkx
from hypothesis import given, settings, strategies as st

from repro.core.cfg import build_cfg, compute_dominators, find_loops, immediate_dominators
from repro.core.cfg.loops import strongly_connected_components
from repro.core.expr import nodes as E
from repro.core.tac.builder import TacBuilder


def straight_line_method():
    builder = TacBuilder("straight", parameters=["x"])
    builder.assign("a", E.Constant(1))
    builder.assign("b", E.BinOp("+", E.Var("a"), E.Var("x")))
    builder.return_(E.Var("b"))
    return builder.build()


def branching_method():
    builder = TacBuilder("branching", parameters=["x"])
    builder.if_goto(E.BinOp(">", E.Var("x"), E.Constant(0)), "positive")
    builder.assign("r", E.Constant(-1))
    builder.goto("end")
    builder.label("positive")
    builder.assign("r", E.Constant(1))
    builder.label("end")
    builder.return_(E.Var("r"))
    return builder.build()


def looping_method():
    """The Fig. 11 shape: goto cond; body; cond: hasNext; ifne body."""
    builder = TacBuilder("looping", parameters=["em", "dest"])
    builder.assign("it", E.Call(E.Call(E.Var("em"), "allOffice"), "iterator"))
    builder.goto("cond")
    builder.label("body")
    builder.assign("e", E.Call(E.Var("it"), "next"))
    builder.statement(E.Call(E.Var("dest"), "add", (E.Var("e"),)))
    builder.label("cond")
    builder.assign("has", E.Call(E.Var("it"), "hasNext"))
    builder.if_goto(E.BinOp("!=", E.Var("has"), E.Constant(0)), "body")
    builder.return_(E.Var("dest"))
    return builder.build()


class TestCfg:
    def test_straight_line_is_one_block(self) -> None:
        cfg = build_cfg(straight_line_method())
        assert len(cfg.blocks) == 1
        assert cfg.blocks[0].successors == []

    def test_branching_creates_diamond(self) -> None:
        cfg = build_cfg(branching_method())
        entry = cfg.blocks[cfg.entry]
        assert len(entry.successors) == 2
        exit_block = cfg.block_of_instruction(len(branching_method().instructions) - 1)
        assert sorted(exit_block.predecessors) == sorted(
            successor for block in cfg.blocks for successor in block.successors
            if successor == exit_block.block_id
        ) or len(exit_block.predecessors) == 2

    def test_block_of_instruction(self) -> None:
        cfg = build_cfg(looping_method())
        block = cfg.block_of_instruction(0)
        assert 0 in block

    def test_instruction_successors(self) -> None:
        method = branching_method()
        cfg = build_cfg(method)
        assert cfg.instruction_successors(0) == [1, 3]
        assert cfg.instruction_successors(2) == [4]

    def test_to_dot_renders(self) -> None:
        assert "digraph" in build_cfg(looping_method()).to_dot()


class TestDominators:
    def test_entry_dominates_everything(self) -> None:
        cfg = build_cfg(looping_method())
        dominators = compute_dominators(cfg)
        for block in cfg.blocks:
            assert cfg.entry in dominators[block.block_id]

    def test_branch_sides_do_not_dominate_join(self) -> None:
        cfg = build_cfg(branching_method())
        dominators = compute_dominators(cfg)
        join = cfg.block_of_instruction(len(branching_method().instructions) - 1)
        sides = [block.block_id for block in cfg.blocks if block.block_id not in (cfg.entry, join.block_id)]
        for side in sides:
            assert side not in dominators[join.block_id]

    def test_immediate_dominators_form_a_tree(self) -> None:
        cfg = build_cfg(looping_method())
        idom = immediate_dominators(cfg)
        assert idom[cfg.entry] is None
        for block_id, dominator in idom.items():
            if dominator is not None:
                assert dominator != block_id


class TestLoops:
    def test_straight_line_has_no_loops(self) -> None:
        assert find_loops(build_cfg(straight_line_method())) == []

    def test_branching_has_no_loops(self) -> None:
        assert find_loops(build_cfg(branching_method())) == []

    def test_foreach_loop_is_detected(self) -> None:
        method = looping_method()
        loops = find_loops(build_cfg(method))
        assert len(loops) == 1
        loop = loops[0]
        # The loop contains the body and condition but not the setup/return.
        assert 0 not in loop.instructions
        assert len(method.instructions) - 1 not in loop.instructions
        assert loop.exit_instruction == len(method.instructions) - 1

    def test_loop_with_two_exits_is_rejected(self) -> None:
        builder = TacBuilder("two_exits", parameters=["x"])
        builder.label("head")
        builder.if_goto(E.BinOp(">", E.Var("x"), E.Constant(10)), "out1")
        builder.if_goto(E.BinOp("<", E.Var("x"), E.Constant(0)), "out2")
        builder.goto("head")
        builder.label("out1")
        builder.return_(E.Constant(1))
        builder.label("out2")
        builder.return_(E.Constant(2))
        method = builder.build()
        assert find_loops(build_cfg(method)) == []

    def test_self_loop_single_block(self) -> None:
        builder = TacBuilder("self_loop", parameters=["x"])
        builder.label("head")
        builder.if_goto(E.BinOp(">", E.Var("x"), E.Constant(0)), "head")
        builder.return_(E.Var("x"))
        method = builder.build()
        loops = find_loops(build_cfg(method))
        assert len(loops) == 1


class TestStronglyConnectedComponents:
    def test_simple_cycle(self) -> None:
        components = strongly_connected_components(
            [0, 1, 2, 3], {0: [1], 1: [2], 2: [1, 3], 3: []}
        )
        assert {1, 2} in components

    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=40
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_networkx(self, edges: list[tuple[int, int]]) -> None:
        """Our Tarjan implementation partitions nodes exactly like networkx."""
        nodes_list = list(range(10))
        successors: dict[int, list[int]] = {node: [] for node in nodes_list}
        graph = networkx.DiGraph()
        graph.add_nodes_from(nodes_list)
        for source, target in edges:
            if target not in successors[source]:
                successors[source].append(target)
            graph.add_edge(source, target)
        ours = {frozenset(component) for component in strongly_connected_components(nodes_list, successors)}
        reference = {frozenset(component) for component in networkx.strongly_connected_components(graph)}
        assert ours == reference
