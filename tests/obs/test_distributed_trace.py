"""Trace propagation across the full distributed stack.

The satellite property: a traced statement through a 2-shard cluster with
one replica per shard yields a **single rooted tree** whose spans cover
the client edge, the coordinator, and the shard nodes that did the work —
assembled purely by pulling each node's buffer and joining on ids.
"""

from __future__ import annotations

import pytest

from repro.netclient.client import RemoteDatabase
from repro.obs.trace import TracingOptions, span_tree
from repro.sqlengine.errors import SqlError
from repro.tpcw.sharded import build_sharded_cluster


@pytest.fixture(scope="module")
def cluster():
    with_cluster = build_sharded_cluster(num_shards=2, replicas_per_shard=1)
    try:
        yield with_cluster
    finally:
        with_cluster.stop()


@pytest.fixture()
def remote(cluster) -> RemoteDatabase:
    host, port = cluster.server.address
    return RemoteDatabase(host, port, tracing=TracingOptions(enabled=True))


def _single_trace(remote: RemoteDatabase) -> list[dict]:
    """The spans of the statement this remote just traced: its id comes
    from the client edge's own buffer (fresh per test), the spans from
    the pull-merge across every node."""
    client_spans = remote.trace_buffer.spans()
    assert client_spans, "the client recorded no span"
    latest = client_spans[-1]["trace_id"]
    return remote.traces(latest)


class TestRootedTree:
    def test_fanout_read_spans_client_coordinator_and_both_shards(
        self, remote
    ) -> None:
        with remote.session() as session:
            session.execute("SELECT COUNT(*) FROM customer")
        spans = _single_trace(remote)
        tree = span_tree(spans)
        roots = tree[None]
        assert len(roots) == 1, [s["name"] for s in spans]
        assert roots[0]["name"] == "client"
        nodes = {span["node"] for span in spans}
        assert "client" in nodes
        assert "tpcw-coordinator" in nodes
        # The fan-out touched one node per shard (replicas answer
        # autocommit reads through the replicated pools).
        shard_nodes = nodes - {"client", "tpcw-coordinator"}
        assert len(shard_nodes) == 2, nodes
        # Parent/child chain: client -> coordinator -> shard statements.
        (client,) = [s for s in spans if s["name"] == "client"]
        (coordinator,) = [s for s in spans if s["name"] == "coordinator"]
        assert coordinator["parent_span_id"] == client["span_id"]
        for leaf in tree.get(coordinator["span_id"], []):
            assert leaf["trace_id"] == client["trace_id"]
        assert len(tree.get(coordinator["span_id"], [])) == 2

    def test_keyed_write_routes_one_shard_primary(self, remote) -> None:
        with remote.session() as session:
            session.execute("UPDATE customer SET c_fname = 'T' WHERE c_id = 7")
        spans = _single_trace(remote)
        tree = span_tree(spans)
        assert len(tree[None]) == 1
        (coordinator,) = [s for s in spans if s["name"] == "coordinator"]
        assert coordinator["tags"].get("route") == "single"
        leaves = [s for s in spans if s["name"] == "statement"]
        assert len(leaves) == 1
        assert leaves[0]["node"].startswith("shard")

    def test_coordinator_span_carries_route_and_sql(self, remote) -> None:
        with remote.session() as session:
            session.execute("SELECT COUNT(*) FROM customer")
        spans = _single_trace(remote)
        (coordinator,) = [s for s in spans if s["name"] == "coordinator"]
        assert coordinator["tags"]["route"] == "fanout"
        assert "customer" in coordinator["tags"]["sql"]


class TestErrorPropagation:
    def test_error_frames_keep_the_trace_id(self, remote) -> None:
        with remote.session() as session:
            with pytest.raises(SqlError):
                session.execute("SELECT no_such_column FROM customer")
        spans = _single_trace(remote)
        tree = span_tree(spans)
        assert len(tree[None]) == 1
        (client,) = [s for s in spans if s["name"] == "client"]
        (coordinator,) = [s for s in spans if s["name"] == "coordinator"]
        assert client["trace_id"] == coordinator["trace_id"]
        assert client["status"] == "error"
        assert coordinator["status"] == "error"
        assert "no_such_column" in coordinator["error"]


class TestWireSurfaces:
    def test_metrics_verb_merges_the_whole_registry(self, remote) -> None:
        with remote.session() as session:
            session.execute("SELECT COUNT(*) FROM item")
        text = remote.metrics()
        assert "repro_coordinator_statements_executed" in text
        assert "repro_server_statements" in text
        assert "repro_coordinator_statement_latency_seconds_count" in text

    def test_traces_queryable_by_id_over_the_wire(self, remote) -> None:
        with remote.session() as session:
            session.execute("SELECT COUNT(*) FROM item")
        spans = remote.traces()
        trace_id = spans[-1]["trace_id"]
        filtered = remote.traces(trace_id)
        assert filtered
        assert {span["trace_id"] for span in filtered} == {trace_id}
