"""The unified metrics registry: instruments, collectors, exposition."""

from __future__ import annotations

import urllib.request

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    start_metrics_http_server,
)


class TestInstruments:
    def test_counter_increments(self) -> None:
        counter = MetricsRegistry().counter("statements")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_moves_both_ways(self) -> None:
        gauge = MetricsRegistry().gauge("connections")
        gauge.inc()
        gauge.inc()
        gauge.dec()
        assert gauge.value == 1
        gauge.set(7)
        assert gauge.value == 7

    def test_histogram_counts_and_percentiles(self) -> None:
        histogram = MetricsRegistry().histogram("latency")
        for _ in range(90):
            histogram.observe(0.001)
        for _ in range(10):
            histogram.observe(1.0)
        assert histogram.count == 100
        assert histogram.percentile(0.5) < 0.01
        assert histogram.percentile(0.99) > 0.1
        summary = histogram.snapshot()
        assert summary["count"] == 100
        assert summary["p50_ms"] < summary["p99_ms"]
        assert len(summary["buckets"]) == len(DEFAULT_BUCKETS) + 1

    def test_histogram_empty_percentile_is_zero(self) -> None:
        assert MetricsRegistry().histogram("empty").percentile(0.99) == 0.0


class TestRegistry:
    def test_instruments_get_or_create_by_name(self) -> None:
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_collectors_pulled_at_snapshot(self) -> None:
        registry = MetricsRegistry()
        state = {"ticks": 0}
        registry.collect("sub", lambda: state)
        state["ticks"] = 3
        assert registry.snapshot()["collected"]["sub_ticks"] == 3

    def test_collector_filters_non_numbers_and_bools(self) -> None:
        registry = MetricsRegistry()
        registry.collect(
            "sub", lambda: {"n": 1, "label": "x", "flag": True, "nested": {}}
        )
        collected = registry.snapshot()["collected"]
        assert collected == {"sub_n": 1}

    def test_dying_collector_does_not_kill_the_scrape(self) -> None:
        registry = MetricsRegistry()
        registry.counter("ok").inc()

        def boom() -> dict:
            raise RuntimeError("collector died")

        registry.collect("bad", boom)
        text = registry.render_prometheus()
        assert "repro_ok 1" in text

    def test_prometheus_rendering(self) -> None:
        registry = MetricsRegistry(namespace="repro")
        registry.counter("statements", help="Statements executed").inc(2)
        registry.gauge("active").set(3)
        registry.histogram("latency").observe(0.01)
        registry.collect("engine", lambda: {"cache_hits": 9})
        text = registry.render_prometheus()
        assert "# HELP repro_statements Statements executed" in text
        assert "# TYPE repro_statements counter" in text
        assert "repro_statements 2" in text
        assert "# TYPE repro_active gauge" in text
        assert "repro_latency_count 1" in text
        assert 'repro_latency_bucket{le="+Inf"} 1' in text
        assert "repro_engine_cache_hits 9" in text


class TestHttpEndpoint:
    def test_scrape_over_http(self) -> None:
        registry = MetricsRegistry()
        registry.counter("requests").inc(5)
        server = start_metrics_http_server(registry.render_prometheus, port=0)
        try:
            host, port = server.server_address
            with urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=5
            ) as response:
                body = response.read().decode("utf-8")
            assert "repro_requests 5" in body
        finally:
            server.shutdown()
