"""The structured slow-query log."""

from __future__ import annotations

import io
import json

from repro.obs.slowlog import SlowQueryLog


class TestThreshold:
    def test_disabled_by_default(self) -> None:
        log = SlowQueryLog()
        assert not log.enabled
        assert log.record("SELECT 1", 10_000.0) is None
        assert log.recent() == []

    def test_below_threshold_not_logged(self) -> None:
        log = SlowQueryLog(threshold_ms=5.0)
        assert log.record("SELECT 1", 4.9) is None
        assert log.record("SELECT 1", 5.0) is not None

    def test_stats(self) -> None:
        log = SlowQueryLog(threshold_ms=1.0)
        log.record("SELECT 1", 2.0)
        assert log.stats() == {
            "enabled": True,
            "threshold_ms": 1.0,
            "buffered": 1,
            "logged": 1,
        }


class TestRecords:
    def test_record_fields(self) -> None:
        log = SlowQueryLog(threshold_ms=0.0, node="primary")
        entry = log.record(
            "SELECT * FROM t",
            12.3456,
            rows=42,
            mode="batch",
            route="fanout",
            trace_id="ab" * 16,
            error=None,
        )
        assert entry is not None
        assert entry["node"] == "primary"
        assert entry["sql"] == "SELECT * FROM t"
        assert entry["duration_ms"] == 12.346
        assert entry["rows"] == 42
        assert entry["mode"] == "batch"
        assert entry["route"] == "fanout"
        assert entry["trace_id"] == "ab" * 16
        assert entry["error"] is None
        assert entry["ts"] > 0

    def test_ring_keeps_most_recent(self) -> None:
        log = SlowQueryLog(threshold_ms=0.0, capacity=2)
        for index in range(3):
            log.record(f"Q{index}", 1.0)
        assert [r["sql"] for r in log.recent()] == ["Q1", "Q2"]
        assert [r["sql"] for r in log.recent(limit=1)] == ["Q2"]

    def test_clear(self) -> None:
        log = SlowQueryLog(threshold_ms=0.0)
        log.record("SELECT 1", 1.0)
        log.clear()
        assert log.recent() == []


class TestSink:
    def test_sink_gets_json_lines(self) -> None:
        sink = io.StringIO()
        log = SlowQueryLog(threshold_ms=0.0, sink=sink, node="n1")
        log.record("SELECT 1", 3.0, rows=1)
        log.record("SELECT 2", 4.0, rows=2)
        lines = sink.getvalue().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["sql"] == "SELECT 1"
        assert first["node"] == "n1"

    def test_broken_sink_does_not_fail_the_statement(self) -> None:
        class Broken:
            def write(self, _line: str) -> None:
                raise OSError("disk full")

            def flush(self) -> None:
                raise OSError("disk full")

        log = SlowQueryLog(threshold_ms=0.0, sink=Broken())
        assert log.record("SELECT 1", 1.0) is not None
        assert len(log.recent()) == 1
