"""The pool-stats contract: one documented schema for both pool flavours.

``ConnectionPool.stats()`` and ``ReplicatedConnectionPool.stats()`` are
the operational surface dashboards read; this test pins their key sets to
the module-level ``POOL_STATS_KEYS`` / ``ROUTED_POOL_STATS_KEYS`` schema
constants so a key can only be renamed or dropped deliberately.
"""

from __future__ import annotations

import pytest

from repro.netclient.client import RemoteDatabase
from repro.netclient.pool import (
    POOL_STATS_KEYS,
    ROUTED_POOL_STATS_KEYS,
    ConnectionPool,
)
from repro.server import SqlServer
from repro.sqlengine.engine import Database

from tests.replication.harness import ReplicationCluster


class TestSchemaConstants:
    def test_plain_pool_schema_is_pinned(self) -> None:
        assert POOL_STATS_KEYS == (
            "size",
            "idle",
            "in_use",
            "max_size",
            "checkouts",
            "created",
            "discarded",
            "liveness_failures",
            "ping_failures",
            "replacements",
            "checkout_timeouts",
            "round_trips",
            "bytes_sent",
            "bytes_received",
        )

    def test_routed_pool_schema_is_pinned(self) -> None:
        assert ROUTED_POOL_STATS_KEYS == (
            "reads_on_replicas",
            "reads_on_primary",
            "writes_on_primary",
            "read_your_writes_waits",
            "watermark_wait_timeouts",
            "lag_fallbacks",
            "replicas_evicted",
            "replicas_detached",
            "failovers",
            "generation",
            "last_write_lsn",
            "primary",
            "replicas",
        )


class TestLiveStats:
    def test_plain_pool_stats_match_schema_exactly(self) -> None:
        server = SqlServer(database=Database()).start()
        try:
            host, port = server.address
            with ConnectionPool(host, port, max_size=2) as pool:
                with pool.session() as session:
                    session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
                    session.execute("SELECT COUNT(*) FROM t")
                stats = pool.stats()
        finally:
            server.shutdown()
        assert set(stats) == set(POOL_STATS_KEYS)
        assert all(isinstance(stats[key], int) for key in POOL_STATS_KEYS)
        assert stats["checkouts"] >= 1
        assert stats["round_trips"] >= 1

    @pytest.fixture()
    def cluster(self, tmp_path):
        with ReplicationCluster(str(tmp_path), replicas=1) as cluster:
            with RemoteDatabase(cluster.address).session() as session:
                session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
                session.execute("INSERT INTO t VALUES (1)")
            cluster.wait_sync()
            yield cluster

    def test_routed_pool_stats_match_schema_exactly(self, cluster) -> None:
        with cluster.pool() as pool:
            with pool.session() as session:
                session.execute("INSERT INTO t VALUES (2)")
                session.execute("SELECT COUNT(*) FROM t")
            stats = pool.stats()
        assert set(stats) == set(ROUTED_POOL_STATS_KEYS)
        # Fault counters exist from the start (zero, not missing).
        assert stats["watermark_wait_timeouts"] == 0
        assert stats["lag_fallbacks"] == 0
        # Per-node sections carry the plain-pool schema plus the address.
        for node in [stats["primary"], *stats["replicas"]]:
            assert set(node) == {"address"} | set(POOL_STATS_KEYS)
        assert stats["writes_on_primary"] >= 1
