"""Trace contexts, spans, ring buffers and tree assembly."""

from __future__ import annotations

from repro.obs.trace import (
    TRACE_CONTEXT_WIRE_BYTES,
    TraceBuffer,
    TraceContext,
    TracingOptions,
    new_root_context,
    span_tree,
)


class TestTraceContext:
    def test_wire_roundtrip(self) -> None:
        context = TraceContext("ab" * 16, "cd" * 8, sampled=True)
        payload = context.to_wire_bytes()
        assert len(payload) == TRACE_CONTEXT_WIRE_BYTES
        assert TraceContext.from_wire_bytes(payload) == context

    def test_unsampled_flag_survives_the_wire(self) -> None:
        context = TraceContext("00" * 16, "11" * 8, sampled=False)
        assert not TraceContext.from_wire_bytes(context.to_wire_bytes()).sampled

    def test_child_context_keeps_trace_id(self) -> None:
        root = new_root_context()
        child = root.child_context("feed" * 4)
        assert child.trace_id == root.trace_id
        assert child.span_id == "feed" * 4
        assert child.sampled

    def test_root_context_has_no_parent_span(self) -> None:
        assert new_root_context().span_id == ""


class TestSpans:
    def test_span_under_root_context_is_a_root(self) -> None:
        buffer = TraceBuffer()
        span = buffer.start_span(new_root_context(), "client", "edge")
        span.finish()
        (recorded,) = buffer.spans()
        assert recorded["parent_span_id"] is None
        assert recorded["name"] == "client"
        assert recorded["node"] == "edge"
        assert recorded["status"] == "ok"

    def test_forwarded_context_parents_the_next_span(self) -> None:
        buffer = TraceBuffer()
        parent = buffer.start_span(new_root_context(), "client", "edge")
        child = buffer.start_span(parent.context, "statement", "primary")
        child.finish()
        parent.finish()
        children = [s for s in buffer.spans() if s["name"] == "statement"]
        assert children[0]["parent_span_id"] == parent.context.span_id
        assert children[0]["trace_id"] == parent.context.trace_id

    def test_phases_accumulate_and_events_count(self) -> None:
        buffer = TraceBuffer()
        span = buffer.start_span(new_root_context(), "statement", "n")
        span.phase("execute", 0.010)
        span.phase("execute", 0.005)
        span.event("conflict_retry")
        span.event("conflict_retry", 2)
        span.tag(sql="SELECT 1", rows=1)
        span.finish()
        (recorded,) = buffer.spans()
        assert abs(recorded["phases"]["execute"] - 15.0) < 1e-6
        assert recorded["events"]["conflict_retry"] == 3
        assert recorded["tags"] == {"sql": "SELECT 1", "rows": 1}

    def test_finish_with_error_sets_status(self) -> None:
        buffer = TraceBuffer()
        span = buffer.start_span(new_root_context(), "statement", "n")
        span.finish(ValueError("nope"))
        (recorded,) = buffer.spans()
        assert recorded["status"] == "error"
        assert recorded["error"] == "ValueError: nope"

    def test_finish_is_idempotent(self) -> None:
        buffer = TraceBuffer()
        span = buffer.start_span(new_root_context(), "s", "n")
        span.finish()
        span.finish()
        assert len(buffer.spans()) == 1


class TestTraceBuffer:
    def test_ring_evicts_oldest_and_counts_drops(self) -> None:
        buffer = TraceBuffer(capacity=2)
        for name in ("a", "b", "c"):
            buffer.start_span(new_root_context(), name, "n").finish()
        names = [span["name"] for span in buffer.spans()]
        assert names == ["b", "c"]
        stats = buffer.stats()
        assert stats == {
            "buffered": 2,
            "capacity": 2,
            "recorded": 3,
            "dropped": 1,
        }

    def test_filter_by_trace_id(self) -> None:
        buffer = TraceBuffer()
        keep = new_root_context()
        buffer.start_span(keep, "mine", "n").finish()
        buffer.start_span(new_root_context(), "other", "n").finish()
        assert [s["name"] for s in buffer.spans(keep.trace_id)] == ["mine"]
        assert buffer.trace_ids()[0] == keep.trace_id
        assert len(buffer.trace_ids()) == 2


class TestSampling:
    def test_disabled_never_samples(self) -> None:
        options = TracingOptions(enabled=False)
        assert not any(options.samples(i) for i in range(1, 100))

    def test_full_rate_always_samples(self) -> None:
        options = TracingOptions(enabled=True, sample_rate=1.0)
        assert all(options.samples(i) for i in range(1, 100))

    def test_fractional_rate_is_one_in_n(self) -> None:
        options = TracingOptions(enabled=True, sample_rate=0.1)
        hits = sum(1 for i in range(1, 101) if options.samples(i))
        assert hits == 10


class TestSpanTree:
    def _span(self, span_id: str, parent: str | None, start: float) -> dict:
        return {
            "span_id": span_id,
            "parent_span_id": parent,
            "start_ts": start,
            "name": span_id,
        }

    def test_roots_and_children(self) -> None:
        spans = [
            self._span("root", None, 1.0),
            self._span("childB", "root", 3.0),
            self._span("childA", "root", 2.0),
        ]
        tree = span_tree(spans)
        assert [s["span_id"] for s in tree[None]] == ["root"]
        assert [s["span_id"] for s in tree["root"]] == ["childA", "childB"]

    def test_orphaned_parent_is_rerooted(self) -> None:
        tree = span_tree([self._span("lost", "never-collected", 1.0)])
        assert [s["span_id"] for s in tree[None]] == ["lost"]
