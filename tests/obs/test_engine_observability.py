"""Engine-level observability: spans, slow log, metrics, runtime toggles."""

from __future__ import annotations

import threading
import time

from repro.obs.trace import TracingOptions, new_root_context, span_tree
from repro.sqlengine.engine import Database


def _traced_db(**kwargs) -> Database:
    database = Database(tracing=TracingOptions(enabled=True), **kwargs)
    database.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    database.execute("INSERT INTO t VALUES (1, 10)")
    return database


class TestStatementSpans:
    def test_tracing_off_records_nothing(self) -> None:
        database = Database()
        database.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        database.execute("INSERT INTO t VALUES (1)")
        assert database.traces() == []

    def test_statement_span_has_phase_timings(self) -> None:
        database = _traced_db()
        database.execute("SELECT v FROM t WHERE id = 1")
        span = database.traces()[-1]
        assert span["name"] == "statement"
        assert span["node"] == "engine"
        assert span["tags"]["sql"] == "SELECT v FROM t WHERE id = 1"
        for phase in ("parse", "plan", "execute"):
            assert phase in span["phases"], span["phases"]
        assert span["duration_ms"] >= span["phases"]["execute"]

    def test_wal_fsync_phase_on_durable_commit(self, tmp_path) -> None:
        database = _traced_db(data_dir=str(tmp_path))
        database.execute("INSERT INTO t VALUES (2, 20)")
        spans = [
            s
            for s in database.traces()
            if s["tags"].get("sql", "").startswith("INSERT INTO t VALUES (2")
        ]
        assert spans and "wal_fsync" in spans[0]["phases"]

    def test_inbound_context_is_honoured_with_tracing_off(self) -> None:
        """A sampled context from a remote caller is traced even on a node
        whose own tracing is disabled — tracing from the edge."""
        database = Database()
        database.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        context = new_root_context()
        session = database.session()
        session.execute("INSERT INTO t VALUES (1)", trace=context)
        session.close()
        (span,) = database.traces(context.trace_id)
        assert span["trace_id"] == context.trace_id

    def test_error_keeps_the_trace_id(self) -> None:
        database = _traced_db()
        context = new_root_context()
        session = database.session()
        try:
            session.execute("SELECT nope FROM t", trace=context)
        except Exception:
            pass
        finally:
            session.close()
        (span,) = database.traces(context.trace_id)
        assert span["status"] == "error"
        assert "nope" in span["error"]

    def test_conflict_retry_stays_in_one_trace(self) -> None:
        """An autocommit statement that loses a write-write conflict and
        retries internally produces ONE span (same trace id) carrying a
        ``conflict_retry`` event — not a fresh trace per attempt."""
        database = _traced_db()
        blocker = database.session()
        blocker.begin()
        blocker.execute("UPDATE t SET v = 100 WHERE id = 1")

        def release() -> None:
            time.sleep(0.05)
            blocker.commit()
            blocker.close()

        thread = threading.Thread(target=release)
        thread.start()
        before = {span["span_id"] for span in database.traces()}
        database.execute("UPDATE t SET v = 200 WHERE id = 1")
        thread.join()
        new = [
            span
            for span in database.traces()
            if span["span_id"] not in before
            and span["tags"].get("sql") == "UPDATE t SET v = 200 WHERE id = 1"
        ]
        assert len(new) == 1
        assert new[0]["events"].get("conflict_retry", 0) >= 1
        assert new[0]["status"] == "ok"


class TestSlowQueryLog:
    def test_threshold_zero_logs_everything_with_trace_ids(self) -> None:
        database = _traced_db(slow_query_ms=0.0)
        database.execute("SELECT v FROM t WHERE id = 1")
        record = database.slow_queries()[-1]
        assert record["sql"] == "SELECT v FROM t WHERE id = 1"
        assert record["trace_id"] is not None
        assert record["rows"] == 1
        span = database.traces(record["trace_id"])[-1]
        assert span["trace_id"] == record["trace_id"]

    def test_runtime_threshold_toggle(self) -> None:
        database = Database()
        database.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        assert database.slow_queries() == []
        database.set_slow_query_threshold(0.0)
        database.execute("INSERT INTO t VALUES (1)")
        assert len(database.slow_queries()) == 1
        database.set_slow_query_threshold(None)
        database.execute("INSERT INTO t VALUES (2)")
        assert len(database.slow_queries()) == 1


class TestMetricsSurface:
    def test_render_includes_engine_and_mvcc_counters(self) -> None:
        database = _traced_db()
        database.execute("SELECT v FROM t WHERE id = 1")
        text = database.render_metrics()
        assert "repro_engine_statements_executed" in text
        assert "repro_mvcc_" in text
        assert "repro_statement_latency_seconds_count" in text

    def test_set_tracing_toggles_at_runtime(self) -> None:
        database = Database()
        database.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        database.execute("INSERT INTO t VALUES (1)")
        assert database.traces() == []
        database.set_tracing(TracingOptions(enabled=True))
        database.execute("INSERT INTO t VALUES (2)")
        assert len(database.traces()) == 1
        database.set_tracing(TracingOptions(enabled=False))
        database.execute("INSERT INTO t VALUES (3)")
        assert len(database.traces()) == 1

    def test_sampling_traces_one_in_n(self) -> None:
        database = Database(
            tracing=TracingOptions(enabled=True, sample_rate=0.5)
        )
        database.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        before = len(database.traces())
        for index in range(10):
            database.execute(f"INSERT INTO t VALUES ({index})")
        assert len(database.traces()) - before == 5


class TestTraceAssembly:
    def test_session_spans_form_one_rooted_tree(self) -> None:
        database = _traced_db()
        context = new_root_context()
        session = database.session()
        session.execute("SELECT v FROM t WHERE id = 1", trace=context)
        session.close()
        tree = span_tree(database.traces(context.trace_id))
        assert len(tree[None]) == 1
