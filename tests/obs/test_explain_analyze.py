"""EXPLAIN ANALYZE: actual row counts and wall time per operator."""

from __future__ import annotations

import re

import pytest

from repro.sqlengine.engine import Database
from repro.sqlengine.planner import PlannerOptions

_ANNOTATION = re.compile(
    r"\[actual rows=(\d+) time=(\d+\.\d+)ms loops=(\d+)\]"
)
_FOOTER = re.compile(r"Execution: rows=(\d+) time=(\d+\.\d+)ms")


def _build(mode: str) -> Database:
    database = Database(
        planner_options=PlannerOptions(execution_mode=mode)
    )
    database.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    for index in range(50):
        database.execute(f"INSERT INTO t VALUES ({index}, {index})")
    return database


def _plan_lines(database: Database, sql: str) -> list[str]:
    return [row[0] for row in database.execute(sql).rows]


class TestExplainAnalyze:
    @pytest.mark.parametrize("mode", ["row", "batch"])
    def test_every_operator_line_is_annotated(self, mode: str) -> None:
        database = _build(mode)
        lines = _plan_lines(
            database,
            "EXPLAIN ANALYZE SELECT v FROM t WHERE v < 10 ORDER BY v",
        )
        assert lines[0].startswith(f"mode={mode}")
        operator_lines = lines[1:-1]
        assert operator_lines, lines
        for line in operator_lines:
            assert _ANNOTATION.search(line), line

    @pytest.mark.parametrize("mode", ["row", "batch"])
    def test_actual_rows_match_the_query(self, mode: str) -> None:
        database = _build(mode)
        lines = _plan_lines(
            database, "EXPLAIN ANALYZE SELECT v FROM t WHERE v < 10"
        )
        footer = _FOOTER.search(lines[-1])
        assert footer is not None, lines[-1]
        assert int(footer.group(1)) == 10
        # The top operator produced exactly the result rows.
        top = _ANNOTATION.search(lines[1])
        assert top is not None
        assert int(top.group(1)) == 10

    def test_row_mode_scan_sees_all_rows_filter_narrows(self) -> None:
        database = _build("row")
        lines = _plan_lines(
            database, "EXPLAIN ANALYZE SELECT v FROM t WHERE v < 10"
        )
        scan = next(line for line in lines if "SeqScan" in line)
        assert "actual rows=50" in scan
        narrowed = next(line for line in lines if "Filter" in line)
        assert "actual rows=10" in narrowed

    def test_plain_explain_has_no_actuals(self) -> None:
        database = _build("row")
        lines = _plan_lines(database, "EXPLAIN SELECT v FROM t")
        assert not any("actual rows" in line for line in lines)
        assert not any(_FOOTER.search(line) for line in lines)

    def test_analyze_executes_for_real_but_returns_the_plan(self) -> None:
        database = _build("row")
        result = database.execute("EXPLAIN ANALYZE SELECT COUNT(*) FROM t")
        assert result.columns == ["query plan"]
        assert all(len(row) == 1 for row in result.rows)

    def test_analyze_does_not_poison_the_plan_cache(self) -> None:
        """Instrumented operators must never leak into cached plans: the
        same statement re-run without ANALYZE has no annotations."""
        database = _build("row")
        database.execute("EXPLAIN ANALYZE SELECT v FROM t WHERE v < 10")
        lines = _plan_lines(database, "EXPLAIN SELECT v FROM t WHERE v < 10")
        assert not any("actual rows" in line for line in lines)
        result = database.execute("SELECT v FROM t WHERE v < 10")
        assert result.rowcount == 10
