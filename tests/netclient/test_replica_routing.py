"""Replica-aware routing through :class:`ReplicatedConnectionPool`.

Routing is asserted two ways: through the pool's own counters
(``reads_on_replicas`` etc.) and — independently — through per-node wire
round trips, the same counting the plain pool tests use: if a SELECT went
to a replica, the replica pool's round-trip counter moved and the
primary's did not.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.netclient.client import RemoteDatabase
from repro.netclient.pool import (
    ConnectionPool,
    PoolTimeoutError,
    ReplicatedConnectionPool,
)
from repro.sqlengine.errors import SqlExecutionError

from tests.replication.harness import ReplicationCluster


@pytest.fixture()
def cluster(tmp_path):
    with ReplicationCluster(str(tmp_path), replicas=2) as cluster:
        with RemoteDatabase(cluster.address).session() as session:
            session.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
            for i in range(10):
                session.execute(f"INSERT INTO t VALUES ({i}, {i * 10})")
        cluster.wait_sync()
        yield cluster


def _node_trips(pool: ReplicatedConnectionPool) -> tuple[int, list[int]]:
    stats = pool.stats()
    return (
        stats["primary"]["round_trips"],
        [node["round_trips"] for node in stats["replicas"]],
    )


class TestRouting:
    def test_autocommit_selects_go_to_replicas(self, cluster) -> None:
        with cluster.pool() as pool:
            with pool.session() as session:
                for _ in range(6):
                    assert session.execute("SELECT COUNT(*) FROM t").rows == [(10,)]
            stats = pool.stats()
            assert stats["reads_on_replicas"] == 6
            assert stats["writes_on_primary"] == 0
            primary_trips, replica_trips = _node_trips(pool)
            # Only handshakes may have touched the primary-side counter —
            # no EXECUTE did; the replicas carried all six.
            assert sum(replica_trips) >= 6
            assert primary_trips == 0

    def test_writes_go_to_primary(self, cluster) -> None:
        with cluster.pool() as pool:
            with pool.session() as session:
                session.execute("INSERT INTO t VALUES (100, 1)")
                session.execute("UPDATE t SET v = 2 WHERE id = 100")
                session.execute("DELETE FROM t WHERE id = 100")
            stats = pool.stats()
            assert stats["writes_on_primary"] == 3
            assert stats["reads_on_replicas"] == 0
            assert stats["primary"]["round_trips"] > 0

    def test_explicit_transaction_pins_to_primary(self, cluster) -> None:
        with cluster.pool() as pool:
            with pool.session(autocommit=False) as session:
                session.execute("INSERT INTO t VALUES (101, 1)")
                # Mid-transaction reads must see the uncommitted write,
                # so they stay on the primary connection.
                rows = session.execute(
                    "SELECT COUNT(*) FROM t WHERE id = 101"
                ).rows
                assert rows == [(1,)]
                session.commit()
            stats = pool.stats()
            assert stats["reads_on_replicas"] == 0
            assert stats["reads_on_primary"] == 1

    def test_read_only_session_pins_one_replica(self, cluster) -> None:
        with cluster.pool() as pool:
            with pool.session(read_only=True) as session:
                for _ in range(4):
                    session.execute("SELECT COUNT(*) FROM t")
            stats = pool.stats()
            assert stats["reads_on_replicas"] == 4
            _primary, replica_trips = _node_trips(pool)
            # All four landed on the same pinned node.
            assert sorted(trips > 0 for trips in replica_trips) == [False, True]

    def test_round_robin_spreads_sessions(self, cluster) -> None:
        with cluster.pool() as pool:
            for _ in range(4):
                with pool.session() as session:
                    session.execute("SELECT COUNT(*) FROM t")
            _primary, replica_trips = _node_trips(pool)
            assert all(trips > 0 for trips in replica_trips)

    def test_prepared_statements_route_by_text(self, cluster) -> None:
        with cluster.pool() as pool:
            with pool.connection() as conn:
                read = conn.prepare_statement("SELECT v FROM t WHERE id = ?")
                read.set_int(1, 3)
                result = read.execute_query()
                assert result.next() and result.get_int(1) == 30
                write = conn.prepare_statement(
                    "UPDATE t SET v = ? WHERE id = ?"
                )
                write.set_int(1, 31)
                write.set_int(2, 3)
                assert write.execute_update() == 1
            stats = pool.stats()
            assert stats["reads_on_replicas"] == 1
            assert stats["writes_on_primary"] == 1


class TestReadYourWrites:
    def test_replica_read_waits_for_own_write(self, cluster) -> None:
        with cluster.pool(read_your_writes=True) as pool:
            with pool.session() as session:
                session.execute("INSERT INTO t VALUES (200, 42)")
                rows = session.execute(
                    "SELECT v FROM t WHERE id = 200"
                ).rows
            assert rows == [(42,)]
            stats = pool.stats()
            assert stats["reads_on_replicas"] == 1
            assert stats["last_write_lsn"] > [0, 0]

    def test_wait_skipped_once_watermark_observed(self, cluster) -> None:
        with cluster.pool(read_your_writes=True) as pool:
            with pool.session() as session:
                session.execute("INSERT INTO t VALUES (201, 1)")
                session.execute("SELECT v FROM t WHERE id = 201")
                waits_after_first = pool.stats()["read_your_writes_waits"]
                # Same connection, same replica: its responses already
                # carried a watermark past the write, so no second wait.
                session.execute("SELECT v FROM t WHERE id = 201")
            assert pool.stats()["read_your_writes_waits"] == waits_after_first

    def test_lagging_replica_falls_back_to_primary(self, tmp_path) -> None:
        with ReplicationCluster(str(tmp_path), replicas=1, faulty=True) as cluster:
            with RemoteDatabase(cluster.address).session() as session:
                session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
            cluster.wait_sync()
            # Freeze the stream: the replica can never catch up now.
            cluster.links[0].refuse_new(True)
            cluster.links[0].sever()
            with cluster.pool(
                read_your_writes=True, read_your_writes_timeout=0.2
            ) as pool:
                with pool.session() as session:
                    session.execute("INSERT INTO t VALUES (1)")
                    rows = session.execute("SELECT COUNT(*) FROM t").rows
                assert rows == [(1,)]  # served consistently by the primary
                stats = pool.stats()
                assert stats["read_your_writes_waits"] == 1
                assert stats["reads_on_primary"] == 1
                assert stats["replicas_evicted"] == 0  # lagging, not dead
                # The lag is individually accounted: the watermark wait
                # timed out once and triggered one primary fallback.
                assert stats["watermark_wait_timeouts"] == 1
                assert stats["lag_fallbacks"] == 1


class TestEvictionAndFailover:
    def test_dead_replica_transparently_evicted(self, cluster) -> None:
        with cluster.pool() as pool:
            with pool.session() as session:
                session.execute("SELECT COUNT(*) FROM t")
            cluster.kill_replica(0)
            cluster.kill_replica(1)
            with pool.session() as session:
                rows = session.execute("SELECT COUNT(*) FROM t").rows
            assert rows == [(10,)]  # fell back to the primary
            stats = pool.stats()
            assert stats["replicas_evicted"] == 2
            assert stats["reads_on_primary"] >= 1
            assert stats["replicas"] == []

    def test_failover_promotes_and_redirects_writes(self, cluster) -> None:
        with cluster.pool() as pool:
            with pool.session() as session:
                session.execute("INSERT INTO t VALUES (300, 1)")
            cluster.wait_sync()
            cluster.kill_primary()
            with pool.session() as session:
                session.execute("INSERT INTO t VALUES (301, 1)")
                rows = session.execute(
                    "SELECT COUNT(*) FROM t WHERE id IN (300, 301)"
                ).rows
            assert rows == [(2,)]
            stats = pool.stats()
            assert stats["failovers"] == 1
            assert stats["generation"] == 1
            assert list(pool.primary_address) in [
                list(address) for address in cluster.replica_addresses
            ]
            roles = [replica.role for replica in cluster.replicas]
            assert roles.count("primary") == 1

    def test_explicit_transaction_not_silently_retried(self, cluster) -> None:
        with cluster.pool() as pool:
            session = pool.session(autocommit=False)
            try:
                session.execute("INSERT INTO t VALUES (400, 1)")
                cluster.kill_primary()
                with pytest.raises((SqlExecutionError, OSError)):
                    session.execute("INSERT INTO t VALUES (401, 1)")
                # The failover still happened for the next session...
                assert pool.stats()["failovers"] == 1
            finally:
                session.close()
            # ...and the lost transaction's writes are gone entirely.
            with pool.session() as fresh:
                rows = fresh.execute(
                    "SELECT COUNT(*) FROM t WHERE id >= 400"
                ).rows
            assert rows == [(0,)]

    def test_concurrent_failover_promotes_exactly_once(self, cluster) -> None:
        with cluster.pool() as pool:
            with pool.session() as session:
                session.execute("SELECT COUNT(*) FROM t")
            cluster.wait_sync()
            cluster.kill_primary()
            errors = []

            def write(index: int) -> None:
                try:
                    with pool.session() as session:
                        session.execute(f"INSERT INTO t VALUES ({500 + index}, 1)")
                except Exception as error:  # noqa: BLE001
                    errors.append(error)

            threads = [
                threading.Thread(target=write, args=(index,)) for index in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(15.0)
            assert not errors, errors
            stats = pool.stats()
            assert stats["failovers"] == 1
            assert [r.role for r in cluster.replicas].count("primary") == 1
            with pool.session() as session:
                rows = session.execute(
                    "SELECT COUNT(*) FROM t WHERE id >= 500"
                ).rows
            assert rows == [(6,)]


class TestPoolStats:
    def test_ping_failures_and_replacements_counted(self, tmp_path) -> None:
        with ReplicationCluster(str(tmp_path), replicas=0) as cluster:
            pool = ConnectionPool(
                cluster.address, max_size=2, liveness_check_after=0.0
            )
            try:
                with pool.session() as session:
                    session.execute("CREATE TABLE ping (id INT PRIMARY KEY)")
                # Kill the server-side sockets out from under the idle
                # connection, then check out again: the stale connection
                # fails its PING and is replaced transparently.
                for handler in list(cluster.primary._handlers):
                    handler.kill()
                time.sleep(0.05)
                with pool.session() as session:
                    session.execute("SELECT COUNT(*) FROM ping")
                stats = pool.stats()
                assert stats["ping_failures"] == 1
                assert stats["replacements"] == 1
                assert stats["checkouts"] == 2
                assert stats["checkout_timeouts"] == 0
            finally:
                pool.close()

    def test_routed_stats_shape(self, cluster) -> None:
        with cluster.pool() as pool:
            with pool.session() as session:
                session.execute("INSERT INTO t VALUES (600, 1)")
                session.execute("SELECT COUNT(*) FROM t")
            stats = pool.stats()
            for key in (
                "reads_on_replicas",
                "reads_on_primary",
                "writes_on_primary",
                "read_your_writes_waits",
                "replicas_evicted",
                "replicas_detached",
                "failovers",
                "generation",
                "last_write_lsn",
                "primary",
                "replicas",
            ):
                assert key in stats
            for node in [stats["primary"], *stats["replicas"]]:
                for key in (
                    "checkouts",
                    "ping_failures",
                    "replacements",
                    "checkout_timeouts",
                    "round_trips",
                ):
                    assert key in node

    def test_saturation_is_not_a_failure(self, cluster) -> None:
        """PoolTimeoutError must neither evict a replica nor fail over."""
        with cluster.pool(max_size=1, checkout_timeout=0.1) as pool:
            session = pool.session(read_only=True)
            try:
                session.execute("SELECT COUNT(*) FROM t")  # pins the only connection...
                with pytest.raises(PoolTimeoutError):
                    other = pool.session(read_only=True)
                    # depends on which replica round-robin picks: force
                    # the same node by exhausting both
                    other.execute("SELECT COUNT(*) FROM t")
                    third = pool.session(read_only=True)
                    third.execute("SELECT COUNT(*) FROM t")
            finally:
                session.close()
            stats = pool.stats()
            assert stats["replicas_evicted"] == 0
            assert stats["failovers"] == 0
