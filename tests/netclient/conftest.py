"""Fixtures for the network driver suites.

``remote_tpcw`` wraps the session-scoped TPC-W database (from the
top-level conftest) in a running :class:`~repro.server.SqlServer` and
returns a :class:`~repro.tpcw.database.RemoteTpcwDatabase` handle — the
same surface as the local handle, with every engine session living on the
server.  ``tests/netclient/test_remote_tpcw.py`` substitutes it for the
``tpcw_db`` fixture to run the TPC-W suite unchanged over the network.
"""

from __future__ import annotations

import pytest

from repro.server import SqlServer
from repro.tpcw.database import RemoteTpcwDatabase, build_database, connect_remote
from repro.tpcw.population import PopulationScale


@pytest.fixture(scope="session")
def remote_tpcw() -> RemoteTpcwDatabase:
    """A tiny TPC-W database, served over a socket for the whole session.

    Built independently of the shared ``tpcw_db`` fixture (the write-mix tests
    mutate stock, and shadowing the fixture name would create a resolution
    cycle).  ``max_connections`` is generous because the reused suite opens
    a fresh (never explicitly closed) connection or EntityManager per test,
    exactly like its in-process original.
    """
    local = build_database(PopulationScale.tiny())
    server = SqlServer(database=local.database, max_connections=512).start()
    try:
        yield connect_remote(local, server.address)
    finally:
        server.shutdown()
