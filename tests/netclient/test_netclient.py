"""Remote dbapi driver: surface parity with the embedded driver, result
streaming, the ORM over the network, and the connection pool contract."""

from __future__ import annotations

import time

import pytest

from repro import netclient
from repro.netclient import ConnectionPool, PoolTimeoutError, RemoteDatabase
from repro.orm.entity_manager import EntityManager
from repro.server import SqlServer
from repro.sqlengine.engine import Database
from repro.sqlengine.errors import SqlExecutionError
from repro.testing import make_bank_db


def make_database(rows: int = 30) -> Database:
    database = Database()
    database.execute(
        "CREATE TABLE item (i_id INTEGER PRIMARY KEY, i_title VARCHAR(60), i_cost DOUBLE)"
    )
    database.execute_many(
        "INSERT INTO item (i_id, i_title, i_cost) VALUES (?, ?, ?)",
        [(index, f"title-{index}", float(index)) for index in range(1, rows + 1)],
    )
    return database


@pytest.fixture()
def server():
    with SqlServer(database=make_database()) as running:
        yield running


@pytest.fixture()
def connection(server):
    remote = netclient.connect(*server.address)
    yield remote
    remote.close()


class TestDbapiSurfaceParity:
    """The remote driver exposes the embedded driver's exact surface."""

    def test_prepared_statement_query(self, connection) -> None:
        statement = connection.prepare_statement(
            "SELECT i_id, i_title FROM item WHERE i_id = ?"
        )
        statement.set_int(1, 7)
        results = statement.execute_query()
        assert results.next()
        assert results.get_int(1) == 7
        assert results.get_string("I_TITLE") == "title-7"
        assert not results.next()

    def test_prepared_statement_update_and_rowcount(self, connection, server) -> None:
        statement = connection.prepare_statement(
            "UPDATE item SET i_cost = ? WHERE i_id = ?"
        )
        statement.set_double(1, 99.0)
        statement.set_int(2, 3)
        assert statement.execute_update() == 1
        assert server.database.execute(
            "SELECT i_cost FROM item WHERE i_id = 3"
        ).rows == [(99.0,)]

    def test_plain_statement(self, connection) -> None:
        results = connection.create_statement().execute(
            "SELECT COUNT(*) AS n FROM item"
        )
        assert results is not None
        results.next()
        assert results.get_int("n") == 30

    def test_null_handling(self, connection) -> None:
        connection.create_statement().execute(
            "UPDATE item SET i_cost = NULL WHERE i_id = 1"
        )
        results = connection.create_statement().execute(
            "SELECT i_cost FROM item WHERE i_id = 1"
        )
        results.next()
        assert results.get_double(1) == 0.0
        assert results.was_null(1)

    def test_explain_matches_engine(self, connection, server) -> None:
        statement = connection.prepare_statement(
            "SELECT i_title FROM item WHERE i_id = ?"
        )
        assert statement.explain() == server.database.explain(
            "SELECT i_title FROM item WHERE i_id = ?"
        )

    def test_closed_connection_rejects_statements(self, server) -> None:
        remote = netclient.connect(*server.address)
        remote.close()
        with pytest.raises(SqlExecutionError):
            remote.prepare_statement("SELECT 1 FROM item")

    def test_statement_id_cache_avoids_re_prepare(self, connection) -> None:
        for _ in range(3):
            statement = connection.prepare_statement(
                "SELECT i_title FROM item WHERE i_id = ?"
            )
            statement.set_int(1, 1)
            statement.execute_query().next()
            statement.close()
        client = connection.session.client
        assert len(client._statement_ids) == 1

    def test_prepared_statement_survives_cache_eviction(
        self, connection, monkeypatch
    ) -> None:
        """A long-lived PreparedStatement keeps working after 256+ other
        statements evicted (and server-side closed) its registration."""
        monkeypatch.setattr(type(connection.session.client), "STATEMENT_CACHE_SIZE", 4)
        held = connection.prepare_statement("SELECT i_title FROM item WHERE i_id = ?")
        held.set_int(1, 1)
        assert held.execute_query().next()
        for offset in range(8):  # churn the cache past its capacity
            connection.prepare_statement(
                f"SELECT i_title FROM item WHERE i_id = {offset + 1}"
            ).execute_query()
        held.set_int(1, 2)
        results = held.execute_query()
        assert results.next() and results.get_string(1) == "title-2"


class TestTransactionSemantics:
    """Identical semantics to tests/dbapi/test_connection_transactions.py,
    but over the network — including the shared close-rolls-back contract
    (documented once in docs/server.md § Connection lifecycle)."""

    def test_autocommit_visible_immediately(self, server) -> None:
        first = netclient.connect(*server.address)
        second = netclient.connect(*server.address)
        first.create_statement().execute("DELETE FROM item WHERE i_id = 30")
        results = second.create_statement().execute("SELECT COUNT(*) FROM item")
        results.next()
        assert results.get_int(1) == 29
        first.close()
        second.close()

    def test_explicit_transaction_commit(self, server) -> None:
        remote = netclient.connect(*server.address, auto_commit=False)
        remote.create_statement().execute("DELETE FROM item WHERE i_id = 30")
        assert remote.in_transaction  # opened implicitly server-side
        remote.commit()
        assert not remote.in_transaction
        assert server.database.row_count("item") == 29
        remote.close()

    def test_rollback_undoes(self, server) -> None:
        remote = netclient.connect(*server.address, auto_commit=False)
        remote.create_statement().execute("DELETE FROM item WHERE i_id = 30")
        remote.rollback()
        assert server.database.row_count("item") == 30
        remote.close()

    def test_close_rolls_back_open_transaction(self, server) -> None:
        """The satellite contract: close() rolls back — never commits —
        on the remote driver exactly as on the embedded one."""
        remote = netclient.connect(*server.address, auto_commit=False)
        remote.create_statement().execute("DELETE FROM item WHERE i_id = 1")
        remote.close()
        # Deterministic: the rollback round-trips before close() returns.
        assert server.database.row_count("item") == 30
        with pytest.raises(SqlExecutionError):
            remote.commit()

    def test_context_manager_commits_on_clean_exit(self, server) -> None:
        with netclient.connect(*server.address, auto_commit=False) as remote:
            remote.create_statement().execute("DELETE FROM item WHERE i_id = 1")
            assert remote.in_transaction
        assert remote.closed
        assert server.database.row_count("item") == 29

    def test_context_manager_rolls_back_on_exception(self, server) -> None:
        with pytest.raises(RuntimeError, match="boom"):
            with netclient.connect(*server.address, auto_commit=False) as remote:
                remote.create_statement().execute("DELETE FROM item WHERE i_id = 1")
                raise RuntimeError("boom")
        assert server.database.row_count("item") == 30

    def test_enabling_auto_commit_commits_open_transaction(self, server) -> None:
        remote = netclient.connect(*server.address, auto_commit=False)
        remote.create_statement().execute("DELETE FROM item WHERE i_id = 1")
        remote.set_auto_commit(True)  # JDBC semantics: commits
        assert not remote.in_transaction
        assert server.database.row_count("item") == 29
        remote.close()


class TestResultStreaming:
    def test_batches_arrive_lazily(self, server) -> None:
        remote = RemoteDatabase(server.address, batch_rows=8).connect()
        results = remote.create_statement().execute("SELECT i_id FROM item")
        streamed = results._result
        assert streamed.fetched_rows == 8  # only the first batch so far
        seen = 0
        while results.next():
            seen += 1
        assert seen == 30
        assert streamed.fetched_rows == 30
        remote.close()

    def test_fetchmany_arraysize_and_iter(self, server) -> None:
        remote = RemoteDatabase(server.address, batch_rows=8).connect()
        results = remote.create_statement().execute("SELECT i_id FROM item")
        results.arraysize = 12
        first = results.fetchmany()
        assert [row[0] for row in first] == list(range(1, 13))
        rest = list(results)
        assert [row[0] for row in rest] == list(range(13, 31))
        assert results.fetchmany() == []
        remote.close()

    def test_fetchmany_round_trips_stay_flat(self, server) -> None:
        """fetchmany requests the whole batch with one availability probe:
        the wire cost is one FETCH per server batch, never one per row."""
        remote = RemoteDatabase(server.address, batch_rows=10).connect()
        results = remote.create_statement().execute("SELECT i_id FROM item")
        before = remote.wire_round_trips
        # The first 10 rows arrived with EXECUTE: zero extra round trips.
        assert len(results.fetchmany(10)) == 10
        assert remote.wire_round_trips == before
        # Each further batch of 10 costs exactly one FETCH round trip.
        assert len(results.fetchmany(10)) == 10
        assert remote.wire_round_trips == before + 1
        assert len(results.fetchmany(10)) == 10
        assert remote.wire_round_trips == before + 2
        assert results.fetchmany(10) == []
        remote.close()

    def test_abandoned_cursor_is_closed_with_the_session(self, server) -> None:
        """Session close frees server-side cursors the client never
        drained, so pooled connection reuse cannot pile them up."""
        with ConnectionPool(server.address, max_size=1) as pool:
            session = pool.session(batch_rows=5)
            result = session.execute("SELECT i_id FROM item")
            assert result.fetched_rows == 5 and session._open_cursors
            session.close()  # back to the pool without draining
            handler = next(iter(server._handlers))
            assert not handler._cursors
            # Draining to exhaustion also clears the tracking set.
            fresh = pool.session(batch_rows=5)
            assert len(fresh.execute("SELECT i_id FROM item").rows) == 30
            assert not fresh._open_cursors
            fresh.close()

    def test_row_count_and_rewind(self, server) -> None:
        remote = RemoteDatabase(server.address, batch_rows=8).connect()
        results = remote.create_statement().execute("SELECT i_id FROM item")
        assert results.row_count == 30  # drains the cursor
        assert len(results.fetch_all()) == 30
        results.before_first()
        assert results.next()
        assert results.get_int(1) == 1
        remote.close()


class TestOrmOverTheNetwork:
    """The EntityManager and the rewritten @query pipeline run unmodified
    against a RemoteDatabase."""

    @pytest.fixture()
    def bank_server(self):
        bank = make_bank_db()
        with SqlServer(database=bank.database) as running:
            yield bank, running

    def test_find_and_navigation(self, bank_server) -> None:
        bank, running = bank_server
        remote = RemoteDatabase(running.address)
        entity_manager = EntityManager(remote, bank.mapping, bank.entity_classes)
        client = entity_manager.find("Client", 1000)
        assert client is not None
        assert client.name == "Alice"
        accounts = client.accounts.to_list()
        assert {account.accountId for account in accounts} == {1, 2}
        entity_manager.close()

    def test_rewritten_query_pipeline(self, bank_server) -> None:
        from repro.orm import QuerySet
        from repro.pyfrontend import query

        bank, running = bank_server

        @query
        def canadians(em, country):
            result = QuerySet()
            for c in em.all("Client"):
                if c.country == country:
                    result.add(c.name)
            return result

        assert canadians.generated_sql(bank.mapping) is not None
        remote_em = EntityManager(
            RemoteDatabase(running.address), bank.mapping, bank.entity_classes
        )
        local_em = bank.begin_transaction()
        remote_names = sorted(canadians(remote_em, "Canada").to_list())
        local_names = sorted(canadians(local_em, "Canada").to_list())
        assert remote_names == local_names == ["Alice", "Carol"]
        remote_em.close()
        local_em.close()

    def test_persist_and_update_flush(self, bank_server) -> None:
        bank, running = bank_server
        remote = RemoteDatabase(running.address)
        entity_manager = EntityManager(remote, bank.mapping, bank.entity_classes)
        client_class = bank.entity_class("Client")
        fresh = client_class(
            clientId=9001, name="Remote", address="1 Wire Road",
            country="Canada", postalCode="Z9Z 9Z9",
        )
        entity_manager.persist(fresh)
        assert bank.database.execute(
            "SELECT Name FROM Client WHERE ClientID = 9001"
        ).rows == [("Remote",)]
        fresh.name = "Renamed"
        entity_manager.commit()  # transactional write-back over the wire
        assert bank.database.execute(
            "SELECT Name FROM Client WHERE ClientID = 9001"
        ).rows == [("Renamed",)]
        entity_manager.close()


class TestConnectionPool:
    def test_min_size_preopens(self, server) -> None:
        with ConnectionPool(server.address, min_size=3, max_size=4) as pool:
            assert pool.stats()["size"] == 3
            assert server.stats.snapshot()["connections_accepted"] == 3

    def test_max_size_and_checkout_timeout(self, server) -> None:
        with ConnectionPool(
            server.address, max_size=1, checkout_timeout=0.2
        ) as pool:
            held = pool.acquire()
            started = time.monotonic()
            with pytest.raises(PoolTimeoutError, match="max_size=1"):
                pool.acquire()
            assert time.monotonic() - started >= 0.2
            pool.release(held)
            # A released connection satisfies the next checkout instantly.
            again = pool.acquire()
            pool.release(again)
            assert pool.stats()["checkout_timeouts"] == 1

    def test_release_rolls_back_abandoned_transaction(self, server) -> None:
        with ConnectionPool(server.address, max_size=1) as pool:
            session = pool.session(autocommit=False)
            session.execute("DELETE FROM item WHERE i_id = 1")
            assert session.in_transaction
            session.close()  # return to pool: must roll back, not commit
            assert server.database.row_count("item") == 30
            # The same wire connection comes back clean.
            fresh = pool.session()
            assert not fresh.in_transaction
            assert fresh.autocommit
            fresh.close()
            assert pool.stats()["size"] == 1  # reused, not discarded

    def test_liveness_check_replaces_dead_connections(self) -> None:
        database = make_database()
        server = SqlServer(database=database).start()
        port = server.port
        pool = ConnectionPool(
            ("127.0.0.1", port), min_size=1, max_size=2,
            liveness_check_after=0.0, checkout_timeout=2.0,
        )
        with pool.connection() as remote:
            remote.create_statement().execute("SELECT COUNT(*) FROM item")
        server.kill()
        replacement = SqlServer(database=database, port=port).start()
        try:
            # The pooled socket is dead; checkout must detect and replace it.
            with pool.connection() as remote:
                results = remote.create_statement().execute(
                    "SELECT COUNT(*) FROM item"
                )
                results.next()
                assert results.get_int(1) == 30
            assert pool.liveness_failures >= 1
        finally:
            pool.close()
            replacement.shutdown()

    def test_closed_pool_refuses_checkout(self, server) -> None:
        pool = ConnectionPool(server.address, max_size=2)
        pool.close()
        with pytest.raises(SqlExecutionError, match="closed"):
            pool.acquire()

    def test_pool_round_trip_accounting(self, server) -> None:
        with ConnectionPool(server.address, max_size=2) as pool:
            with pool.connection() as remote:
                remote.create_statement().execute("SELECT COUNT(*) FROM item")
            stats = pool.stats()
            assert stats["round_trips"] >= 2  # HELLO + EXECUTE
            assert stats["bytes_sent"] > 0 and stats["bytes_received"] > 0
