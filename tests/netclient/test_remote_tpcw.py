"""The TPC-W suite, unchanged, pointed at a remote server.

The query-equivalence and generated-SQL test classes are imported verbatim
from ``tests/tpcw/test_tpcw.py`` and re-collected here with the ``tpcw_db``
fixture overridden to the network-backed handle — the ORM, the rewritten
``@query`` pipeline and the hand-written JDBC-style queries all cross the
wire, and every assertion must hold exactly as in-process.

On top of the reused suite, the transactional write mix runs through the
remote ``ConcurrentDriver`` mode (pooled network connections against a
spawned server) and must preserve the stock-sum invariant.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

from repro.tpcw.workload import ConcurrentDriver

_SUITE_PATH = Path(__file__).resolve().parent.parent / "tpcw" / "test_tpcw.py"
_spec = importlib.util.spec_from_file_location("tpcw_suite_for_remote", _SUITE_PATH)
_suite = importlib.util.module_from_spec(_spec)
assert _spec.loader is not None
_spec.loader.exec_module(_suite)


@pytest.fixture()
def tpcw_db(remote_tpcw):
    """Shadow the in-process fixture with the network-backed handle."""
    return remote_tpcw


class TestRemoteQueryEquivalence(_suite.TestQueryEquivalence):
    """tests/tpcw TestQueryEquivalence, executed over the network."""


class TestRemoteGeneratedSql(_suite.TestGeneratedSqlTable5):
    """tests/tpcw TestGeneratedSqlTable5, executed over the network."""


class TestRemoteSchemaAndPopulation(_suite.TestSchemaAndPopulation):
    """tests/tpcw TestSchemaAndPopulation against the remote handle."""


class TestRemoteConcurrentDriver:
    def test_read_throughput_over_pooled_connections(self, remote_tpcw) -> None:
        result = ConcurrentDriver(
            remote_tpcw.local,
            variant="handwritten",
            threads=4,
            interactions_per_thread=25,
            remote=True,
        ).run()
        assert result.mode == "remote"
        assert result.interactions == 100
        assert result.wire_round_trips >= result.interactions
        assert result.statements >= result.interactions

    def test_queryll_variant_over_the_network(self, remote_tpcw) -> None:
        result = ConcurrentDriver(
            remote_tpcw.local,
            variant="queryll",
            threads=2,
            interactions_per_thread=15,
            remote=True,
        ).run()
        assert result.interactions == 30

    def test_write_mix_conserves_stock_over_the_network(self, remote_tpcw) -> None:
        engine = remote_tpcw.database
        before = sum(
            row[0] for row in engine.execute("SELECT i_stock FROM item").rows
        )
        result = ConcurrentDriver(
            remote_tpcw.local,
            variant="handwritten",
            threads=4,
            interactions_per_thread=50,
            write_fraction=0.3,
            remote=True,
        ).run()
        after = sum(
            row[0] for row in engine.execute("SELECT i_stock FROM item").rows
        )
        assert after == before
        assert result.writes > 0

    def test_external_address_mode_reports_remote_statement_counts(
        self, remote_tpcw
    ) -> None:
        """Pointing the driver at an already-running server (address=)
        takes the statements delta from the server, not the idle local
        engine object."""
        from repro.server import SqlServer

        server = SqlServer(
            database=remote_tpcw.database, max_connections=32
        ).start()
        try:
            result = ConcurrentDriver(
                remote_tpcw.local,
                variant="handwritten",
                threads=2,
                interactions_per_thread=10,
                address=server.address,
            ).run()
            assert result.mode == "remote"
            assert result.statements >= result.interactions
        finally:
            server.shutdown()

    def test_server_stats_reflect_the_run(self, remote_tpcw) -> None:
        stats_before = remote_tpcw.server_stats()["server"]["statements"]
        connection = remote_tpcw.connection()
        connection.create_statement().execute("SELECT COUNT(*) FROM item")
        connection.close()
        stats_after = remote_tpcw.server_stats()["server"]["statements"]
        assert stats_after == stats_before + 1
