"""Tests for the TPC-W workload: schema, population, query equivalence and
the benchmark harness (Tables 3-5 of the paper)."""

from __future__ import annotations

import pytest

from repro.tpcw import BenchmarkConfig, TpcwBenchmark
from repro.tpcw import queries_queryll, queries_sql
from repro.tpcw.population import PopulationScale, customer_uname
from repro.tpcw.schema import TPCW_SUBJECTS, tpcw_mapping
from repro.tpcw.workload import ParameterGenerator


class TestSchemaAndPopulation:
    def test_mapping_validates(self) -> None:
        tpcw_mapping().validate()

    def test_population_counts_follow_scale(self, tpcw_db) -> None:
        scale = tpcw_db.scale
        assert tpcw_db.summary.items == scale.num_items
        assert tpcw_db.summary.customers == scale.num_customers
        assert tpcw_db.summary.countries == 92
        assert tpcw_db.database.row_count("item") == scale.num_items

    def test_paper_scale_parameters(self) -> None:
        paper = PopulationScale.paper()
        assert paper.num_items == 10_000
        assert paper.num_ebs == 100
        assert paper.num_customers == 288_000

    def test_population_is_deterministic(self, tpcw_db) -> None:
        from repro.tpcw.database import build_database

        other = build_database(PopulationScale.tiny())
        rows_a = tpcw_db.database.execute("SELECT i_title FROM item WHERE i_id = 10").rows
        rows_b = other.database.execute("SELECT i_title FROM item WHERE i_id = 10").rows
        assert rows_a == rows_b

    def test_related_items_are_distinct_and_valid(self, tpcw_db) -> None:
        rows = tpcw_db.database.execute(
            "SELECT i_id, i_related1, i_related2, i_related3, i_related4, i_related5 FROM item"
        ).rows
        for row in rows:
            item_id, *related = row
            assert item_id not in related
            assert len(set(related)) == 5
            assert all(1 <= value <= tpcw_db.scale.num_items for value in related)

    def test_parameter_generator_draws_valid_values(self, tpcw_db) -> None:
        generator = ParameterGenerator(tpcw_db.scale)
        for _ in range(20):
            assert 1 <= generator.customer_id() <= tpcw_db.scale.num_customers
            assert generator.subject() in TPCW_SUBJECTS
            assert 1 <= generator.item_id() <= tpcw_db.scale.num_items
        assert generator.customer_username().startswith("user")

    def test_parameter_generator_reset_repeats_sequence(self, tpcw_db) -> None:
        generator = ParameterGenerator(tpcw_db.scale)
        first = [generator.customer_id() for _ in range(5)]
        generator.reset()
        assert [generator.customer_id() for _ in range(5)] == first


class TestQueryEquivalence:
    """The Queryll loop versions must return exactly what the hand-written
    SQL returns — the paper's premise that rewriting preserves semantics."""

    def test_get_name(self, tpcw_db) -> None:
        em = tpcw_db.entity_manager()
        connection = tpcw_db.connection()
        for customer_id in (1, 7, tpcw_db.scale.num_customers):
            assert queries_queryll.get_name(em, customer_id) == queries_sql.get_name(
                connection, customer_id
            )

    def test_get_name_missing_customer(self, tpcw_db) -> None:
        with pytest.raises(LookupError):
            queries_queryll.get_name(tpcw_db.entity_manager(), 10**9)
        with pytest.raises(LookupError):
            queries_sql.get_name(tpcw_db.connection(), 10**9)

    def test_get_customer(self, tpcw_db) -> None:
        em = tpcw_db.entity_manager()
        connection = tpcw_db.connection()
        for customer_id in (2, 11, 25):
            username = customer_uname(customer_id)
            assert queries_queryll.get_customer(em, username) == queries_sql.get_customer(
                connection, username
            )

    def test_get_name_extra_processing_variant_matches(self, tpcw_db) -> None:
        connection = tpcw_db.connection()
        assert queries_sql.get_name_with_extra_processing(connection, 3) == queries_sql.get_name(
            connection, 3
        )

    def test_do_subject_search(self, tpcw_db) -> None:
        em = tpcw_db.entity_manager()
        connection = tpcw_db.connection()
        for subject in ("ARTS", "HISTORY", "TRAVEL"):
            queryll_rows = queries_queryll.do_subject_search(em, subject)
            sql_rows = queries_sql.do_subject_search(connection, subject)
            assert queryll_rows == sql_rows
            assert len(sql_rows) <= 50
            titles = [row[1] for row in sql_rows]
            assert titles == sorted(titles)

    def test_do_subject_search_modified_variant_matches(self, tpcw_db) -> None:
        connection = tpcw_db.connection()
        assert queries_sql.do_subject_search_modified(
            connection, "ARTS"
        ) == queries_sql.do_subject_search(connection, "ARTS")

    def test_do_get_related(self, tpcw_db) -> None:
        em = tpcw_db.entity_manager()
        connection = tpcw_db.connection()
        for item_id in (1, 9, 33):
            queryll_rows = sorted(queries_queryll.do_get_related(em, item_id))
            sql_rows = sorted(queries_sql.do_get_related(connection, item_id))
            assert queryll_rows == sql_rows
            assert len(sql_rows) == 5

    def test_every_query_is_rewritten_not_fallback(self, tpcw_db) -> None:
        mapping = tpcw_db.orm.mapping
        for name, function in queries_queryll.QUERY_FUNCTIONS.items():
            assert function.generated_sql(mapping) is not None, name


class TestGeneratedSqlTable5:
    def test_get_name_sql_shape(self, tpcw_db) -> None:
        sql = queries_queryll.get_name_loop.generated_sql(tpcw_db.orm.mapping)
        assert "FROM customer AS A" in sql
        assert "(A.C_ID) = ?" in sql

    def test_get_customer_sql_has_three_tables(self, tpcw_db) -> None:
        sql = queries_queryll.get_customer_loop.generated_sql(tpcw_db.orm.mapping)
        assert "FROM customer AS A, address AS B, country AS C" in sql
        assert "A.C_ADDR_ID = B.ADDR_ID" in sql
        assert "B.ADDR_CO_ID = C.CO_ID" in sql

    def test_do_subject_search_sql_joins_author(self, tpcw_db) -> None:
        sql = queries_queryll.do_subject_search_loop.generated_sql(tpcw_db.orm.mapping)
        assert "FROM item AS A, author AS B" in sql
        assert "A.I_A_ID = B.A_ID" in sql

    def test_do_get_related_sql_is_five_way_self_join(self, tpcw_db) -> None:
        """The paper: Queryll "joins the Item table to itself five times"."""
        sql = queries_queryll.do_get_related_loop.generated_sql(tpcw_db.orm.mapping)
        assert sql.count("item AS") == 6
        for position, letter in enumerate("BCDEF", start=1):
            assert f"A.I_RELATED{position} = {letter}.I_ID" in sql


class TestHarness:
    def test_quick_benchmark_produces_all_rows(self) -> None:
        config = BenchmarkConfig(
            scale=PopulationScale.tiny(),
            warmup_executions=1,
            measured_executions=3,
            runs=1,
            discard_runs=0,
        )
        benchmark = TpcwBenchmark(config)
        results = benchmark.run_table4()
        assert [result.query for result in results] == [
            "getName", "getCustomer", "doSubjectSearch", "doGetRelated",
        ]
        for result in results:
            assert result.queryll.mean_ms > 0
            assert result.handwritten.mean_ms > 0
        table = benchmark.format_table4(results)
        assert "getName" in table and "with modified query" in table
        table5 = benchmark.format_table5()
        assert "generated" in table5 and "hand-written" in table5

    def test_config_from_environment_defaults_to_quick(self, monkeypatch) -> None:
        monkeypatch.delenv("REPRO_TPCW_PROFILE", raising=False)
        assert BenchmarkConfig.from_environment().measured_executions == 30
        monkeypatch.setenv("REPRO_TPCW_PROFILE", "paper")
        assert BenchmarkConfig.from_environment().scale.num_items == 10_000
