"""The concurrent emulated-browser driver: throughput and consistency.

Acceptance: a TPC-W run with >= 4 concurrent driver threads completes with
consistent results and reports interactions/sec.
"""

from __future__ import annotations

import pytest

from repro.tpcw import (
    BenchmarkConfig,
    ConcurrentDriver,
    PopulationScale,
    TpcwBenchmark,
    build_database,
)


def total_stock(database) -> int:
    return sum(row[0] for row in database.execute("SELECT i_stock FROM item").rows)


@pytest.fixture()
def small_db():
    return build_database(PopulationScale.tiny())


class TestConcurrentDriver:
    def test_read_only_run_reports_throughput(self, tpcw_db) -> None:
        driver = ConcurrentDriver(
            tpcw_db, variant="handwritten", threads=4, interactions_per_thread=25
        )
        result = driver.run()
        assert result.threads == 4
        assert result.interactions == 100
        assert result.per_thread == [25, 25, 25, 25]
        assert result.interactions_per_sec > 0
        assert result.writes == 0

    def test_queryll_variant_runs_concurrently(self, tpcw_db) -> None:
        result = ConcurrentDriver(
            tpcw_db, variant="queryll", threads=4, interactions_per_thread=15
        ).run()
        assert result.interactions == 60
        assert result.interactions_per_sec > 0

    def test_write_mix_preserves_total_stock(self, small_db) -> None:
        before = total_stock(small_db.database)
        result = ConcurrentDriver(
            small_db,
            variant="handwritten",
            threads=4,
            interactions_per_thread=40,
            write_fraction=0.5,
        ).run()
        assert result.interactions == 160
        assert result.writes > 0
        # Every transfer either committed atomically or rolled back, so the
        # stock total is invariant under any interleaving.
        assert total_stock(small_db.database) == before

    def test_deterministic_parameters_per_thread(self, small_db) -> None:
        first = ConcurrentDriver(
            small_db, variant="handwritten", threads=2, interactions_per_thread=10
        ).run()
        second = ConcurrentDriver(
            small_db, variant="handwritten", threads=2, interactions_per_thread=10
        ).run()
        assert first.per_thread == second.per_thread == [10, 10]

    def test_unknown_variant_rejected(self, small_db) -> None:
        with pytest.raises(ValueError):
            ConcurrentDriver(small_db, variant="nope")


class TestHarnessThroughput:
    def test_run_throughput_covers_both_variants(self, tpcw_db) -> None:
        benchmark = TpcwBenchmark(
            config=BenchmarkConfig(
                scale=PopulationScale.tiny(),
                warmup_executions=0,
                measured_executions=40,
                runs=1,
                discard_runs=0,
            ),
            database=tpcw_db,
        )
        results = benchmark.run_throughput(threads=4)
        assert [result.variant for result in results] == ["queryll", "handwritten"]
        assert all(result.interactions == 40 for result in results)
        table = benchmark.format_throughput(results)
        assert "Interactions/s" in table
        assert "queryll" in table and "handwritten" in table
