"""Deterministic fault-injection harness for the replication tests.

Two pieces:

* :class:`FaultyLink` — a byte-level TCP proxy a replica's REPLICATE
  stream is routed through.  Faults are *scheduled*, not raced: cut the
  stream after exactly N forwarded bytes, delay every forwarded chunk, or
  sever on demand.  Because the cut point is a byte count, a test (or a
  Hypothesis property) can kill the stream at an arbitrary replication
  offset and still be perfectly reproducible.
* :class:`ReplicationCluster` — a durable primary plus N in-process
  replicas (each optionally behind its own FaultyLink), with helpers to
  build routed pools, wait for convergence, and crash or promote nodes.

Everything is in-process and bound to loopback; a cluster tears down with
the test.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Optional

from repro.netclient.pool import ReplicatedConnectionPool
from repro.replication.replica import ReplicaServer
from repro.server.server import SqlServer
from repro.sqlengine.durability import DurabilityOptions
from repro.sqlengine.engine import Database

#: Fast-but-honest durability for tests: replication correctness depends
#: on the record format and framing, not on fsync timing.
TEST_DURABILITY = DurabilityOptions(fsync="off", checkpoint_log_bytes=None)


class FaultyLink:
    """A TCP proxy with byte-exact fault scheduling.

    Forwards both directions between a replica and the primary.  The
    primary→replica direction (the WAL) counts forwarded bytes and honours
    ``cut_after_bytes``: once the budget is spent the connection is torn
    down mid-stream and — so a cut models a dead primary rather than a
    network blip — further connection attempts are refused until
    :meth:`heal`.
    """

    def __init__(self, upstream: tuple[str, int], delay: float = 0.0) -> None:
        self.upstream = (upstream[0], int(upstream[1]))
        #: Sleep injected before each forwarded downstream chunk.
        self.delay = delay
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.address = self._listener.getsockname()
        self._lock = threading.Lock()
        self._cut_after: Optional[int] = None
        self._refusing = False
        self._closed = False
        self._conns: list[socket.socket] = []
        #: Downstream (primary→replica) bytes actually forwarded.
        self.bytes_forwarded = 0
        self._thread = threading.Thread(
            target=self._accept_loop, name="faulty-link", daemon=True
        )
        self._thread.start()

    # -- fault scheduling ----------------------------------------------------

    def cut_after_bytes(self, budget: int) -> None:
        """Sever the stream after forwarding ``budget`` more downstream
        bytes, then refuse reconnects until :meth:`heal`."""
        with self._lock:
            self._cut_after = budget

    def sever(self) -> None:
        """Tear down the current connection immediately (network blip:
        reconnects are allowed and resume from the replica's watermark)."""
        self._close_conns()

    def refuse_new(self, refusing: bool = True) -> None:
        """Accept-and-drop new connections (a dead primary)."""
        with self._lock:
            self._refusing = refusing

    def heal(self) -> None:
        """Clear every scheduled fault; the next reconnect flows freely."""
        with self._lock:
            self._cut_after = None
            self._refusing = False

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        self._close_conns()

    def __enter__(self) -> "FaultyLink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- internals -----------------------------------------------------------

    def _close_conns(self) -> None:
        with self._lock:
            conns, self._conns = self._conns, []
        for sock in conns:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def _accept_loop(self) -> None:
        while True:
            try:
                downstream, _addr = self._listener.accept()
            except OSError:
                return
            with self._lock:
                if self._closed:
                    downstream.close()
                    return
                refusing = self._refusing
            if refusing:
                downstream.close()
                continue
            try:
                upstream = socket.create_connection(self.upstream, timeout=5.0)
            except OSError:
                downstream.close()
                continue
            pair = [downstream, upstream]
            with self._lock:
                self._conns.extend(pair)
            threading.Thread(
                target=self._pump,
                args=(downstream, upstream, False),
                daemon=True,
            ).start()
            threading.Thread(
                target=self._pump,
                args=(upstream, downstream, True),
                daemon=True,
            ).start()

    def _pump(self, source: socket.socket, sink: socket.socket, counted: bool) -> None:
        """Forward ``source`` → ``sink``; the counted (downstream)
        direction enforces the byte budget."""
        try:
            while True:
                data = source.recv(1 << 14)
                if not data:
                    break
                if counted:
                    if self.delay:
                        time.sleep(self.delay)
                    with self._lock:
                        if self._cut_after is not None:
                            if self._cut_after <= 0:
                                break
                            if len(data) > self._cut_after:
                                data = data[: self._cut_after]
                            self._cut_after -= len(data)
                            tripped = self._cut_after <= 0
                        else:
                            tripped = False
                        self.bytes_forwarded += len(data)
                    sink.sendall(data)
                    if tripped:
                        with self._lock:
                            self._refusing = True
                        break
                else:
                    sink.sendall(data)
        except OSError:
            pass
        for sock in (source, sink):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


class ReplicationCluster:
    """A primary and N replicas wired for fault injection.

    ``faulty=True`` routes every replica's stream through its own
    :class:`FaultyLink` (``cluster.links[i]``); otherwise replicas connect
    to the primary directly.  The cluster owns a temporary durable data
    directory supplied by the caller.
    """

    def __init__(
        self,
        data_dir: str,
        replicas: int = 2,
        *,
        faulty: bool = False,
        delay: float = 0.0,
        durability: DurabilityOptions = TEST_DURABILITY,
        reconnect_delay: float = 0.02,
        database: Optional[Database] = None,
        chunk_bytes: Optional[int] = None,
    ) -> None:
        self.database = database or Database(data_dir=data_dir, durability=durability)
        self.primary = SqlServer(
            database=self.database,
            host="127.0.0.1",
            port=0,
            max_connections=128,
            replication_chunk_bytes=chunk_bytes,
        ).start()
        self.links: list[Optional[FaultyLink]] = []
        self.replicas: list[ReplicaServer] = []
        for index in range(replicas):
            link = (
                FaultyLink(self.primary.address, delay=delay) if faulty else None
            )
            self.links.append(link)
            target = link.address if link is not None else self.primary.address
            self.replicas.append(
                ReplicaServer(
                    target,
                    name=f"r{index}",
                    reconnect_delay=reconnect_delay,
                ).start()
            )
        self._pools: list[ReplicatedConnectionPool] = []

    # -- convenience ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        return self.primary.address

    @property
    def replica_addresses(self) -> list[tuple[str, int]]:
        return [replica.address for replica in self.replicas]

    def pool(self, **options) -> ReplicatedConnectionPool:
        """A routed pool over this cluster (closed with the cluster)."""
        pool = ReplicatedConnectionPool(
            self.primary.address, self.replica_addresses, **options
        )
        self._pools.append(pool)
        return pool

    def wal_position(self) -> tuple[int, int]:
        return self.database.wal_position()

    def wait_sync(self, timeout: float = 10.0) -> None:
        """Block until every replica has replayed the primary's full log."""
        target = self.database.wal_position()
        for replica in self.replicas:
            assert replica.wait_for(target, timeout), (
                f"{replica.name} stuck at {replica.watermark}, "
                f"primary at {target}"
            )

    # -- faults --------------------------------------------------------------

    def kill_primary(self) -> None:
        """Crash the primary (no drain, sockets dropped)."""
        self.primary.kill()

    def kill_replica(self, index: int) -> None:
        self.replicas[index].kill()

    def promote(self, index: int) -> ReplicaServer:
        """Promote one replica (drains its stream first) and return it."""
        replica = self.replicas[index]
        replica.promote()
        return replica

    # -- lifecycle -----------------------------------------------------------

    def stop(self) -> None:
        for pool in self._pools:
            pool.close()
        for replica in self.replicas:
            try:
                replica.kill()
            except OSError:  # pragma: no cover - teardown best effort
                pass
        for link in self.links:
            if link is not None:
                link.close()
        try:
            self.primary.kill()
        except OSError:  # pragma: no cover - teardown best effort
            pass
        self.database.close()

    def __enter__(self) -> "ReplicationCluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
