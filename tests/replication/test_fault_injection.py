"""Fault injection: the replication subsystem under crashes and cut links.

The committed-prefix property is the replication twin of crash recovery's:
wherever the stream is cut — a byte offset chosen by Hypothesis, a crashed
primary mid-commit, a severed socket — a promoted replica serves exactly a
committed prefix of the primary's history: committed transactions fully
visible, uncommitted ones fully absent, nothing torn.  The TPC-W
stock-sum invariant extends that to the concurrent write mix across a
failover.
"""

from __future__ import annotations

import os
import threading
import time

from hypothesis import given, settings, strategies as st

from repro.netclient.client import RemoteDatabase
from repro.replication.replica import ReplicaServer
from repro.server.server import SqlServer
from repro.sqlengine.durability.recovery import list_wal_epochs, wal_path
from repro.sqlengine.engine import Database
from repro.tpcw.database import build_database
from repro.tpcw.population import PopulationScale
from repro.tpcw.workload import ConcurrentDriver

from tests.replication.harness import (
    TEST_DURABILITY,
    FaultyLink,
    ReplicationCluster,
)


def _rows(address, sql):
    with RemoteDatabase(address).session() as session:
        return session.execute(sql).rows


def _await(predicate, timeout: float = 10.0, tick: float = 0.02) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(tick)
    return predicate()


# -- kill at an arbitrary replication offset ---------------------------------

_TXNS = st.lists(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "update", "delete"]),
            st.integers(min_value=0, max_value=11),
        ),
        min_size=1,
        max_size=4,
    ),
    min_size=1,
    max_size=6,
)


class TestKillAtArbitraryReplicationOffset:
    @settings(max_examples=12, deadline=None)
    @given(txns=_TXNS, cut_fraction=st.floats(min_value=0.0, max_value=1.2))
    def test_promoted_replica_serves_a_committed_prefix(
        self, tmp_path_factory, txns, cut_fraction
    ) -> None:
        base = str(tmp_path_factory.mktemp("repl-kill"))
        data_dir = os.path.join(base, "db")
        database = Database(data_dir=data_dir, durability=TEST_DURABILITY)
        server = SqlServer(
            database=database, host="127.0.0.1", port=0,
            replication_chunk_bytes=64,  # many small chunks: cuts land between them
        ).start()
        link = None
        replica = None
        try:
            database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
            (epoch,) = list_wal_epochs(data_dir)
            log = wal_path(data_dir, epoch)

            # Mirror committed state in a model, keyed by log size — the
            # same bookkeeping the crash-recovery property uses.
            model: dict[int, int] = {}
            prefixes: list[tuple[int, dict[int, int]]] = [
                (os.path.getsize(log), dict(model))
            ]
            counter = 0
            for ops in txns:
                session = database.session(autocommit=False)
                candidate = dict(model)
                for action, key in ops:
                    if action == "insert" and key not in candidate:
                        counter += 1
                        session.execute(
                            "INSERT INTO t (id, v) VALUES (?, ?)", (key, counter)
                        )
                        candidate[key] = counter
                    elif action == "update" and key in candidate:
                        counter += 1
                        session.execute(
                            "UPDATE t SET v = ? WHERE id = ?", (counter, key)
                        )
                        candidate[key] = counter
                    elif action == "delete" and key in candidate:
                        session.execute("DELETE FROM t WHERE id = ?", (key,))
                        del candidate[key]
                session.commit()
                model = candidate
                prefixes.append((os.path.getsize(log), dict(model)))

            # Cut the stream at an arbitrary byte offset.  The proxied
            # stream carries the WAL plus per-chunk protocol overhead, so
            # a fraction > 1 covers the no-cut case too.
            total = os.path.getsize(log)
            cut = int(round(cut_fraction * (total + 512)))
            link = FaultyLink(server.address)
            link.cut_after_bytes(cut)
            replica = ReplicaServer(
                link.address, name="victim", reconnect=False
            ).start()

            # The stream either delivers everything or dies at the cut.
            target = database.wal_position()
            _await(
                lambda: replica.watermark >= target
                or not replica._thread.is_alive()
            )
            replica.promote()

            try:
                got = dict(_rows(replica.address, "SELECT id, v FROM t"))
            except Exception:
                # The CREATE TABLE itself did not make it across: the cut
                # fell inside the very first chunk.
                assert replica.watermark < (epoch, prefixes[0][0])
                return
            # Exactly a committed prefix: the replica's table matches one
            # of the recorded committed states...
            assert got in [state for _size, state in prefixes], (
                f"cut={cut}: {got!r} is not a committed prefix"
            )
            # ...and specifically the longest one at or below its
            # replayed watermark (single epoch, so offsets compare).
            watermark = replica.watermark
            if watermark >= (epoch, prefixes[0][0]):
                expected = max(
                    (entry for entry in prefixes if entry[0] <= watermark[1]),
                    key=lambda entry: entry[0],
                )[1]
                assert got == expected
        finally:
            if replica is not None:
                replica.kill()
            if link is not None:
                link.close()
            server.kill()
            database.close()


# -- scheduled crash scenarios -----------------------------------------------

class TestCrashSchedules:
    def test_kill_primary_mid_commit_stream(self, tmp_path) -> None:
        """Crash the primary while a writer is streaming commits; the
        promoted replica must hold a contiguous committed prefix."""
        with ReplicationCluster(
            str(tmp_path), replicas=2, chunk_bytes=64
        ) as cluster:
            with RemoteDatabase(cluster.address).session() as session:
                session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
            cluster.wait_sync()

            acked = []
            errors = []

            def writer():
                try:
                    with RemoteDatabase(cluster.address).session() as session:
                        for i in range(10_000):
                            session.execute(f"INSERT INTO t VALUES ({i})")
                            acked.append(i)
                except Exception as error:  # noqa: BLE001 - the kill
                    errors.append(error)

            thread = threading.Thread(target=writer)
            thread.start()
            _await(lambda: len(acked) >= 50, timeout=15.0)
            cluster.kill_primary()
            thread.join(10.0)
            assert errors, "the writer should have died with the primary"

            promoted = cluster.promote(0)
            ids = sorted(
                row[0] for row in _rows(promoted.address, "SELECT id FROM t")
            )
            # Contiguous prefix of the insert sequence, nothing torn.
            assert ids == list(range(len(ids)))
            # The drain keeps promotion from discarding frames that
            # arrived before the crash: the prefix reaches the watermark.
            assert promoted.applier.pending_transactions == 0

    def test_kill_replica_mid_replay_leaves_others_intact(self, tmp_path) -> None:
        with ReplicationCluster(
            str(tmp_path), replicas=2, chunk_bytes=64
        ) as cluster:
            with RemoteDatabase(cluster.address).session() as session:
                session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
                for i in range(100):
                    session.execute(f"INSERT INTO t VALUES ({i})")
                    if i == 20:
                        cluster.kill_replica(1)
            cluster.replicas = [cluster.replicas[0]]  # survivor only
            cluster.wait_sync()
            assert _rows(
                cluster.replicas[0].address, "SELECT COUNT(*) FROM t"
            ) == [(100,)]

    def test_severed_stream_reconnects_from_watermark(self, tmp_path) -> None:
        with ReplicationCluster(
            str(tmp_path), replicas=1, faulty=True, chunk_bytes=64
        ) as cluster:
            replica = cluster.replicas[0]
            with RemoteDatabase(cluster.address).session() as session:
                session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
                for i in range(50):
                    session.execute(f"INSERT INTO t VALUES ({i})")
            cluster.wait_sync()
            mark = replica.watermark
            cluster.links[0].sever()
            with RemoteDatabase(cluster.address).session() as session:
                for i in range(50, 100):
                    session.execute(f"INSERT INTO t VALUES ({i})")
            cluster.wait_sync(timeout=15.0)
            assert replica.watermark > mark
            assert replica.reconnects >= 1
            assert _rows(replica.address, "SELECT COUNT(*) FROM t") == [(100,)]

    def test_delayed_stream_still_converges(self, tmp_path) -> None:
        with ReplicationCluster(
            str(tmp_path), replicas=1, faulty=True, delay=0.01, chunk_bytes=256
        ) as cluster:
            with RemoteDatabase(cluster.address).session() as session:
                session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
                for i in range(30):
                    session.execute(f"INSERT INTO t VALUES ({i})")
            cluster.wait_sync(timeout=30.0)
            assert _rows(
                cluster.replicas[0].address, "SELECT COUNT(*) FROM t"
            ) == [(30,)]


# -- TPC-W stock-sum invariant across faults ---------------------------------

class TestTpcwStockSumUnderFaults:
    def test_stock_sum_holds_across_failover(self, tmp_path) -> None:
        """Concurrent stock transfers with a primary crash and promotion:
        the promoted node's total stock equals a committed state — every
        transfer is atomic on the replica exactly as on the primary."""
        scale = PopulationScale.tiny()
        tpcw = build_database(
            scale, data_dir=str(tmp_path / "db"), durability=TEST_DURABILITY
        )
        cluster = ReplicationCluster(
            str(tmp_path), replicas=2, chunk_bytes=512, database=tpcw.database
        )
        try:
            cluster.wait_sync(timeout=30.0)
            baseline = _rows(
                cluster.address, "SELECT SUM(i_stock) FROM item"
            )[0][0]

            driver = ConcurrentDriver(
                tpcw,
                threads=4,
                interactions_per_thread=30,
                write_fraction=0.5,
                address=cluster.address,
                replicas=cluster.replica_addresses,
                shared_workload=True,
            )
            stop = threading.Event()
            outcome = {}

            def run_driver():
                try:
                    outcome["result"] = driver.run()
                except Exception as error:  # noqa: BLE001 - the kill
                    outcome["error"] = error
                finally:
                    stop.set()

            thread = threading.Thread(target=run_driver)
            thread.start()
            time.sleep(0.4)  # let transfers get in flight
            cluster.kill_primary()
            stop.wait(30.0)
            thread.join(10.0)

            promoted = cluster.promote(0)
            total = _rows(
                promoted.address, "SELECT SUM(i_stock) FROM item"
            )[0][0]
            # Transfers move stock between items, so any committed prefix
            # preserves the total exactly.
            assert total == baseline
            counts = _rows(
                promoted.address, "SELECT COUNT(*) FROM item"
            )[0][0]
            assert counts == scale.num_items
        finally:
            cluster.stop()
            tpcw.close()
