"""WAL-shipping replication: streaming, replay, watermark and promotion.

These tests exercise the happy path of the replication subsystem — a
replica bootstraps from the primary's log, follows live commits, replays
DDL, survives checkpoint epoch rollover mid-stream, and reports its
progress — plus the server-side read-only contract on followers.
"""

from __future__ import annotations

import pytest

from repro.netclient.client import RemoteDatabase, WireClient
from repro.replication.replica import ReplicaServer
from repro.replication.tailer import WalTailer
from repro.server.server import SqlServer
from repro.sqlengine.durability import DurabilityOptions
from repro.sqlengine.engine import Database
from repro.sqlengine.errors import ReadOnlyError, ReplicationError, SqlExecutionError

from tests.replication.harness import TEST_DURABILITY, ReplicationCluster


def _rows(address, sql):
    with RemoteDatabase(address).session() as session:
        return session.execute(sql).rows


class TestStreaming:
    def test_bootstrap_from_existing_wal(self, tmp_path) -> None:
        with ReplicationCluster(str(tmp_path), replicas=1) as cluster:
            with RemoteDatabase(cluster.address).session() as session:
                session.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
                for i in range(50):
                    session.execute(f"INSERT INTO t VALUES ({i}, {i})")
            cluster.wait_sync()
            assert _rows(cluster.replicas[0].address, "SELECT COUNT(*) FROM t") == [
                (50,)
            ]

    def test_live_commits_and_ddl_stream_continuously(self, tmp_path) -> None:
        with ReplicationCluster(str(tmp_path), replicas=2) as cluster:
            with RemoteDatabase(cluster.address).session() as session:
                session.execute("CREATE TABLE a (id INT PRIMARY KEY, v INT)")
                session.execute("INSERT INTO a VALUES (1, 10)")
                cluster.wait_sync()
                # DDL after the replicas attached, then rows into the new
                # table: the applier must wire the table into MVCC live.
                session.execute("CREATE TABLE b (id INT PRIMARY KEY, w VARCHAR)")
                session.execute("INSERT INTO b VALUES (7, 'x')")
                session.execute("UPDATE a SET v = 11 WHERE id = 1")
                session.execute("DELETE FROM a WHERE id = 99")
            cluster.wait_sync()
            for replica in cluster.replicas:
                assert _rows(replica.address, "SELECT v FROM a") == [(11,)]
                assert _rows(replica.address, "SELECT w FROM b") == [("x",)]

    def test_aborted_transactions_never_surface(self, tmp_path) -> None:
        with ReplicationCluster(str(tmp_path), replicas=1) as cluster:
            with RemoteDatabase(cluster.address).session(autocommit=False) as s:
                s.execute("CREATE TABLE t (id INT PRIMARY KEY)")
                s.commit()
                s.execute("INSERT INTO t VALUES (1)")
                s.rollback()
                s.execute("INSERT INTO t VALUES (2)")
                s.commit()
            cluster.wait_sync()
            # The rolled-back insert never surfaces (the engine does not
            # even ship it: writes reach the log at commit time).
            assert _rows(cluster.replicas[0].address, "SELECT id FROM t") == [(2,)]

    def test_epoch_rollover_mid_stream(self, tmp_path) -> None:
        database = Database(
            data_dir=str(tmp_path / "db"),
            durability=DurabilityOptions(fsync="off", checkpoint_log_bytes=None),
        )
        with ReplicationCluster(
            str(tmp_path), replicas=1, database=database
        ) as cluster:
            with RemoteDatabase(cluster.address).session() as session:
                session.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
                for i in range(20):
                    session.execute(f"INSERT INTO t VALUES ({i}, {i})")
                cluster.wait_sync()
                # Checkpoint rotates the log to a new epoch file; the
                # stream must hop epochs without dropping frames.
                database.checkpoint()
                for i in range(20, 40):
                    session.execute(f"INSERT INTO t VALUES ({i}, {i})")
            cluster.wait_sync()
            replica = cluster.replicas[0]
            assert replica.watermark[0] >= 2  # past the rollover
            assert _rows(replica.address, "SELECT COUNT(*) FROM t") == [(40,)]

    def test_fresh_replica_bootstraps_snapshot_after_checkpoints(
        self, tmp_path
    ) -> None:
        """A replica attaching after several checkpoints pulls the
        primary's snapshot over the BOOTSTRAP stream, then tails the log —
        the case the log alone can no longer serve (the checkpoint
        truncated the history the replica would have replayed)."""
        import time

        database = Database(
            data_dir=str(tmp_path / "db"),
            durability=DurabilityOptions(fsync="off", checkpoint_log_bytes=None),
        )
        database.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        for round_number in range(3):
            for i in range(10):
                key = round_number * 10 + i
                database.execute(f"INSERT INTO t VALUES ({key}, {key})")
            database.checkpoint()  # rows now live in the snapshot, not the log
        server = SqlServer(database=database, host="127.0.0.1", port=0).start()
        try:
            replica = ReplicaServer(
                server.address, name="late", reconnect=False
            ).start()
            try:
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    if replica.snapshots_bootstrapped:
                        break
                    time.sleep(0.02)
                stats = replica.stats()
                assert stats["snapshots_bootstrapped"] == 1
                assert stats["snapshot_bytes_received"] > 0
                assert _rows(replica.address, "SELECT COUNT(*) FROM t") == [(30,)]
                # And the stream keeps tailing live commits past the snapshot.
                database.execute("INSERT INTO t VALUES (99, 99)")
                while time.monotonic() < deadline:
                    if _rows(replica.address, "SELECT COUNT(*) FROM t") == [(31,)]:
                        break
                    time.sleep(0.02)
                assert _rows(replica.address, "SELECT COUNT(*) FROM t") == [(31,)]
            finally:
                replica.kill()
        finally:
            server.kill()
            database.close()


class TestReadOnlyContract:
    def test_writes_rejected_and_reads_allowed(self, tmp_path) -> None:
        with ReplicationCluster(str(tmp_path), replicas=1) as cluster:
            with RemoteDatabase(cluster.address).session() as session:
                session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
                session.execute("INSERT INTO t VALUES (1)")
            cluster.wait_sync()
            replica = cluster.replicas[0]
            with RemoteDatabase(replica.address).session() as session:
                assert session.execute("SELECT id FROM t").rows == [(1,)]
                with pytest.raises(ReadOnlyError):
                    session.execute("INSERT INTO t VALUES (2)")
                with pytest.raises(SqlExecutionError):
                    session.checkpoint()

    def test_promotion_clears_read_only(self, tmp_path) -> None:
        with ReplicationCluster(str(tmp_path), replicas=1) as cluster:
            with RemoteDatabase(cluster.address).session() as session:
                session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
            cluster.wait_sync()
            cluster.kill_primary()
            promoted = cluster.promote(0)
            assert promoted.role == "primary"
            with RemoteDatabase(promoted.address).session() as session:
                session.execute("INSERT INTO t VALUES (1)")
                assert session.execute("SELECT COUNT(*) FROM t").rows == [(1,)]


class TestPromotedDurability:
    def test_promoted_replica_survives_its_own_crash(self, tmp_path) -> None:
        """PROMOTE with a data_dir makes the new primary durable: commits
        accepted after promotion (and the replicated prefix before it) are
        recovered when the promoted node itself crashes and reopens."""
        promoted_dir = str(tmp_path / "promoted")
        with ReplicationCluster(str(tmp_path), replicas=1) as cluster:
            with RemoteDatabase(cluster.address).session() as session:
                session.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
                for i in range(10):
                    session.execute(f"INSERT INTO t VALUES ({i}, {i})")
            cluster.wait_sync()
            cluster.kill_primary()
            replica = cluster.replicas[0]
            client = WireClient(*replica.address)
            try:
                client.promote(data_dir=promoted_dir)
            finally:
                client.close()
            assert replica.role == "primary"
            with RemoteDatabase(replica.address).session() as session:
                for i in range(10, 20):
                    session.execute(f"INSERT INTO t VALUES ({i}, {i})")
            cluster.kill_replica(0)  # hard stop: no drain, no checkpoint
        reopened = Database(data_dir=promoted_dir)
        try:
            rows = reopened.execute("SELECT id FROM t ORDER BY id").rows
            assert rows == [(i,) for i in range(20)]
        finally:
            reopened.close()


class TestWatermarkProtocol:
    def test_wal_position_and_wait_lsn(self, tmp_path) -> None:
        with ReplicationCluster(str(tmp_path), replicas=1) as cluster:
            with RemoteDatabase(cluster.address).session() as session:
                session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
                session.execute("INSERT INTO t VALUES (1)")
            primary_pos = cluster.wal_position()
            client = WireClient(*cluster.replicas[0].address)
            try:
                reached = client.wait_lsn(primary_pos, timeout=10.0)
                assert reached >= primary_pos
                assert client.wal_position() >= primary_pos
            finally:
                client.close()

    def test_wait_lsn_times_out_on_stalled_replica(self, tmp_path) -> None:
        with ReplicationCluster(str(tmp_path), replicas=1, faulty=True) as cluster:
            with RemoteDatabase(cluster.address).session() as session:
                session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
            cluster.wait_sync()
            cluster.links[0].refuse_new(True)
            cluster.links[0].sever()  # stream down; watermark frozen
            with RemoteDatabase(cluster.address).session() as session:
                session.execute("INSERT INTO t VALUES (1)")
            primary_pos = cluster.wal_position()
            client = WireClient(*cluster.replicas[0].address)
            try:
                with pytest.raises(SqlExecutionError, match="WAIT_LSN timed out"):
                    client.wait_lsn(primary_pos, timeout=0.2)
            finally:
                client.close()

    def test_replication_stats_exposed(self, tmp_path) -> None:
        with ReplicationCluster(str(tmp_path), replicas=1) as cluster:
            with RemoteDatabase(cluster.address).session() as session:
                session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
                session.execute("INSERT INTO t VALUES (1)")
            cluster.wait_sync()
            primary_stats = RemoteDatabase(cluster.address).server_stats()
            assert primary_stats["replication"]["role"] == "primary"
            assert primary_stats["replication"]["wal_chunks_shipped"] >= 1
            replica_stats = RemoteDatabase(
                cluster.replicas[0].address
            ).server_stats()
            section = replica_stats["replication"]
            assert section["role"] == "replica"
            assert section["transactions_applied"] >= 1
            assert tuple(section["watermark"]) == cluster.replicas[0].watermark


class TestTailer:
    def test_tailer_rejects_checkpointed_epoch(self, tmp_path) -> None:
        database = Database(
            data_dir=str(tmp_path / "db"),
            durability=DurabilityOptions(fsync="off", checkpoint_log_bytes=None),
        )
        try:
            database.execute("CREATE TABLE t (id INT PRIMARY KEY)")
            database.checkpoint()  # epoch 1 deleted, epoch 2 live
            tailer = WalTailer(str(tmp_path / "db"), epoch=1, offset=0)
            with pytest.raises(ReplicationError):
                tailer.next_chunk()
        finally:
            database.close()

    def test_tailer_streams_across_rotation(self, tmp_path) -> None:
        data_dir = str(tmp_path / "db")
        database = Database(
            data_dir=data_dir,
            durability=DurabilityOptions(fsync="off", checkpoint_log_bytes=None),
        )
        try:
            database.execute("CREATE TABLE t (id INT PRIMARY KEY)")
            database.execute("INSERT INTO t VALUES (1)")
            tailer = WalTailer(data_dir)
            shipped = []
            while True:
                chunk = tailer.next_chunk()
                if chunk is None:
                    break
                shipped.append(chunk)
            assert shipped and shipped[-1][0] == 1
            database.checkpoint()
            database.execute("INSERT INTO t VALUES (2)")
            while True:
                chunk = tailer.next_chunk()
                if chunk is None:
                    break
                shipped.append(chunk)
            assert shipped[-1][0] == 2  # hopped to the post-rotation epoch
        finally:
            database.close()
