"""End-to-end integration tests: both frontends, one database, same answers.

These tests exercise the complete Fig. 9 pipeline in one go: a query written
in MiniJava and the same query written in Python are compiled, rewritten,
executed against the same database, and compared with each other and with the
un-rewritten (full scan) execution.
"""

from __future__ import annotations

import pytest

from repro.jvm import BytecodeRewriter, ClassFile, Interpreter
from repro.jvm.runtime import standard_runtime
from repro.minijava import compile_source
from repro.orm import QuerySet
from repro.pyfrontend import query

MINIJAVA_SOURCE = """
class Queries {
    @Query
    QuerySet<String> byCountry(EntityManager em, String country) {
        QuerySet<String> result = new QuerySet<String>();
        for (Client c : em.allClient()) {
            if (c.getCountry().equals(country))
                result.add(c.getName());
        }
        return result;
    }
}
"""


@query
def by_country_python(em, country):
    result = QuerySet()
    for c in em.all("Client"):
        if c.country == country:
            result.add(c.name)
    return result


class TestBothFrontendsAgree:
    @pytest.mark.parametrize("country", ["Canada", "Switzerland", "Atlantis"])
    def test_minijava_python_and_unrewritten_agree(self, bank_db, country) -> None:
        mapping = bank_db.mapping

        # MiniJava -> bytecode -> rewrite -> run on the mini-JVM.
        classfile = compile_source(MINIJAVA_SOURCE)
        rewriter = BytecodeRewriter(mapping)
        rewritten = rewriter.rewrite_classfile(classfile)
        assert rewritten.rewritten_method_names == ["byCountry"]
        interpreter = Interpreter(standard_runtime())
        jvm_result = interpreter.run_class_method(
            rewritten.classfile,
            "byCountry",
            {"em": bank_db.begin_transaction(), "country": country},
        )

        # Python @query frontend.
        python_result = by_country_python(bank_db.begin_transaction(), country)

        # Ground truth: the original loops, un-rewritten.
        slow_jvm = Interpreter(standard_runtime()).run_class_method(
            ClassFile.from_bytes(classfile.to_bytes()),
            "byCountry",
            {"em": bank_db.begin_transaction(), "country": country},
        )
        slow_python = by_country_python.original(bank_db.begin_transaction(), country)

        expected = sorted(slow_python.to_list())
        assert sorted(python_result.to_list()) == expected
        assert sorted(jvm_result.to_list()) == expected
        assert sorted(slow_jvm.to_list()) == expected

    def test_generated_sql_identical_across_frontends(self, bank_db) -> None:
        mapping = bank_db.mapping
        classfile = compile_source(MINIJAVA_SOURCE)
        rewriter = BytecodeRewriter(mapping)
        jvm_sql = rewriter.rewrite_classfile(classfile).generated_sql("byCountry")[0]
        python_sql = by_country_python.generated_sql(mapping)
        # Same selection and parameterisation; only the projected column
        # labels may differ between the two frontends.
        assert "FROM Client AS A" in jvm_sql and "FROM Client AS A" in python_sql
        assert "(A.COUNTRY) = ?" in jvm_sql and "(A.COUNTRY) = ?" in python_sql

    def test_rewritten_execution_touches_database_once(self, bank_db) -> None:
        em = bank_db.begin_transaction()
        before = bank_db.database.statements_executed
        by_country_python(em, "Canada").to_list()
        assert bank_db.database.statements_executed == before + 1

    def test_unrewritten_execution_scans_whole_table(self, bank_db) -> None:
        em = bank_db.begin_transaction()
        result = by_country_python.original(em, "Canada")
        # The full scan still produces the right answer — the paper's
        # "semantically correct without rewriting" property.
        assert sorted(result.to_list()) == ["Alice", "Carol"]
