"""End-to-end projection pruning: the paper's four TPC-W queries emit
narrow SELECT lists, results are unchanged, and partially loaded entities
complete lazily without poisoning the identity map."""

from __future__ import annotations

import re

import pytest

from repro.core.optimizer import OptimizerOptions
from repro.core.pipeline import QueryllPipeline
from repro.pyfrontend.decorator import query
from repro.pyfrontend.disassembler import lower_function
from repro.tpcw import queries_queryll
from repro.tpcw.database import build_database
from repro.tpcw.population import PopulationScale, customer_uname
from repro.tpcw.schema import tpcw_mapping


def _generated(function, optimize: bool = True):
    pipeline = QueryllPipeline(
        tpcw_mapping(), optimizer_options=OptimizerOptions(optimize=optimize)
    )
    method = lower_function(function.original)
    return pipeline.analyze_method(method).queries[0].generated


def _selected_columns(sql: str) -> set[str]:
    """``binding.COLUMN`` references in the SELECT list."""
    select_list = sql.split(" FROM ")[0]
    return set(re.findall(r"\(([A-Z]\d?\.[A-Z0-9_]+)\)", select_list))


class TestTpcwSelectListsAreNarrow:
    """Acceptance: generated SQL contains only columns consumed by
    outputs, predicates and ordering (plus pk/FK for entity identity)."""

    def test_get_name_selects_exactly_the_two_output_columns(self) -> None:
        generated = _generated(queries_queryll.get_name_loop)
        assert _selected_columns(generated.sql) == {"A.C_FNAME", "A.C_LNAME"}

    def test_get_customer_prunes_unconsumed_customer_columns(self) -> None:
        generated = _generated(queries_queryll.get_customer_loop)
        selected = _selected_columns(generated.sql)
        # Consumed: predicate (uname), identity keys and join FKs.
        assert selected == {
            "A.C_ID", "A.C_UNAME", "A.C_ADDR_ID",
            "B.ADDR_ID", "B.ADDR_CO_ID",
            "C.CO_ID",
        }
        # The wide, never-consumed columns of the unoptimized SQL are gone.
        for column in ("A.C_PHONE", "A.C_EMAIL", "A.C_DISCOUNT", "B.ADDR_ZIP",
                       "C.CO_EXCHANGE"):
            assert column not in selected

    def test_do_subject_search_prunes_item_and_author_width(self) -> None:
        generated = _generated(queries_queryll.do_subject_search_loop)
        selected = _selected_columns(generated.sql)
        assert "A.I_DESC" not in selected
        assert "A.I_IMAGE" not in selected
        assert "B.A_BIO" not in selected
        assert {"A.I_ID", "A.I_SUBJECT", "A.I_A_ID", "B.A_ID"} <= selected

    def test_do_get_related_prunes_five_way_self_join_width(self) -> None:
        generated = _generated(queries_queryll.do_get_related_loop)
        selected = _selected_columns(generated.sql)
        # 7 identity/FK columns per output item binding instead of all 23.
        for letter in "BCDEF":
            assert f"{letter}.I_ID" in selected
            assert f"{letter}.I_TITLE" not in selected
            assert f"{letter}.I_DESC" not in selected
        # The source binding A is only consumed by predicates/joins.
        assert not any(column.startswith("A.I_TITLE") for column in selected)

    def test_every_selected_column_is_in_the_required_sets(self) -> None:
        pipeline = QueryllPipeline(tpcw_mapping())
        for name, function in queries_queryll.QUERY_FUNCTIONS.items():
            report = pipeline.analyze_method(lower_function(function.original))
            rewritten = report.queries[0]
            required = rewritten.tree.required_columns
            assert required is not None, name
            for reference in _selected_columns(rewritten.generated.sql):
                alias, _, column = reference.partition(".")
                assert column.lower() in required[alias], (name, reference)

    def test_ablation_restores_full_width(self) -> None:
        optimized = _generated(queries_queryll.do_get_related_loop)
        unoptimized = _generated(queries_queryll.do_get_related_loop, optimize=False)
        assert len(unoptimized.select_items) > len(optimized.select_items)
        assert "B.I_TITLE" in _selected_columns(unoptimized.sql)


class TestOptimizedResultsUnchanged:
    @pytest.fixture(scope="class")
    def tpcw(self):
        return build_database(PopulationScale.tiny())

    def test_wrappers_agree_with_unoptimized_pipeline(self, tpcw) -> None:
        em = tpcw.entity_manager()

        @query(optimize=False)
        def get_customer_unoptimized(em, username):
            from repro.orm.pair import Pair
            from repro.orm.queryset import QuerySet
            result = QuerySet()
            for c in em.all('Customer'):
                if c.uname == username:
                    result.add(Pair(c, Pair(c.address, c.address.country)))
            return result

        username = customer_uname(3)
        optimized = queries_queryll.get_customer(em, username)
        unoptimized_pairs = get_customer_unoptimized(
            tpcw.entity_manager(), username
        ).to_list()
        assert len(unoptimized_pairs) == 1
        pair = unoptimized_pairs[0]
        assert optimized["c_uname"] == pair.getFirst().uname
        assert optimized["c_fname"] == pair.getFirst().firstName
        assert optimized["co_name"] == pair.getSecond().getSecond().name


class TestPartialEntityIdentityMapSafety:
    @pytest.fixture(scope="class")
    def tpcw(self):
        return build_database(PopulationScale.tiny())

    def test_partial_entity_lazily_completes(self, tpcw) -> None:
        em = tpcw.entity_manager()
        rows = queries_queryll.do_get_related_loop(em, 1).to_list()
        assert rows
        item = rows[0][0]
        assert item.is_partially_loaded
        before = em.queries_executed
        title = item.title  # not in the pruned SELECT -> one pk lookup
        assert isinstance(title, str) and title
        assert em.queries_executed == before + 1
        assert not item.is_partially_loaded
        # Further pruned-field reads are served from memory.
        assert item.thumbnail is not None
        assert em.queries_executed == before + 1

    def test_partial_entity_does_not_poison_find(self, tpcw) -> None:
        em = tpcw.entity_manager()
        partial = queries_queryll.do_get_related_loop(em, 2).to_list()[0][0]
        found = em.find("Item", partial.itemId)
        # Identity map: same instance, and the full row was merged in.
        assert found is partial
        assert found.title

    def test_full_entity_is_not_degraded_by_partial_row(self, tpcw) -> None:
        em = tpcw.entity_manager()
        # Load the full entity first ...
        related = em.find("Item", 1)._column_value("i_related1")
        full = em.find("Item", related)
        assert not full.is_partially_loaded
        queries_before = em.queries_executed
        # ... then materialise the same pk from a pruned row.
        rows = queries_queryll.do_get_related_loop(em, 1).to_list()
        assert any(item is full for item in rows[0] if item is not None)
        assert full.title  # still complete, no extra lookup for this read
        assert em.queries_executed == queries_before + 1  # just the query

    def test_merge_never_clobbers_dirty_fields(self, tpcw) -> None:
        em = tpcw.entity_manager()
        partial = queries_queryll.do_get_related_loop(em, 3).to_list()[0][1]
        partial.stock = 123456  # dirty, locally modified
        partial.title  # triggers lazy completion
        assert partial.stock == 123456  # merge did not overwrite the edit
        assert partial in em.dirty_entities
