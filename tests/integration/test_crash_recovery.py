"""Crash-recovery integration tests.

Three layers of assurance:

* a property-based test that kills the engine at *arbitrary* write-ahead-log
  byte offsets (torn final record included) and asserts the recovered state
  is exactly a committed prefix — committed transactions fully visible,
  uncommitted ones fully absent, indexes and statistics identical to a
  from-scratch rebuild of the same rows;
* concurrency × durability: concurrent writers with group commit preserve
  the TPC-W stock-sum invariant across a simulated crash + recovery, even
  when the log tail is torn mid-record;
* the populate-once / reopen-warm TPC-W round trip: hard-drop the process
  state without checkpointing, reopen, and every benchmark query returns
  identical results against the recovered database.
"""

from __future__ import annotations

import os
import shutil

import pytest
from hypothesis import given, settings, strategies as st

from repro.sqlengine.durability import DurabilityOptions
from repro.sqlengine.durability.recovery import list_wal_epochs, wal_path
from repro.sqlengine.engine import Database
from repro.tpcw import queries_queryll, queries_sql
from repro.tpcw.database import build_database
from repro.tpcw.population import PopulationScale
from repro.tpcw.workload import ConcurrentDriver

DURABILITY = DurabilityOptions(fsync="off")  # fast; crash-consistency is
# a property of the record format and replay, not of fsync timing.


def _clone_data_dir(source: str, destination: str, truncate_at: int | None = None) -> None:
    """Copy a database directory, optionally cutting the log at a byte
    offset — the moral equivalent of the OS losing the tail on a crash."""
    shutil.copytree(source, destination)
    if truncate_at is not None:
        (epoch,) = list_wal_epochs(destination)
        with open(wal_path(destination, epoch), "r+b") as handle:
            handle.truncate(truncate_at)


# -- arbitrary-offset kill property ------------------------------------------

_OPS = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "delete"]),
        st.integers(min_value=0, max_value=15),
    ),
    min_size=1,
    max_size=6,
)

_TXNS = st.lists(
    st.tuples(_OPS, st.sampled_from(["commit", "abort"])),
    min_size=1,
    max_size=8,
)


class TestKillAtArbitraryWalOffset:
    @settings(max_examples=25, deadline=None)
    @given(txns=_TXNS, cut_fraction=st.floats(min_value=0.0, max_value=1.0))
    def test_recovery_is_a_committed_prefix(
        self, tmp_path_factory, txns, cut_fraction
    ) -> None:
        base = str(tmp_path_factory.mktemp("wal-kill"))
        data_dir = os.path.join(base, "db")
        database = Database(data_dir=data_dir, durability=DURABILITY)
        database.execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR)"
        )
        database.execute("CREATE INDEX idx_t_v ON t (v)")
        (epoch,) = list_wal_epochs(data_dir)
        log = wal_path(data_dir, epoch)

        # Execute the generated transactions, mirroring committed state in
        # a python model and recording the log size after every commit.
        model: dict[int, str] = {}
        prefixes: list[tuple[int, dict[int, str]]] = [
            (os.path.getsize(log), dict(model))
        ]
        counter = 0
        for ops, outcome in txns:
            session = database.session(autocommit=False)
            candidate = dict(model)
            for action, key in ops:
                if action == "insert" and key not in candidate:
                    counter += 1
                    value = f"v{counter % 5}"
                    session.execute(
                        "INSERT INTO t (id, v) VALUES (?, ?)", (key, value)
                    )
                    candidate[key] = value
                elif action == "update" and key in candidate:
                    counter += 1
                    value = f"u{counter % 5}"
                    session.execute(
                        "UPDATE t SET v = ? WHERE id = ?", (value, key)
                    )
                    candidate[key] = value
                elif action == "delete" and key in candidate:
                    session.execute("DELETE FROM t WHERE id = ?", (key,))
                    del candidate[key]
            if outcome == "commit":
                session.commit()
                model = candidate
                prefixes.append((os.path.getsize(log), dict(model)))
            else:
                session.rollback()
        # One final transaction is left open — killed uncommitted.
        survivor = database.session(autocommit=False)
        survivor.execute("INSERT INTO t (id, v) VALUES (?, ?)", (99, "open"))

        # Kill at an arbitrary byte offset (0 .. full log, torn tails
        # included since offsets rarely land on batch boundaries).
        total = os.path.getsize(log)
        cut = int(round(cut_fraction * total))
        crashed_dir = os.path.join(base, "crashed")
        _clone_data_dir(data_dir, crashed_dir, truncate_at=cut)
        survivor.rollback()

        recovered = Database(data_dir=crashed_dir, durability=DURABILITY)
        if cut < prefixes[0][0]:
            # The cut fell inside the DDL records themselves: the table
            # (or its secondary index) may not have made it to disk, but
            # whatever did recover must be empty.
            if not recovered.catalog.has_table("t"):
                return
            assert recovered.row_count("t") == 0
            return
        expected = max(
            (entry for entry in prefixes if entry[0] <= cut),
            key=lambda entry: entry[0],
        )[1]
        rows = dict(recovered.execute("SELECT id, v FROM t").rows)
        assert rows == expected

        # Indexes and statistics must match a from-scratch rebuild.
        fresh = Database()
        fresh.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR)")
        fresh.execute("CREATE INDEX idx_t_v ON t (v)")
        for key, value in rows.items():
            fresh.execute("INSERT INTO t (id, v) VALUES (?, ?)", (key, value))
        recovered_stats = recovered.table_data("t").statistics()
        fresh_stats = fresh.table_data("t").statistics()
        assert recovered_stats.row_count == fresh_stats.row_count
        assert recovered_stats.column_distinct == fresh_stats.column_distinct
        assert recovered_stats.index_distinct == fresh_stats.index_distinct
        for name, index in recovered.table_data("t").indexes().items():
            counterpart = fresh.table_data("t").indexes()[name]
            assert len(index) == len(counterpart)
            assert index.distinct_keys() == counterpart.distinct_keys()


# -- concurrency × durability ------------------------------------------------


class TestConcurrentGroupCommitCrash:
    @pytest.mark.parametrize("torn_tail", [False, True])
    def test_stock_sum_survives_crash_and_recovery(self, tmp_path, torn_tail) -> None:
        data_dir = str(tmp_path / "db")
        tpcw = build_database(
            scale=PopulationScale.tiny(),
            data_dir=data_dir,
            durability=DurabilityOptions(fsync="group"),
        )
        database = tpcw.database
        stock_sum = sum(
            row[0] for row in database.execute("SELECT i_stock FROM item").rows
        )
        result = ConcurrentDriver(
            tpcw,
            variant="handwritten",
            threads=4,
            interactions_per_thread=40,
            write_fraction=0.5,
        ).run()
        assert result.writes > 0
        # Group commit must actually coalesce: fewer fsyncs than appended
        # commit batches (each batch is one committed transaction).
        info = database.durability_info()
        assert info["syncs_issued"] <= info["batches_appended"]

        # Simulated crash: no close, no checkpoint; optionally tear the
        # final record in half.
        crashed_dir = str(tmp_path / "crashed")
        truncate_at = None
        if torn_tail:
            (epoch,) = list_wal_epochs(data_dir)
            truncate_at = max(0, os.path.getsize(wal_path(data_dir, epoch)) - 7)
        _clone_data_dir(data_dir, crashed_dir, truncate_at=truncate_at)

        recovered = build_database(
            scale=PopulationScale.tiny(),
            data_dir=crashed_dir,
            durability=DurabilityOptions(fsync="group"),
        )
        recovered_sum = sum(
            row[0]
            for row in recovered.database.execute("SELECT i_stock FROM item").rows
        )
        # Every stock transfer commits atomically or not at all, so the
        # total stock is invariant no matter where the log was cut.
        assert recovered_sum == stock_sum


# -- TPC-W kill-and-reopen round trip ----------------------------------------


class TestTpcwKillAndReopen:
    def test_benchmark_queries_identical_after_recovery(self, tmp_path) -> None:
        data_dir = str(tmp_path / "db")
        scale = PopulationScale.tiny()
        cold = build_database(scale=scale, data_dir=data_dir, durability=DURABILITY)
        cold_results = self._run_all_queries(cold)
        assert cold.database.durability_info()["recovered_transactions"] == 0

        # Hard drop: no checkpoint, no close.  Reopen warm.
        warm = build_database(scale=scale, data_dir=data_dir, durability=DURABILITY)
        assert warm.database.durability_info()["recovered_transactions"] > 0
        warm_results = self._run_all_queries(warm)
        assert warm_results == cold_results

        # An in-memory build at the same scale agrees too (the recovered
        # database is indistinguishable from a fresh population).
        memory = build_database(scale=scale)
        assert self._run_all_queries(memory) == cold_results

    @staticmethod
    def _run_all_queries(tpcw) -> dict[str, object]:
        from repro.tpcw.population import customer_uname

        connection = tpcw.connection()
        em = tpcw.entity_manager()
        uname = customer_uname(1)
        return {
            "sql_get_name": queries_sql.get_name(connection, 1),
            "sql_get_customer": queries_sql.get_customer(connection, uname),
            "sql_subject": sorted(queries_sql.do_subject_search(connection, "HISTORY")),
            "sql_related": sorted(queries_sql.do_get_related(connection, 1)),
            "queryll_get_name": queries_queryll.get_name(em, 1),
            "queryll_get_customer": queries_queryll.get_customer(em, uname),
            "queryll_subject": sorted(queries_queryll.do_subject_search(em, "HISTORY")),
        }


class TestCrashMidPopulate:
    def test_partial_population_is_wiped_and_rebuilt(self, tmp_path) -> None:
        """populate() fills country first and item last; a crash in between
        must not leave the data_dir permanently unopenable (re-population
        over recovered rows would hit unique-index violations forever)."""
        from repro.orm import QueryllDatabase
        from repro.tpcw.schema import tpcw_mapping

        data_dir = str(tmp_path / "db")
        half = QueryllDatabase(tpcw_mapping(), data_dir=data_dir)
        half.database.insert_rows(
            "country", [(1, "United States", "USD", 1.0)]
        )
        # Crash: items never populated.
        tpcw = build_database(
            scale=PopulationScale.tiny(), data_dir=data_dir, durability=DURABILITY
        )
        assert tpcw.database.row_count("item") == PopulationScale.tiny().num_items
        assert tpcw.database.row_count("country") == 92
        # And the rebuilt directory reopens warm.
        warm = build_database(
            scale=PopulationScale.tiny(), data_dir=data_dir, durability=DURABILITY
        )
        assert warm.database.durability_info()["recovered_transactions"] > 0
