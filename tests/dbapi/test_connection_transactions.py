"""Connection-level transaction semantics and round-trip accounting.

The paper's benchmark counts COMMIT round trips (generated code "sends a
commit command to the database separately from its query"), so the exact
number of round trips per code path is part of the contract: auto-commit
issues none beyond the statement itself, while an explicit ``commit()`` or
``rollback()`` costs exactly one extra round trip — and now really commits
or aborts.
"""

from __future__ import annotations

import pytest

from repro.dbapi import connect
from repro.sqlengine import Database, SqlExecutionError


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.execute(
        "CREATE TABLE item (i_id INTEGER PRIMARY KEY, i_title VARCHAR(60))"
    )
    database.execute("INSERT INTO item (i_id, i_title) VALUES (1, 'Dune')")
    return database


class TestAutoCommit:
    def test_statement_commits_immediately(self, db: Database) -> None:
        connection = connect(db)
        statement = connection.prepare_statement(
            "INSERT INTO item (i_id, i_title) VALUES (?, ?)"
        )
        statement.set_int(1, 2)
        statement.set_string(2, "Foundation")
        statement.execute_update()
        # Visible through an unrelated connection without any commit.
        other = connect(db)
        results = other.prepare_statement("SELECT i_title FROM item WHERE i_id = 2")
        assert results.execute_query().row_count == 1
        assert not connection.in_transaction

    def test_round_trip_counts(self, db: Database) -> None:
        connection = connect(db)
        statement = connection.prepare_statement(
            "INSERT INTO item (i_id, i_title) VALUES (?, ?)"
        )
        statement.set_int(1, 2)
        statement.set_string(2, "Foundation")
        statement.execute_update()
        connection.commit()  # still one (no-op) round trip, as the paper counts
        assert connection.round_trips == 2


class TestExplicitTransactions:
    def test_commit_round_trips(self, db: Database) -> None:
        connection = connect(db, auto_commit=False)
        statement = connection.prepare_statement(
            "INSERT INTO item (i_id, i_title) VALUES (?, ?)"
        )
        statement.set_int(1, 2)
        statement.set_string(2, "Foundation")
        statement.execute_update()
        assert connection.in_transaction  # opened implicitly, no BEGIN round trip
        connection.commit()
        # Exactly 2 round trips: the INSERT and the COMMIT.
        assert connection.round_trips == 2
        assert db.row_count("item") == 2

    def test_rollback_undoes_uncommitted_changes(self, db: Database) -> None:
        connection = connect(db, auto_commit=False)
        update = connection.prepare_statement(
            "UPDATE item SET i_title = ? WHERE i_id = ?"
        )
        update.set_string(1, "Changed")
        update.set_int(2, 1)
        update.execute_update()
        connection.rollback()
        assert connection.round_trips == 2
        assert db.execute("SELECT i_title FROM item WHERE i_id = 1").rows == [
            ("Dune",)
        ]
        assert not connection.in_transaction

    def test_several_statements_commit_atomically(self, db: Database) -> None:
        connection = connect(db, auto_commit=False)
        insert = connection.prepare_statement(
            "INSERT INTO item (i_id, i_title) VALUES (?, ?)"
        )
        for item_id, title in ((2, "Foundation"), (3, "Hyperion")):
            insert.set_int(1, item_id)
            insert.set_string(2, title)
            insert.execute_update()
        connection.rollback()
        assert db.row_count("item") == 1

    def test_enabling_auto_commit_commits_open_transaction(self, db: Database) -> None:
        connection = connect(db, auto_commit=False)
        statement = connection.create_statement()
        statement.execute("DELETE FROM item WHERE i_id = 1")
        connection.set_auto_commit(True)  # JDBC semantics: commits
        assert not connection.in_transaction
        assert db.row_count("item") == 0

    def test_close_rolls_back_open_transaction(self, db: Database) -> None:
        connection = connect(db, auto_commit=False)
        statement = connection.create_statement()
        statement.execute("DELETE FROM item WHERE i_id = 1")
        connection.close()
        assert db.row_count("item") == 1
        with pytest.raises(SqlExecutionError):
            connection.commit()

    def test_execute_update_reports_affected_rows(self, db: Database) -> None:
        connection = connect(db)
        statement = connection.prepare_statement(
            "UPDATE item SET i_title = 'X' WHERE i_id = ?"
        )
        statement.set_int(1, 1)
        assert statement.execute_update() == 1
        statement.set_int(1, 99)
        assert statement.execute_update() == 0


class TestConnectionContextManager:
    """``with connect(...) as conn:`` — commit on clean exit, roll back on
    exception, always close (and the same protocol on the engine itself)."""

    def test_clean_exit_commits(self, db: Database) -> None:
        with connect(db, auto_commit=False) as connection:
            statement = connection.prepare_statement(
                "INSERT INTO item (i_id, i_title) VALUES (?, ?)"
            )
            statement.set_int(1, 2)
            statement.set_string(2, "Foundation")
            statement.execute_update()
            assert connection.in_transaction
        assert connection.closed
        assert db.execute("SELECT i_title FROM item WHERE i_id = 2").rows == [
            ("Foundation",)
        ]

    def test_exception_rolls_back_and_closes(self, db: Database) -> None:
        with pytest.raises(RuntimeError, match="boom"):
            with connect(db, auto_commit=False) as connection:
                statement = connection.prepare_statement(
                    "DELETE FROM item WHERE i_id = ?"
                )
                statement.set_int(1, 1)
                statement.execute_update()
                raise RuntimeError("boom")
        assert connection.closed
        assert db.execute("SELECT i_id FROM item").rows == [(1,)]

    def test_clean_exit_without_transaction_closes_quietly(self, db: Database) -> None:
        with connect(db) as connection:
            trips_before = connection.round_trips
            statement = connection.prepare_statement("SELECT i_id FROM item")
            statement.execute_query()
        assert connection.closed
        # No spurious COMMIT round trip was issued for a read-only visit.
        assert connection.round_trips == trips_before + 1

    def test_entering_a_closed_connection_fails(self, db: Database) -> None:
        connection = connect(db)
        connection.close()
        with pytest.raises(SqlExecutionError):
            with connection:
                pass  # pragma: no cover

    def test_engine_is_a_context_manager_too(self) -> None:
        with Database() as database:
            database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
            database.execute("INSERT INTO t (id) VALUES (1)")
            assert database.row_count("t") == 1
        # In-memory close is a no-op; the engine stays usable.
        assert database.row_count("t") == 1
