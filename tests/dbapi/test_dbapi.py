"""Tests for the JDBC-style driver layer."""

from __future__ import annotations

import pytest

from repro.dbapi import connect
from repro.sqlengine import Database
from repro.sqlengine.errors import SqlExecutionError


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.executescript(
        "CREATE TABLE item (i_id INTEGER PRIMARY KEY, i_title VARCHAR(60), i_cost DOUBLE)"
    )
    database.insert_rows(
        "item", [(1, "Dune", 9.5), (2, "Foundation", 7.25), (3, "Hyperion", None)]
    )
    return database


class TestPreparedStatement:
    def test_execute_query_with_parameters(self, db: Database) -> None:
        connection = connect(db)
        statement = connection.prepare_statement("SELECT i_title FROM item WHERE i_id = ?")
        statement.set_int(1, 2)
        results = statement.execute_query()
        assert results.next()
        assert results.get_string(1) == "Foundation"
        assert not results.next()

    def test_parameters_are_one_based(self, db: Database) -> None:
        connection = connect(db)
        statement = connection.prepare_statement("SELECT i_title FROM item WHERE i_id = ?")
        with pytest.raises(SqlExecutionError):
            statement.set_int(0, 2)

    def test_unset_parameter_raises(self, db: Database) -> None:
        connection = connect(db)
        statement = connection.prepare_statement(
            "SELECT i_title FROM item WHERE i_id = ? OR i_cost > ?"
        )
        statement.set_object(2, 5.0)
        with pytest.raises(SqlExecutionError):
            statement.execute_query()

    def test_reuse_with_different_parameters(self, db: Database) -> None:
        connection = connect(db)
        statement = connection.prepare_statement("SELECT i_title FROM item WHERE i_id = ?")
        titles = []
        for item_id in (1, 2, 3):
            statement.set_int(1, item_id)
            results = statement.execute_query()
            results.next()
            titles.append(results.get_string("i_title"))
        assert titles == ["Dune", "Foundation", "Hyperion"]

    def test_execute_update(self, db: Database) -> None:
        connection = connect(db)
        statement = connection.prepare_statement("UPDATE item SET i_cost = ? WHERE i_id = ?")
        statement.set_double(1, 12.0)
        statement.set_int(2, 1)
        statement.execute_update()
        assert db.execute("SELECT i_cost FROM item WHERE i_id = 1").rows == [(12.0,)]

    def test_closed_statement_raises(self, db: Database) -> None:
        connection = connect(db)
        statement = connection.prepare_statement("SELECT 1 FROM item")
        statement.close()
        with pytest.raises(SqlExecutionError):
            statement.execute_query()


class TestResultSet:
    def test_column_access_by_index_and_name(self, db: Database) -> None:
        connection = connect(db)
        results = connection.prepare_statement(
            "SELECT i_id, i_title, i_cost FROM item WHERE i_id = 1"
        ).execute_query()
        assert results.next()
        assert results.get_int(1) == 1
        assert results.get_string("I_TITLE") == "Dune"
        assert results.get_double("i_cost") == 9.5

    def test_null_handling_mirrors_jdbc(self, db: Database) -> None:
        connection = connect(db)
        results = connection.prepare_statement(
            "SELECT i_cost FROM item WHERE i_id = 3"
        ).execute_query()
        results.next()
        assert results.get_double(1) == 0.0
        assert results.was_null(1) is True

    def test_cursor_before_first_raises(self, db: Database) -> None:
        connection = connect(db)
        results = connection.prepare_statement("SELECT i_id FROM item").execute_query()
        with pytest.raises(RuntimeError):
            results.get_int(1)

    def test_row_count_and_before_first(self, db: Database) -> None:
        connection = connect(db)
        results = connection.prepare_statement("SELECT i_id FROM item").execute_query()
        assert results.row_count == 3
        seen = 0
        while results.next():
            seen += 1
        assert seen == 3
        results.before_first()
        assert results.next()

    def test_fetchmany_and_arraysize(self, db: Database) -> None:
        connection = connect(db)
        results = connection.prepare_statement("SELECT i_id FROM item").execute_query()
        assert results.arraysize == 1
        assert results.fetchmany() == [(1,)]  # defaults to arraysize
        results.arraysize = 2
        assert results.fetchmany() == [(2,), (3,)]
        assert results.fetchmany() == []  # exhausted
        results.before_first()
        assert results.fetchmany(10) == [(1,), (2,), (3,)]  # capped at the end

    def test_iteration_yields_remaining_rows(self, db: Database) -> None:
        connection = connect(db)
        results = connection.prepare_statement("SELECT i_id FROM item").execute_query()
        assert [row[0] for row in results] == [1, 2, 3]
        results.before_first()
        results.next()  # consume the first row through the JDBC cursor
        assert [row[0] for row in results] == [2, 3]  # iteration continues

    def test_bad_column_references(self, db: Database) -> None:
        connection = connect(db)
        results = connection.prepare_statement("SELECT i_id FROM item").execute_query()
        results.next()
        with pytest.raises(IndexError):
            results.get_int(5)
        with pytest.raises(KeyError):
            results.get_string("missing")


class TestConnection:
    def test_round_trips_are_counted(self, db: Database) -> None:
        connection = connect(db)
        statement = connection.prepare_statement("SELECT i_id FROM item WHERE i_id = ?")
        statement.set_int(1, 1)
        statement.execute_query()
        statement.execute_query()
        connection.commit()
        assert connection.round_trips == 3

    def test_closed_connection_rejects_statements(self, db: Database) -> None:
        connection = connect(db)
        connection.close()
        assert connection.closed
        with pytest.raises(SqlExecutionError):
            connection.prepare_statement("SELECT 1 FROM item")

    def test_plain_statement_execute(self, db: Database) -> None:
        connection = connect(db)
        statement = connection.create_statement()
        results = statement.execute("SELECT COUNT(*) AS n FROM item")
        assert results is not None
        results.next()
        assert results.get_int("n") == 3

    def test_auto_commit_flag(self, db: Database) -> None:
        connection = connect(db, auto_commit=False)
        assert connection.auto_commit is False
        connection.set_auto_commit(True)
        assert connection.auto_commit is True
