"""Shared fixtures: the paper's bank example and a tiny TPC-W database.

The bank mapping/data builders live in :mod:`repro.testing` so the benchmark
suite can import them too without ``sys.path`` tricks.
"""

from __future__ import annotations

import pytest

from repro.orm import OrmMapping, QueryllDatabase
from repro.testing import (  # noqa: F401 - re-exported for historical imports
    BANK_ACCOUNTS,
    BANK_CLIENTS,
    BANK_OFFICES,
    make_bank_db,
    make_bank_mapping,
)
from repro.tpcw.database import TpcwDatabase, build_database
from repro.tpcw.population import PopulationScale


@pytest.fixture()
def bank_mapping() -> OrmMapping:
    """A fresh bank mapping."""
    return make_bank_mapping()


@pytest.fixture()
def bank_db() -> QueryllDatabase:
    """A populated bank database (fresh per test)."""
    return make_bank_db()


@pytest.fixture(scope="session")
def tpcw_db() -> TpcwDatabase:
    """A tiny TPC-W database shared across the test session (read-only)."""
    return build_database(PopulationScale.tiny())
