"""Tests for the shared LRU statement/plan cache: hits, LRU eviction,
DDL invalidation, statistics-drift replanning and cross-layer reuse."""

from __future__ import annotations

import pytest

from repro.sqlengine import Database
from repro.sqlengine.planner import PlannerOptions
from repro.testing import make_bank_db


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.executescript(
        """
        CREATE TABLE item (i_id INTEGER PRIMARY KEY, i_subject VARCHAR(20), i_cost INTEGER);
        CREATE TABLE author (a_id INTEGER PRIMARY KEY, a_name VARCHAR(20));
        """
    )
    database.insert_rows(
        "item", [(i, f"subject{i % 5}", i * 10) for i in range(1, 41)]
    )
    database.insert_rows("author", [(i, f"author{i}") for i in range(1, 11)])
    return database


class TestCacheHits:
    def test_repeated_select_hits_cache_and_plans_once(self, db: Database) -> None:
        info = db.statement_cache_info()
        sql = "SELECT i_cost FROM item WHERE i_id = ?"
        for item_id in (1, 2, 3, 4):
            db.execute(sql, (item_id,))
        after = db.statement_cache_info()
        assert after["hits"] >= info["hits"] + 3
        assert after["plans_computed"] == info["plans_computed"] + 1

    def test_cache_disabled_never_hits(self, db: Database) -> None:
        db.set_statement_cache_size(0)
        before = db.statement_cache_info()
        sql = "SELECT i_cost FROM item WHERE i_id = ?"
        db.execute(sql, (1,))
        db.execute(sql, (2,))
        after = db.statement_cache_info()
        assert after["hits"] == before["hits"]
        assert after["plans_computed"] >= before["plans_computed"] + 2

    def test_lru_eviction_bounds_entries(self, db: Database) -> None:
        db.set_statement_cache_size(2)
        db.execute("SELECT i_id FROM item WHERE i_id = 1")
        db.execute("SELECT i_id FROM item WHERE i_id = 2")
        db.execute("SELECT i_id FROM item WHERE i_id = 3")
        assert db.statement_cache_info()["entries"] <= 2

    def test_planner_options_key_separates_entries(self, db: Database) -> None:
        sql = "SELECT i_cost FROM item WHERE i_id = ?"
        db.execute(sql, (1,))
        plans_before = db.statement_cache_info()["plans_computed"]
        db.set_planner_options(PlannerOptions(use_indexes=False))
        db.execute(sql, (1,))
        assert db.statement_cache_info()["plans_computed"] == plans_before + 1
        assert "SeqScan" in db.explain(sql)


class TestInvalidation:
    def test_ddl_clears_cache(self, db: Database) -> None:
        db.execute("SELECT i_id FROM item WHERE i_id = 1")
        assert db.statement_cache_info()["entries"] > 0
        db.execute("CREATE INDEX idx_subject ON item (i_subject)")
        assert db.statement_cache_info()["entries"] == 0

    def test_replan_after_ddl_uses_new_index(self, db: Database) -> None:
        sql = "SELECT i_id FROM item WHERE i_subject = ?"
        db.execute(sql, ("subject1",))
        assert "SeqScan" in db.explain(sql)
        db.execute("CREATE INDEX idx_subject ON item (i_subject)")
        rows = db.execute(sql, ("subject1",)).rows
        plan = db.explain(sql)
        assert "idx_subject" in plan and "IndexLookup" in plan
        assert sorted(rows) == sorted(
            db.execute(
                "SELECT i_id FROM item WHERE i_subject = 'subject1'"
            ).rows
        )

    def test_statistics_drift_triggers_replan(self, db: Database) -> None:
        db.execute("CREATE TABLE tiny (t_id INTEGER PRIMARY KEY, t_val INTEGER)")
        db.insert_rows("tiny", [(1, 10)])
        sql = "SELECT t_val FROM tiny WHERE t_val > 0"
        db.execute(sql)
        plans_before = db.statement_cache_info()["plans_computed"]
        db.execute(sql)  # no drift yet: cached plan reused
        assert db.statement_cache_info()["plans_computed"] == plans_before
        db.insert_rows("tiny", [(i, i) for i in range(2, 200)])
        result = db.execute(sql)
        assert db.statement_cache_info()["plans_computed"] == plans_before + 1
        assert len(result.rows) == 199

    def test_execution_mode_change_never_serves_stale_plan(self, db: Database) -> None:
        """execution_mode and batch_size are part of the cache key: toggling
        them replans instead of serving the other mode's plan."""
        sql = "SELECT i_cost FROM item WHERE i_cost > ?"
        db.execute(sql, (100,))
        plans_before = db.statement_cache_info()["plans_computed"]
        db.set_planner_options(PlannerOptions(execution_mode="batch"))
        rows_batch = db.execute(sql, (100,)).rows
        assert db.statement_cache_info()["plans_computed"] == plans_before + 1
        assert db.explain(sql).startswith("mode=batch (batch_size=1024)")
        db.set_planner_options(
            PlannerOptions(execution_mode="batch", batch_size=64)
        )
        db.execute(sql, (100,))
        assert db.statement_cache_info()["plans_computed"] == plans_before + 2
        assert db.explain(sql).startswith("mode=batch (batch_size=64)")
        db.set_planner_options(PlannerOptions(execution_mode="row"))
        rows_row = db.execute(sql, (100,)).rows
        assert db.statement_cache_info()["plans_computed"] == plans_before + 3
        assert db.explain(sql).startswith("mode=row")
        assert sorted(rows_batch) == sorted(rows_row)

    def test_dropped_table_does_not_leave_stale_plan(self, db: Database) -> None:
        db.execute("CREATE TABLE temp_t (x INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO temp_t (x) VALUES (1)")
        db.execute("SELECT x FROM temp_t")
        db.execute("DROP TABLE temp_t")
        with pytest.raises(Exception):
            db.execute("SELECT x FROM temp_t")


class TestCrossLayerReuse:
    def test_orm_find_reuses_cached_plan(self) -> None:
        bank = make_bank_db()
        database = bank.database
        em = bank.begin_transaction()
        em.find("Client", 1000)
        info = database.statement_cache_info()
        # A different EntityManager issues byte-identical SQL, so the second
        # lookup is a pure cache hit with no replanning.
        other = bank.begin_transaction()
        other.find("Client", 1001)
        after = database.statement_cache_info()
        assert after["hits"] >= info["hits"] + 1
        assert after["plans_computed"] == info["plans_computed"]

    def test_prepared_statement_reuses_cached_plan(self, db: Database) -> None:
        from repro.dbapi.connection import connect

        connection = connect(db)
        statement = connection.prepare_statement(
            "SELECT i_cost FROM item WHERE i_id = ?"
        )
        statement.set_int(1, 1)
        statement.execute_query()
        info = db.statement_cache_info()
        for item_id in (2, 3, 4):
            statement.set_int(1, item_id)
            statement.execute_query()
        after = db.statement_cache_info()
        assert after["hits"] >= info["hits"] + 3
        assert after["plans_computed"] == info["plans_computed"]
