"""Unit tests for the vectorized columnar execution engine: mode
selection, projection/selection pushdown into storage, MVCC fast-path vs
fallback scans, incremental column-cache maintenance and the stats
surface."""

from __future__ import annotations

import pytest

from repro.sqlengine import Database
from repro.sqlengine.errors import SqlExecutionError
from repro.sqlengine.planner import PlannerOptions

ROWS = 1000


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.executescript(
        """
        CREATE TABLE item (i_id INTEGER, i_grp INTEGER, i_cost INTEGER,
                           i_subject VARCHAR(20), i_note VARCHAR(40));
        CREATE TABLE grp (g_id INTEGER, g_label VARCHAR(20));
        """
    )
    database.insert_rows(
        "item",
        [
            (
                i,
                i % 10,
                i * 3 if i % 7 else None,
                f"subject{i % 5}",
                f"note-{i}",
            )
            for i in range(ROWS)
        ],
    )
    database.insert_rows("grp", [(i, f"group{i}") for i in range(10)])
    return database


def both_modes(db: Database, sql: str, params=()) -> None:
    """Assert batch and row mode agree on rows (as multisets for unordered
    queries, exactly for ordered ones) and on root cardinality estimates."""
    db.set_planner_options(PlannerOptions(execution_mode="batch"))
    batch = db.execute(sql, params)
    batch_explain = db.explain(sql)
    db.set_planner_options(PlannerOptions(execution_mode="row"))
    row = db.execute(sql, params)
    row_explain = db.explain(sql)
    assert batch.columns == row.columns
    if "ORDER BY" in sql.upper():
        assert batch.rows == row.rows
    else:
        assert sorted(batch.rows, key=repr) == sorted(row.rows, key=repr)
    # Root estimates match across modes (headers and operator names differ).
    batch_root = batch_explain.splitlines()[1]
    row_root = row_explain.splitlines()[1]
    assert batch_root.split("(rows=")[-1] == row_root.split("(rows=")[-1], (
        batch_explain,
        row_explain,
    )


class TestModeSelection:
    def test_auto_picks_batch_for_full_scans(self, db: Database) -> None:
        plan = db.explain("SELECT SUM(i_cost) FROM item")
        assert plan.startswith("mode=batch (batch_size=1024)")
        assert "BatchAggregate(SUM)" in plan
        assert "BatchScan(item AS item" in plan

    def test_auto_keeps_point_lookups_row_mode(self, db: Database) -> None:
        db.execute("CREATE INDEX idx_item_id ON item (i_id)")
        plan = db.explain("SELECT i_cost FROM item WHERE i_id = 7")
        assert plan.startswith("mode=row")
        assert "IndexLookup" in plan

    def test_auto_keeps_small_tables_row_mode(self, db: Database) -> None:
        plan = db.explain("SELECT g_label FROM grp")
        assert plan.startswith("mode=row")

    def test_forced_batch_and_row_modes(self, db: Database) -> None:
        db.set_planner_options(
            PlannerOptions(execution_mode="batch", batch_size=128)
        )
        assert db.explain("SELECT g_label FROM grp").startswith(
            "mode=batch (batch_size=128)"
        )
        db.set_planner_options(PlannerOptions(execution_mode="row"))
        assert db.explain("SELECT SUM(i_cost) FROM item").startswith("mode=row")

    def test_unknown_mode_raises(self, db: Database) -> None:
        db.set_planner_options(PlannerOptions(execution_mode="warp"))
        with pytest.raises(SqlExecutionError, match="execution_mode"):
            db.execute("SELECT i_id FROM item")

    def test_unsupported_shapes_fall_back_to_row(self, db: Database) -> None:
        db.set_planner_options(PlannerOptions(execution_mode="batch"))
        # Cross join has no batch equivalent: planner falls back.
        plan = db.explain("SELECT COUNT(*) FROM item, grp")
        assert plan.startswith("mode=row")
        result = db.execute("SELECT COUNT(*) FROM item, grp")
        assert result.rows == [(ROWS * 10,)]


class TestEquivalence:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT i_id, i_cost FROM item",
            "SELECT * FROM item WHERE i_grp = 3",
            "SELECT i_id FROM item WHERE i_cost > 500 AND i_cost <= 900",
            "SELECT i_id FROM item WHERE i_cost IS NULL",
            "SELECT i_id FROM item WHERE i_cost IS NOT NULL AND i_grp != 2",
            "SELECT i_id FROM item WHERE i_grp IN (1, 3, 5)",
            "SELECT i_id FROM item WHERE i_grp NOT IN (1, 3, 5)",
            "SELECT i_id FROM item WHERE i_subject LIKE 'subject1%'",
            "SELECT i_id FROM item WHERE i_grp < i_cost",
            "SELECT i_id FROM item WHERE i_id + i_grp > 990",
            "SELECT COUNT(*), COUNT(i_cost), SUM(i_cost), MIN(i_cost), "
            "MAX(i_cost), AVG(i_cost) FROM item",
            "SELECT SUM(i_cost + i_grp) FROM item WHERE i_grp > 4",
            "SELECT COUNT(*) FROM item WHERE i_grp = 99",
            "SELECT DISTINCT i_grp FROM item WHERE i_cost > 100",
            "SELECT i_id, i_cost FROM item WHERE i_grp = 1 "
            "ORDER BY i_cost DESC, i_id LIMIT 7",
            "SELECT i_grp, i_id FROM item ORDER BY i_grp, i_id DESC "
            "LIMIT 20 OFFSET 5",
            "SELECT item.i_id, grp.g_label FROM item, grp "
            "WHERE item.i_grp = grp.g_id AND item.i_cost < 300 "
            "ORDER BY item.i_id",
            "SELECT COUNT(*) FROM item, grp "
            "WHERE item.i_grp = grp.g_id AND grp.g_label != 'group3'",
        ],
    )
    def test_batch_matches_row(self, db: Database, sql: str) -> None:
        both_modes(db, sql)

    def test_parameters(self, db: Database) -> None:
        both_modes(
            db,
            "SELECT i_id FROM item WHERE i_cost > ? AND i_subject = ?",
            (250, "subject2"),
        )

    def test_empty_table_aggregates(self, db: Database) -> None:
        db.execute("CREATE TABLE empty_t (x INTEGER)")
        db.set_planner_options(PlannerOptions(execution_mode="batch"))
        result = db.execute(
            "SELECT COUNT(*), SUM(x), MIN(x), MAX(x), AVG(x) FROM empty_t"
        )
        assert result.rows == [(0, None, None, None, None)]

    def test_null_join_keys_match_nothing(self, db: Database) -> None:
        db.execute("CREATE TABLE l (k INTEGER, v INTEGER)")
        db.execute("CREATE TABLE r (k INTEGER, w INTEGER)")
        db.insert_rows("l", [(None, 1), (1, 2), (2, 3)] * 200)
        db.insert_rows("r", [(None, 10), (1, 20)] * 200)
        both_modes(
            db, "SELECT l.v, r.w FROM l, r WHERE l.k = r.k"
        )

    def test_incomparable_types_raise_in_both_modes(self, db: Database) -> None:
        for mode in ("batch", "row"):
            db.set_planner_options(PlannerOptions(execution_mode=mode))
            with pytest.raises(SqlExecutionError):
                db.execute("SELECT i_id FROM item WHERE i_subject < 5")


class TestPushdown:
    def test_projection_pushdown_skips_unreferenced_columns(
        self, db: Database
    ) -> None:
        db.execute("SELECT i_id, i_cost FROM item WHERE i_grp = 2")
        table = db._tables["item"]
        # Columns 0 (i_id), 1 (i_grp), 2 (i_cost) were materialised;
        # i_subject and i_note were never touched.
        assert sorted(table._col_cache) == [0, 1, 2]

    def test_selection_pushdown_filters_inside_the_scan(
        self, db: Database
    ) -> None:
        before = db.stats()["columnar"]["rows_filtered_by_pushdown"]
        result = db.execute("SELECT i_id FROM item WHERE i_grp = 4")
        kept = len(result.rows)
        after = db.stats()["columnar"]["rows_filtered_by_pushdown"]
        assert after - before == ROWS - kept
        plan = db.explain("SELECT i_id FROM item WHERE i_grp = 4")
        assert "pushdown=1" in plan
        assert "BatchFilter" not in plan

    def test_non_vectorisable_predicates_stay_rowwise(
        self, db: Database
    ) -> None:
        plan = db.explain(
            "SELECT i_id FROM item WHERE i_grp = 4 AND i_id + i_grp > 10"
        )
        assert "pushdown=1" in plan
        assert "BatchFilter(item)" in plan


class TestMvccScans:
    def test_fast_path_when_no_versions(self, db: Database) -> None:
        before = db.stats()["columnar"]
        db.execute("SELECT COUNT(*) FROM item")
        after = db.stats()["columnar"]
        assert after["fast_path_scans"] == before["fast_path_scans"] + 1
        assert after["fallback_scans"] == before["fallback_scans"]

    def test_fallback_hides_uncommitted_writes(self, db: Database) -> None:
        writer = db.session()
        reader = db.session()
        writer.begin()
        writer.execute("UPDATE item SET i_cost = 0 WHERE i_id = 15")
        before = db.stats()["columnar"]["fallback_scans"]
        rows = reader.execute(
            "SELECT i_cost FROM item WHERE i_id = 15"
        ).rows
        assert rows == [(45,)]  # uncommitted update invisible
        assert db.stats()["columnar"]["fallback_scans"] > before
        writer.rollback()
        writer.close()
        reader.close()

    def test_fallback_resurrects_rows_deleted_after_snapshot(
        self, db: Database
    ) -> None:
        reader = db.session()
        reader.begin()
        # Pin the reader's snapshot before the delete commits.
        assert reader.execute(
            "SELECT COUNT(*) FROM item WHERE i_grp = 5"
        ).rows == [(100,)]
        db.execute("DELETE FROM item WHERE i_grp = 5")
        # The deleting transaction committed, but this snapshot predates
        # it: the batch scan must resurrect the deleted rows.
        assert reader.execute(
            "SELECT COUNT(*) FROM item WHERE i_grp = 5"
        ).rows == [(100,)]
        reader.commit()
        reader.close()
        assert db.execute(
            "SELECT COUNT(*) FROM item WHERE i_grp = 5"
        ).rows == [(0,)]

    def test_dml_between_scans_is_visible(self, db: Database) -> None:
        assert db.execute("SELECT MAX(i_id) FROM item").rows == [(ROWS - 1,)]
        db.execute(
            "INSERT INTO item (i_id, i_grp, i_cost, i_subject, i_note) "
            "VALUES (?, ?, ?, ?, ?)",
            (5000, 1, 1, "subject1", "new"),
        )
        assert db.execute("SELECT MAX(i_id) FROM item").rows == [(5000,)]
        db.execute("UPDATE item SET i_id = 6000 WHERE i_id = 5000")
        assert db.execute("SELECT MAX(i_id) FROM item").rows == [(6000,)]
        db.execute("DELETE FROM item WHERE i_id = 6000")
        assert db.execute("SELECT MAX(i_id) FROM item").rows == [(ROWS - 1,)]


class TestColumnCacheMaintenance:
    def test_small_dml_patches_instead_of_rebuilding(self, db: Database) -> None:
        db.execute("SELECT SUM(i_cost) FROM item")  # build the arrays
        table = db._tables["item"]
        rebuilds = table.column_rebuilds
        db.execute("UPDATE item SET i_cost = 1 WHERE i_id = 3")
        db.execute("SELECT SUM(i_cost) FROM item")
        assert table.column_patches >= 1
        assert table.column_rebuilds == rebuilds

    def test_bulk_churn_rebuilds(self, db: Database) -> None:
        db.execute("SELECT SUM(i_cost) FROM item")
        table = db._tables["item"]
        rebuilds = table.column_rebuilds
        db.execute("UPDATE item SET i_cost = 1")  # dirty every row
        db.execute("SELECT SUM(i_cost) FROM item")
        assert table.column_rebuilds > rebuilds

    def test_published_arrays_are_never_mutated(self, db: Database) -> None:
        """Copy-on-write: a scan's captured arrays must not change under
        later DML (a concurrent reader may still hold them)."""
        table = db._tables["item"]
        by_position, _, _, _ = table.columnar_scan_state([2])
        captured = by_position[2]
        snapshot = list(captured)
        db.execute("UPDATE item SET i_cost = 777 WHERE i_id = 1")
        db.execute("SELECT SUM(i_cost) FROM item")
        assert captured == snapshot


class TestStats:
    def test_stats_columnar_section(self, db: Database) -> None:
        db.execute("SELECT SUM(i_cost) FROM item WHERE i_grp = 1")
        stats = db.stats()["columnar"]
        assert set(stats) == {
            "batches_produced",
            "rows_filtered_by_pushdown",
            "fast_path_scans",
            "fallback_scans",
            "column_rebuilds",
            "column_patches",
        }
        assert stats["batches_produced"] >= 1
        assert stats["fast_path_scans"] >= 1

    def test_server_stats_ship_columnar_section(self, db: Database) -> None:
        from repro.netclient import RemoteDatabase
        from repro.server import SqlServer

        with SqlServer(db, host="127.0.0.1", port=0) as server:
            remote = RemoteDatabase(server.address).connect()
            db.execute("SELECT SUM(i_cost) FROM item")
            stats = remote.session.server_stats()
            assert stats["engine"]["columnar"]["batches_produced"] >= 1
            remote.close()
