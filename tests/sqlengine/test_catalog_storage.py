"""Tests for the catalog, storage and index layers."""

from __future__ import annotations

import pytest

from repro.sqlengine.catalog import Catalog, ColumnSchema, SqlType, TableSchema
from repro.sqlengine.errors import SqlCatalogError, SqlExecutionError, SqlTypeError
from repro.sqlengine.indexes import HashIndex, OrderedIndex, make_key
from repro.sqlengine.storage import TableData


def customer_schema() -> TableSchema:
    return TableSchema(
        name="customer",
        columns=(
            ColumnSchema("c_id", SqlType.INTEGER, primary_key=True),
            ColumnSchema("c_uname", SqlType.TEXT),
            ColumnSchema("c_balance", SqlType.DOUBLE),
        ),
    )


class TestSqlType:
    def test_from_name_aliases(self) -> None:
        assert SqlType.from_name("VARCHAR") is SqlType.TEXT
        assert SqlType.from_name("int") is SqlType.INTEGER
        assert SqlType.from_name("REAL") is SqlType.DOUBLE

    def test_unknown_type_raises(self) -> None:
        with pytest.raises(SqlCatalogError):
            SqlType.from_name("BLOB9000")

    def test_coerce_integer(self) -> None:
        assert SqlType.INTEGER.coerce("42") == 42
        assert SqlType.INTEGER.coerce(3.9) == 3
        assert SqlType.INTEGER.coerce(None) is None

    def test_coerce_double_and_boolean(self) -> None:
        assert SqlType.DOUBLE.coerce("2.5") == 2.5
        assert SqlType.BOOLEAN.coerce("true") is True
        assert SqlType.BOOLEAN.coerce(0) is False

    def test_coerce_failure_raises(self) -> None:
        with pytest.raises(SqlTypeError):
            SqlType.INTEGER.coerce("not a number")


class TestTableSchema:
    def test_column_lookup_is_case_insensitive(self) -> None:
        schema = customer_schema()
        assert schema.column_index("C_UNAME") == 1
        assert schema.column("c_Id").primary_key is True

    def test_unknown_column_raises(self) -> None:
        with pytest.raises(SqlCatalogError):
            customer_schema().column_index("nope")

    def test_duplicate_column_rejected(self) -> None:
        with pytest.raises(SqlCatalogError):
            TableSchema(
                name="t",
                columns=(
                    ColumnSchema("a", SqlType.INTEGER),
                    ColumnSchema("A", SqlType.TEXT),
                ),
            )

    def test_coerce_row_length_mismatch(self) -> None:
        with pytest.raises(SqlTypeError):
            customer_schema().coerce_row((1, "x"))

    def test_primary_key_columns(self) -> None:
        assert customer_schema().primary_key_columns == ["c_id"]


class TestCatalog:
    def test_create_and_lookup(self) -> None:
        catalog = Catalog()
        catalog.create_table(customer_schema())
        assert catalog.has_table("CUSTOMER")
        assert catalog.table("customer").name == "customer"

    def test_duplicate_table_raises(self) -> None:
        catalog = Catalog()
        catalog.create_table(customer_schema())
        with pytest.raises(SqlCatalogError):
            catalog.create_table(customer_schema())

    def test_drop_table(self) -> None:
        catalog = Catalog()
        catalog.create_table(customer_schema())
        catalog.drop_table("customer")
        assert not catalog.has_table("customer")
        with pytest.raises(SqlCatalogError):
            catalog.drop_table("customer")


class TestIndexes:
    def test_hash_index_insert_lookup_delete(self) -> None:
        index = HashIndex("i", ("a",))
        index.insert(5, 1)
        index.insert(5, 2)
        assert sorted(index.lookup(5)) == [1, 2]
        index.delete(5, 1)
        assert index.lookup(5) == [2]
        assert len(index) == 1

    def test_unique_hash_index_rejects_duplicates(self) -> None:
        index = HashIndex("i", ("a",), unique=True)
        index.insert("x", 1)
        with pytest.raises(SqlExecutionError):
            index.insert("x", 2)

    def test_ordered_index_range(self) -> None:
        index = OrderedIndex("i", ("a",))
        for value, row in [(5, 0), (1, 1), (3, 2), (9, 3)]:
            index.insert(value, row)
        assert index.lookup(3) == [2]
        assert index.range(low=2, high=6) == [2, 0]
        assert index.ordered_row_ids() == [1, 2, 0, 3]
        assert index.ordered_row_ids(descending=True) == [3, 0, 2, 1]

    def test_make_key_single_vs_composite(self) -> None:
        assert make_key([7]) == 7
        assert make_key([7, "a"]) == (7, "a")


class TestTableData:
    def test_insert_and_scan(self) -> None:
        data = TableData(customer_schema())
        data.insert((1, "alice", 10.0))
        data.insert((2, "bob", -3.0))
        assert len(data) == 2
        assert [row[1] for row in data.rows()] == ["alice", "bob"]

    def test_primary_key_index_created_automatically(self) -> None:
        data = TableData(customer_schema())
        assert "pk_customer" in data.indexes()
        data.insert((1, "alice", 10.0))
        with pytest.raises(SqlExecutionError):
            data.insert((1, "duplicate", 0.0))

    def test_delete_is_reflected_in_scan_and_index(self) -> None:
        data = TableData(customer_schema())
        row_id = data.insert((1, "alice", 10.0))
        data.insert((2, "bob", 2.0))
        data.delete(row_id)
        assert len(data) == 1
        index = data.indexes()["pk_customer"]
        assert data.lookup_rows(index, 1) == []

    def test_update_maintains_indexes(self) -> None:
        data = TableData(customer_schema())
        row_id = data.insert((1, "alice", 10.0))
        data.update(row_id, (7, "alice", 10.0))
        index = data.indexes()["pk_customer"]
        assert data.lookup_rows(index, 1) == []
        assert data.lookup_rows(index, 7)[0][1][0] == 7

    def test_secondary_index_backfills_existing_rows(self) -> None:
        data = TableData(customer_schema())
        data.insert((1, "alice", 10.0))
        data.insert((2, "bob", 2.0))
        index = data.create_index("by_uname", ("c_uname",))
        assert data.lookup_rows(index, "bob")[0][1][0] == 2

    def test_clear_keeps_schema_and_indexes(self) -> None:
        data = TableData(customer_schema())
        data.insert((1, "alice", 10.0))
        data.clear()
        assert len(data) == 0
        assert "pk_customer" in data.indexes()
        data.insert((1, "alice", 10.0))
        assert len(data) == 1

    def test_get_missing_row_raises(self) -> None:
        data = TableData(customer_schema())
        with pytest.raises(SqlExecutionError):
            data.get(99)
