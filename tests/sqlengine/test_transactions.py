"""Transaction semantics: rollback, savepoints, statement atomicity.

The acceptance bar for the transaction subsystem: ROLLBACK after a mix of
INSERT/UPDATE/DELETE restores the table rows *and every index* to a
byte-identical state.
"""

from __future__ import annotations

import pytest

from repro.sqlengine import Database, SqlExecutionError
from repro.sqlengine.indexes import HashIndex, OrderedIndex


def make_db() -> Database:
    db = Database()
    db.execute(
        "CREATE TABLE account (id INTEGER PRIMARY KEY, owner VARCHAR(32), "
        "balance INTEGER)"
    )
    db.create_index("account", ["owner"], name="idx_owner")
    db.create_index("account", ["balance"], name="idx_balance", ordered=True)
    db.execute_many(
        "INSERT INTO account (id, owner, balance) VALUES (?, ?, ?)",
        [(1, "alice", 100), (2, "bob", 200), (3, "carol", 300)],
    )
    return db


def snapshot(db: Database, table: str) -> dict:
    """Capture rows, live count and the full internal state of every index."""
    data = db.table_data(table)
    state: dict[str, object] = {
        "rows": list(data._rows),
        "live": len(data),
    }
    for name, index in data.indexes().items():
        if isinstance(index, OrderedIndex):
            state[name] = (list(index._keys), list(index._row_ids))
        elif isinstance(index, HashIndex):
            state[name] = {key: sorted(ids) for key, ids in index._entries.items()}
    return state


class TestRollback:
    def test_rollback_restores_rows_and_indexes_byte_identical(self) -> None:
        db = make_db()
        before = snapshot(db, "account")
        session = db.session()
        session.execute("BEGIN")
        session.execute(
            "INSERT INTO account (id, owner, balance) VALUES (4, 'dave', 400)"
        )
        session.execute("UPDATE account SET owner = 'ALICE', balance = 1 WHERE id = 1")
        session.execute("DELETE FROM account WHERE id = 2")
        session.execute("UPDATE account SET balance = balance + 7")
        assert db.row_count("account") == 3  # 3 - 1 deleted + 1 inserted
        session.execute("ROLLBACK")
        assert snapshot(db, "account") == before
        assert db.row_count("account") == 3
        assert sorted(db.execute("SELECT id, owner, balance FROM account").rows) == [
            (1, "alice", 100),
            (2, "bob", 200),
            (3, "carol", 300),
        ]

    def test_commit_makes_changes_durable(self) -> None:
        db = make_db()
        session = db.session()
        session.execute("BEGIN")
        session.execute("UPDATE account SET balance = 0 WHERE id = 1")
        session.execute("COMMIT")
        session.execute("ROLLBACK")  # no-op: nothing open
        assert db.execute("SELECT balance FROM account WHERE id = 1").rows == [(0,)]

    def test_rollback_restores_after_delete_and_reinsert_same_key(self) -> None:
        db = make_db()
        before = snapshot(db, "account")
        session = db.session()
        session.execute("BEGIN")
        session.execute("DELETE FROM account WHERE id = 1")
        session.execute(
            "INSERT INTO account (id, owner, balance) VALUES (1, 'eve', 5)"
        )
        session.execute("ROLLBACK")
        assert snapshot(db, "account") == before

    def test_rolled_back_insert_frees_unique_key(self) -> None:
        db = make_db()
        session = db.session()
        session.execute("BEGIN")
        session.execute(
            "INSERT INTO account (id, owner, balance) VALUES (9, 'zoe', 1)"
        )
        session.execute("ROLLBACK")
        # The primary key must be reusable after the rollback.
        db.execute("INSERT INTO account (id, owner, balance) VALUES (9, 'zoe', 1)")
        assert db.row_count("account") == 4

    def test_transaction_spans_multiple_tables(self) -> None:
        db = make_db()
        db.execute("CREATE TABLE audit (id INTEGER PRIMARY KEY, note TEXT)")
        before_account = snapshot(db, "account")
        before_audit = snapshot(db, "audit")
        session = db.session()
        session.execute("BEGIN")
        session.execute("INSERT INTO audit (id, note) VALUES (1, 'x')")
        session.execute("DELETE FROM account WHERE id = 3")
        session.execute("ROLLBACK")
        assert snapshot(db, "account") == before_account
        assert snapshot(db, "audit") == before_audit


class TestStatementAtomicity:
    def test_failed_multi_row_insert_is_atomic(self) -> None:
        db = make_db()
        before = snapshot(db, "account")
        with pytest.raises(SqlExecutionError):
            # Third row violates the primary key; the earlier rows of the
            # same statement must be undone too.
            db.execute(
                "INSERT INTO account (id, owner, balance) "
                "VALUES (10, 'x', 1), (11, 'y', 2), (1, 'dup', 3)"
            )
        assert snapshot(db, "account") == before

    def test_failed_statement_keeps_transaction_alive(self) -> None:
        db = make_db()
        session = db.session()
        session.execute("BEGIN")
        session.execute("UPDATE account SET balance = 999 WHERE id = 2")
        with pytest.raises(SqlExecutionError):
            session.execute(
                "INSERT INTO account (id, owner, balance) VALUES (1, 'dup', 0)"
            )
        # The earlier statement of the transaction is still in effect
        # inside the transaction...
        assert session.execute(
            "SELECT balance FROM account WHERE id = 2"
        ).rows == [(999,)]
        # ...while other sessions still see the committed state (snapshot
        # isolation: no dirty reads)...
        assert db.execute("SELECT balance FROM account WHERE id = 2").rows == [(200,)]
        # ...and it commits fine.
        session.execute("COMMIT")
        assert db.execute("SELECT balance FROM account WHERE id = 2").rows == [(999,)]


class TestSavepoints:
    def test_partial_rollback_to_savepoint(self) -> None:
        db = make_db()
        session = db.session()
        session.execute("BEGIN")
        session.execute("INSERT INTO account (id, owner, balance) VALUES (4, 'd', 1)")
        session.execute("SAVEPOINT sp1")
        session.execute("INSERT INTO account (id, owner, balance) VALUES (5, 'e', 2)")
        session.execute("UPDATE account SET balance = 0 WHERE id = 4")
        session.execute("ROLLBACK TO SAVEPOINT sp1")
        # Work after the savepoint is undone; work before it survives —
        # visible inside the transaction, and to everyone after COMMIT.
        assert session.execute(
            "SELECT balance FROM account WHERE id = 4"
        ).rows == [(1,)]
        assert session.execute("SELECT id FROM account WHERE id = 5").rows == []
        assert db.execute("SELECT id FROM account WHERE id = 4").rows == []
        session.execute("COMMIT")
        assert db.execute("SELECT balance FROM account WHERE id = 4").rows == [(1,)]

    def test_savepoint_survives_rollback_to_it(self) -> None:
        db = make_db()
        session = db.session()
        session.execute("BEGIN")
        session.execute("SAVEPOINT sp1")
        session.execute("DELETE FROM account WHERE id = 1")
        session.execute("ROLLBACK TO sp1")
        session.execute("DELETE FROM account WHERE id = 2")
        session.execute("ROLLBACK TO sp1")  # still valid, standard SQL
        session.execute("COMMIT")
        assert db.row_count("account") == 3

    def test_release_savepoint_keeps_changes(self) -> None:
        db = make_db()
        session = db.session()
        session.execute("BEGIN")
        session.execute("SAVEPOINT sp1")
        session.execute("DELETE FROM account WHERE id = 1")
        session.execute("RELEASE SAVEPOINT sp1")
        with pytest.raises(SqlExecutionError):
            session.execute("ROLLBACK TO sp1")
        session.execute("COMMIT")
        assert db.row_count("account") == 2

    def test_savepoint_requires_transaction(self) -> None:
        db = make_db()
        session = db.session()
        with pytest.raises(SqlExecutionError):
            session.execute("SAVEPOINT sp1")

    def test_rollback_to_unknown_savepoint_raises(self) -> None:
        db = make_db()
        session = db.session()
        session.execute("BEGIN")
        with pytest.raises(SqlExecutionError):
            session.execute("ROLLBACK TO missing")


class TestSessionApi:
    def test_nested_begin_raises(self) -> None:
        session = make_db().session()
        session.execute("BEGIN")
        with pytest.raises(SqlExecutionError):
            session.execute("BEGIN")

    def test_context_manager_commits_on_success(self) -> None:
        db = make_db()
        with db.session() as session:
            session.begin()
            session.execute("UPDATE account SET balance = 1 WHERE id = 1")
        assert db.execute("SELECT balance FROM account WHERE id = 1").rows == [(1,)]

    def test_context_manager_rolls_back_on_error(self) -> None:
        db = make_db()
        with pytest.raises(RuntimeError):
            with db.session() as session:
                session.begin()
                session.execute("UPDATE account SET balance = 1 WHERE id = 1")
                raise RuntimeError("boom")
        assert db.execute("SELECT balance FROM account WHERE id = 1").rows == [(100,)]

    def test_non_autocommit_session_holds_changes_until_commit(self) -> None:
        db = make_db()
        session = db.session(autocommit=False)
        session.execute("UPDATE account SET balance = 42 WHERE id = 1")
        assert session.in_transaction
        session.execute("ROLLBACK")
        assert db.execute("SELECT balance FROM account WHERE id = 1").rows == [(100,)]

    def test_execute_many_is_atomic(self) -> None:
        db = make_db()
        before = snapshot(db, "account")
        with pytest.raises(SqlExecutionError):
            db.execute_many(
                "INSERT INTO account (id, owner, balance) VALUES (?, ?, ?)",
                [(20, "u", 1), (21, "v", 2), (2, "dup", 3)],
            )
        assert snapshot(db, "account") == before
