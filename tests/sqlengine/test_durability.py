"""Unit tests for the durability subsystem: WAL codec and framing, group
commit, checkpoints, DDL replay and engine open/close semantics."""

from __future__ import annotations

import os
import threading

import pytest

from repro.sqlengine.durability import DurabilityOptions
from repro.sqlengine.durability import wal
from repro.sqlengine.durability.recovery import list_wal_epochs, wal_path
from repro.sqlengine.durability.snapshot import SNAPSHOT_NAME
from repro.sqlengine.engine import Database
from repro.sqlengine.errors import SqlExecutionError


def durable_db(path, fsync="off", **options) -> Database:
    """A durable engine on ``path`` (fsync off keeps the suite fast)."""
    return Database(
        data_dir=str(path),
        durability=DurabilityOptions(fsync=fsync, **options),
    )


# -- value codec -------------------------------------------------------------


class TestCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            1,
            -1,
            2**40,
            -(2**40),
            2**100,
            -(2**100),
            0.0,
            -2.5,
            1e300,
            "",
            "hello",
            "naïve — ünïcödé ✓",
            "with 'quotes' and \"doubles\"",
        ],
    )
    def test_value_round_trip(self, value) -> None:
        out = bytearray()
        wal.encode_value(value, out)
        decoded, offset = wal.decode_value(bytes(out), 0)
        assert decoded == value
        assert type(decoded) is type(value)
        assert offset == len(out)

    def test_row_round_trip(self) -> None:
        row = (1, "x", None, 2.5, True, False, -7)
        out = bytearray()
        wal.encode_row(row, out)
        decoded, offset = wal.decode_row(bytes(out), 0)
        assert decoded == row
        assert offset == len(out)

    def test_unencodable_value_raises(self) -> None:
        with pytest.raises(wal.WalError):
            wal.encode_value(object(), bytearray())

    def test_record_round_trips(self) -> None:
        records = [
            wal.encode_marker(wal.BEGIN, 7),
            wal.encode_insert(7, "t", 3, (1, "a")),
            wal.encode_update(7, "t", 3, (1, "b")),
            wal.encode_delete(7, "t", 3),
            wal.encode_marker(wal.COMMIT, 7),
            wal.encode_marker(wal.ABORT, 8),
            wal.encode_ddl({"kind": "drop_table", "table": "t"}),
            wal.encode_checkpoint(4),
        ]
        decoded = [wal.decode_record(payload) for payload in records]
        assert [record.kind for record in decoded] == [
            wal.BEGIN, wal.INSERT, wal.UPDATE, wal.DELETE,
            wal.COMMIT, wal.ABORT, wal.DDL, wal.CHECKPOINT,
        ]
        assert decoded[1].row == (1, "a")
        assert decoded[2].row == (1, "b")
        assert decoded[3].table == "t" and decoded[3].row_id == 3
        assert decoded[6].payload == {"kind": "drop_table", "table": "t"}
        assert decoded[7].epoch == 4


# -- framing and torn tails --------------------------------------------------


class TestFraming:
    def payloads(self) -> list[bytes]:
        return [b"alpha", b"beta-beta", b"g"]

    def test_frames_round_trip(self) -> None:
        data = b"".join(wal.frame(payload) for payload in self.payloads())
        assert [p for p, _ in wal.read_frames(data)] == self.payloads()

    def test_every_truncation_yields_a_prefix(self) -> None:
        """Cutting the stream at ANY byte offset yields an intact prefix of
        the original frames — never garbage, never an exception."""
        data = b"".join(wal.frame(payload) for payload in self.payloads())
        for cut in range(len(data) + 1):
            recovered = [p for p, _ in wal.read_frames(data[:cut])]
            assert recovered == self.payloads()[: len(recovered)]

    def test_corrupt_byte_stops_the_scan(self) -> None:
        data = bytearray(b"".join(wal.frame(p) for p in self.payloads()))
        # Flip a byte inside the second frame's payload.
        first_len = len(wal.frame(self.payloads()[0]))
        data[first_len + 5] ^= 0xFF
        recovered = [p for p, _ in wal.read_frames(bytes(data))]
        assert recovered == self.payloads()[:1]

    def test_absurd_length_prefix_is_corruption(self) -> None:
        data = (2**31 + 7).to_bytes(4, "little") + b"x" * 64
        assert list(wal.read_frames(data)) == []


# -- writer policies and group commit ----------------------------------------


class TestWalWriter:
    def test_rejects_unknown_policy(self, tmp_path) -> None:
        with pytest.raises(wal.WalError):
            wal.WalWriter(str(tmp_path / "w.log"), fsync="sometimes")
        with pytest.raises(wal.WalError):
            DurabilityOptions(fsync="sometimes")

    @pytest.mark.parametrize("fsync", ["always", "group", "off"])
    def test_append_sync_read_back(self, tmp_path, fsync) -> None:
        path = str(tmp_path / "w.log")
        writer = wal.WalWriter(path, fsync=fsync)
        seq = writer.append([wal.encode_marker(wal.BEGIN, 1),
                             wal.encode_marker(wal.COMMIT, 1)])
        writer.sync(seq)
        writer.close()
        kinds = [record.kind for record, _ in wal.read_wal(path)]
        assert kinds == [wal.BEGIN, wal.COMMIT]

    def test_group_commit_coalesces_syncs(self, tmp_path) -> None:
        """N threads committing concurrently must all become durable while
        issuing (usually far) fewer fsyncs than commits."""
        writer = wal.WalWriter(str(tmp_path / "w.log"), fsync="group")
        threads = 8
        commits_per_thread = 25
        barrier = threading.Barrier(threads)
        errors: list[BaseException] = []

        def committer(base: int) -> None:
            try:
                barrier.wait()
                for i in range(commits_per_thread):
                    txn = base * 1000 + i
                    seq = writer.append(wal.redo_records(txn, []))
                    writer.sync(seq)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        workers = [
            threading.Thread(target=committer, args=(t,)) for t in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert not errors
        assert writer.batches_appended == threads * commits_per_thread
        records = list(wal.read_wal(writer.path))
        assert len(records) == threads * commits_per_thread * 2  # BEGIN+COMMIT
        writer.close()


# -- engine-level durability -------------------------------------------------


class TestEngineDurability:
    def test_in_memory_database_has_no_durability(self, tmp_path) -> None:
        database = Database()
        assert not database.durable
        assert database.data_dir is None
        assert database.durability_info() == {}
        assert database.checkpoint() is False
        database.close()  # no-op, must not raise

    def test_durability_options_require_data_dir(self) -> None:
        with pytest.raises(SqlExecutionError):
            Database(durability=DurabilityOptions())

    def test_committed_data_survives_reopen(self, tmp_path) -> None:
        with durable_db(tmp_path) as database:
            database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR)")
            database.execute_many(
                "INSERT INTO t (id, v) VALUES (?, ?)",
                [(i, f"v{i}") for i in range(10)],
            )
            database.execute("UPDATE t SET v = ? WHERE id = ?", ("changed", 3))
            database.execute("DELETE FROM t WHERE id = ?", (7,))
        with durable_db(tmp_path) as reopened:
            rows = reopened.execute("SELECT id, v FROM t ORDER BY id").rows
        assert rows == [
            (i, "changed" if i == 3 else f"v{i}") for i in range(10) if i != 7
        ]

    def test_uncommitted_and_rolled_back_work_is_invisible(self, tmp_path) -> None:
        database = durable_db(tmp_path)
        database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        database.execute("INSERT INTO t (id) VALUES (?)", (1,))
        rolled_back = database.session(autocommit=False)
        rolled_back.execute("INSERT INTO t (id) VALUES (?)", (2,))
        rolled_back.rollback()
        open_txn = database.session(autocommit=False)
        open_txn.execute("INSERT INTO t (id) VALUES (?)", (3,))
        # Simulated crash: neither close() nor commit for the open session.
        recovered = durable_db(tmp_path)
        assert recovered.execute("SELECT id FROM t").rows == [(1,)]

    def test_savepoint_partial_rollback_is_durable(self, tmp_path) -> None:
        database = durable_db(tmp_path)
        database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        session = database.session(autocommit=False)
        session.execute("INSERT INTO t (id) VALUES (?)", (1,))
        session.execute("SAVEPOINT s1")
        session.execute("INSERT INTO t (id) VALUES (?)", (2,))
        session.execute("ROLLBACK TO s1")
        session.execute("INSERT INTO t (id) VALUES (?)", (3,))
        session.commit()
        recovered = durable_db(tmp_path)
        assert recovered.execute("SELECT id FROM t ORDER BY id").rows == [(1,), (3,)]

    def test_ddl_is_replayed(self, tmp_path) -> None:
        database = durable_db(tmp_path)
        database.execute("CREATE TABLE keep (id INTEGER PRIMARY KEY, k VARCHAR)")
        database.execute("CREATE TABLE gone (id INTEGER PRIMARY KEY)")
        database.execute("CREATE INDEX idx_keep_k ON keep (k)")
        database.create_index("keep", ["id", "k"], name="native_idx", ordered=True)
        database.execute("DROP TABLE gone")
        database.execute("INSERT INTO keep (id, k) VALUES (?, ?)", (1, "a"))
        recovered = durable_db(tmp_path)
        assert recovered.catalog.has_table("keep")
        assert not recovered.catalog.has_table("gone")
        indexes = recovered.table_data("keep").indexes()
        assert {"pk_keep", "idx_keep_k", "native_idx"} <= set(indexes)
        assert recovered.execute("SELECT k FROM keep WHERE id = ?", (1,)).rows == [("a",)]

    def test_bulk_insert_rows_is_journalled(self, tmp_path) -> None:
        from repro.sqlengine.catalog import ColumnSchema, SqlType, TableSchema

        database = durable_db(tmp_path)
        schema = TableSchema(
            name="bulk",
            columns=(
                ColumnSchema("id", SqlType.INTEGER, primary_key=True),
                ColumnSchema("v", SqlType.TEXT),
            ),
        )
        database.create_table(schema)
        database.insert_rows("bulk", [(i, f"v{i}") for i in range(50)])
        recovered = durable_db(tmp_path)
        assert recovered.row_count("bulk") == 50

    def test_explicit_checkpoint_truncates_the_log(self, tmp_path) -> None:
        database = durable_db(tmp_path)
        database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        database.execute_many(
            "INSERT INTO t (id) VALUES (?)", [(i,) for i in range(20)]
        )
        epochs_before = list_wal_epochs(str(tmp_path))
        log_bytes_before = database.durability_info()["log_bytes"]
        database.execute("CHECKPOINT")
        assert os.path.exists(tmp_path / SNAPSHOT_NAME)
        epochs_after = list_wal_epochs(str(tmp_path))
        assert len(epochs_after) == 1
        assert epochs_after[0] > max(epochs_before)
        assert database.durability_info()["log_bytes"] < log_bytes_before
        # Post-checkpoint commits land in the new epoch and still recover.
        database.execute("INSERT INTO t (id) VALUES (?)", (99,))
        recovered = durable_db(tmp_path)
        assert recovered.row_count("t") == 21
        assert recovered.durability_info()["recovered_transactions"] == 1

    def test_checkpoint_statement_rejected_inside_transaction(self, tmp_path) -> None:
        database = durable_db(tmp_path)
        database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        session = database.session(autocommit=False)
        session.execute("INSERT INTO t (id) VALUES (?)", (1,))
        with pytest.raises(SqlExecutionError):
            session.execute("CHECKPOINT")
        session.rollback()

    def test_automatic_checkpoint_by_log_size(self, tmp_path) -> None:
        database = durable_db(tmp_path, checkpoint_log_bytes=512)
        database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, pad VARCHAR)")
        for i in range(40):
            database.execute(
                "INSERT INTO t (id, pad) VALUES (?, ?)", (i, "x" * 64)
            )
        info = database.durability_info()
        assert info["checkpoints_taken"] >= 1
        recovered = durable_db(tmp_path)
        assert recovered.row_count("t") == 40

    def test_recovered_statistics_match_a_fresh_rebuild(self, tmp_path) -> None:
        database = durable_db(tmp_path)
        database.execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, grp INTEGER, v VARCHAR)"
        )
        database.execute("CREATE INDEX idx_t_grp ON t (grp)")
        database.execute_many(
            "INSERT INTO t (id, grp, v) VALUES (?, ?, ?)",
            [(i, i % 7, f"v{i}") for i in range(60)],
        )
        database.execute("DELETE FROM t WHERE grp = ?", (3,))
        expected = database.table_data("t").statistics()

        recovered = durable_db(tmp_path)
        fresh = Database()
        fresh.execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, grp INTEGER, v VARCHAR)"
        )
        fresh.execute("CREATE INDEX idx_t_grp ON t (grp)")
        for row in database.execute("SELECT id, grp, v FROM t").rows:
            fresh.execute("INSERT INTO t (id, grp, v) VALUES (?, ?, ?)", row)

        for candidate in (recovered.table_data("t"), fresh.table_data("t")):
            statistics = candidate.statistics()
            assert statistics.row_count == expected.row_count
            assert statistics.column_distinct == expected.column_distinct
            assert statistics.index_distinct == expected.index_distinct

    def test_plans_work_identically_after_restart(self, tmp_path) -> None:
        database = durable_db(tmp_path)
        database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR)")
        database.execute_many(
            "INSERT INTO t (id, v) VALUES (?, ?)",
            [(i, f"v{i}") for i in range(32)],
        )
        sql = "SELECT v FROM t WHERE id = ?"
        before = database.explain(sql)
        recovered = durable_db(tmp_path)
        assert recovered.explain(sql) == before
        recovered.execute(sql, (5,))
        recovered.execute(sql, (6,))
        info = recovered.statement_cache_info()
        assert info["hits"] >= 1  # the plan cache works on the recovered engine

    def test_close_is_idempotent_and_connection_context_manager(self, tmp_path) -> None:
        from repro.dbapi import connect

        database = durable_db(tmp_path)
        database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        with connect(database, auto_commit=False) as connection:
            statement = connection.prepare_statement("INSERT INTO t (id) VALUES (?)")
            statement.set_int(1, 1)
            statement.execute_update()
        assert connection.closed
        with pytest.raises(RuntimeError):
            with connect(database, auto_commit=False) as connection:
                statement = connection.prepare_statement("INSERT INTO t (id) VALUES (?)")
                statement.set_int(1, 2)
                statement.execute_update()
                raise RuntimeError("boom")
        assert connection.closed
        database.close()
        database.close()
        recovered = durable_db(tmp_path)
        assert recovered.execute("SELECT id FROM t").rows == [(1,)]


class TestCheckpointCommitRace:
    def test_stale_sync_ticket_returns_after_log_rotation(self, tmp_path) -> None:
        """A committer may obtain its sync ticket, lose the CPU, and only
        call sync() after a concurrent checkpoint rotated the log.  The
        ticket is bound to the original writer (whose close() marked every
        appended batch synced), so the late sync must return immediately —
        not spin against the new writer's restarted sequence numbers."""
        from repro.sqlengine.catalog import Catalog
        from repro.sqlengine.durability.manager import DurabilityManager

        manager = DurabilityManager(
            str(tmp_path), DurabilityOptions(fsync="group"), Catalog(), {}
        )
        manager.log_commit([])
        ticket = manager.log_commit([])  # sequence 2: beyond the fresh
        # writer's post-rotation frontier, so syncing it against the wrong
        # writer could never succeed.
        manager.checkpoint()  # rotates to a fresh writer (sequences restart)
        syncer = threading.Thread(target=manager.sync, args=(ticket,))
        syncer.start()
        syncer.join(timeout=5.0)
        assert not syncer.is_alive(), "sync() of a pre-rotation ticket hung"

    def test_commits_racing_checkpoints_stay_durable(self, tmp_path) -> None:
        """Concurrent committers with an aggressive auto-checkpoint trigger:
        every commit must survive, and nothing may deadlock."""
        database = durable_db(
            tmp_path, fsync="group", checkpoint_log_bytes=256
        )
        database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, pad VARCHAR)")
        threads, per_thread = 4, 30
        barrier = threading.Barrier(threads)
        errors: list[BaseException] = []

        def worker(base: int) -> None:
            try:
                session = database.session(autocommit=False)
                barrier.wait()
                for i in range(per_thread):
                    session.execute(
                        "INSERT INTO t (id, pad) VALUES (?, ?)",
                        (base * 1000 + i, "x" * 40),
                    )
                    session.commit()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        workers = [
            threading.Thread(target=worker, args=(t,)) for t in range(threads)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join(timeout=30.0)
        assert not any(thread.is_alive() for thread in workers), "hung"
        assert not errors
        assert database.durability_info()["checkpoints_taken"] >= 1
        recovered = durable_db(tmp_path)
        assert recovered.row_count("t") == threads * per_thread


class TestPartialSchemaRecovery:
    def test_crash_mid_schema_creation_self_heals(self, tmp_path) -> None:
        """Each CREATE TABLE is logged individually, so a crash between two
        of them leaves a partial schema on disk; reopening through the ORM
        must create only the missing tables instead of raising."""
        from repro.orm import QueryllDatabase
        from repro.testing import BANK_CLIENTS, make_bank_mapping

        mapping = make_bank_mapping()
        half_done = durable_db(tmp_path)
        first = mapping.entity(mapping.entity_names()[0])
        half_done.create_table(first.to_table_schema())
        # Crash: no close, remaining tables never created.

        orm = QueryllDatabase(make_bank_mapping(), data_dir=str(tmp_path))
        for name in mapping.entity_names():
            assert orm.database.catalog.has_table(mapping.entity(name).table)
        orm.database.insert_rows("Client", BANK_CLIENTS)
        em = orm.begin_transaction()
        assert em.find("Client", 1000) is not None


class TestCheckpointTransactionIsolation:
    def test_checkpoint_rejected_while_any_write_transaction_open(self, tmp_path) -> None:
        """The write lock is same-thread reentrant, so CHECKPOINT must
        refuse while a *sibling* session holds uncommitted changes — a
        snapshot of them would survive that session's rollback."""
        database = durable_db(tmp_path)
        database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        open_txn = database.session(autocommit=False)
        open_txn.execute("INSERT INTO t (id) VALUES (?)", (100,))
        with pytest.raises(SqlExecutionError):
            database.checkpoint()
        open_txn.rollback()
        assert database.checkpoint() is True

    def test_auto_checkpoint_defers_around_open_transactions(self, tmp_path) -> None:
        """The log-size trigger must skip (not snapshot) while a sibling
        session's transaction is open, and rolled-back rows must never be
        resurrected by recovery."""
        database = durable_db(tmp_path, checkpoint_log_bytes=64)
        database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, pad VARCHAR)")
        doomed = database.session(autocommit=False)
        doomed.execute("INSERT INTO t (id, pad) VALUES (?, ?)", (100, "x" * 80))
        # Sibling auto-commit sessions fire the trigger repeatedly while
        # the doomed transaction stays open on the same thread.
        for i in range(5):
            database.execute(
                "INSERT INTO t (id, pad) VALUES (?, ?)", (i, "y" * 80)
            )
        doomed.rollback()
        database.execute("INSERT INTO t (id, pad) VALUES (?, ?)", (50, "z"))
        recovered = durable_db(tmp_path)
        ids = sorted(row[0] for row in recovered.execute("SELECT id FROM t").rows)
        assert ids == [0, 1, 2, 3, 4, 50]  # 100 must not be resurrected
        # With no transaction open, the deferred trigger eventually fires.
        assert recovered.durability_info()["checkpoints_taken"] >= 0


class TestCommitFailureReleasesLock:
    def test_failed_wal_append_rolls_back_and_frees_the_database(self, tmp_path) -> None:
        """If the commit-time log append raises (closed file standing in
        for ENOSPC/EIO), the transaction must roll back and the write lock
        must be released — not leak and wedge every other session."""
        database = durable_db(tmp_path)
        database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        database.execute("INSERT INTO t (id) VALUES (?)", (1,))
        database.close()  # further appends raise ValueError (closed file)
        with pytest.raises(ValueError):
            database.execute("INSERT INTO t (id) VALUES (?)", (2,))
        # The database is not wedged: reads and sibling sessions work, and
        # the failed transaction's changes were rolled back in memory.
        assert database.execute("SELECT id FROM t").rows == [(1,)]
        other = database.session(autocommit=False)
        other.execute("DELETE FROM t WHERE id = ?", (1,))
        other.rollback()
        recovered = durable_db(tmp_path)
        assert recovered.execute("SELECT id FROM t").rows == [(1,)]


class TestDdlTransactionOrdering:
    def test_ddl_after_pending_row_ops_is_rejected(self, tmp_path) -> None:
        """DDL is logged at execution position but row ops only at COMMIT;
        allowing DDL after pending changes would replay in a different
        order than live execution (e.g. a unique index backfilled before
        the DELETE that made it satisfiable) and wedge recovery."""
        database = durable_db(tmp_path)
        database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER)")
        database.execute_many(
            "INSERT INTO t (id, k) VALUES (?, ?)", [(1, 7), (2, 7)]
        )
        session = database.session(autocommit=False)
        session.execute("DELETE FROM t WHERE id = ?", (1,))
        with pytest.raises(SqlExecutionError, match="DDL"):
            session.execute("CREATE UNIQUE INDEX u_k ON t (k)")
        session.commit()
        # After the commit the same DDL is fine, and recovery replays it.
        database.execute("CREATE UNIQUE INDEX u_k ON t (k)")
        recovered = durable_db(tmp_path)
        assert "u_k" in recovered.table_data("t").indexes()
        assert recovered.execute("SELECT id FROM t").rows == [(2,)]

    def test_ddl_first_in_transaction_is_allowed(self, tmp_path) -> None:
        """BEGIN; CREATE TABLE; INSERT; COMMIT — DDL before any row ops
        keeps log order equal to execution order and must keep working."""
        database = durable_db(tmp_path)
        session = database.session(autocommit=False)
        session.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        session.execute("INSERT INTO t (id) VALUES (?)", (1,))
        session.commit()
        recovered = durable_db(tmp_path)
        assert recovered.execute("SELECT id FROM t").rows == [(1,)]

    def test_in_memory_ddl_inside_transaction_unchanged(self) -> None:
        """The restriction is durability-specific; in-memory keeps the old
        (non-transactional DDL) behaviour."""
        database = Database()
        database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        session = database.session(autocommit=False)
        session.execute("INSERT INTO t (id) VALUES (?)", (1,))
        session.execute("CREATE INDEX idx ON t (id)")
        session.commit()
        assert "idx" in database.table_data("t").indexes()


class TestBulkLoadFailureConsistency:
    def test_failed_bulk_load_leaves_no_unlogged_rows(self, tmp_path) -> None:
        """A mid-stream failure in insert_rows must undo the rows already
        inserted: otherwise they stay visible in memory but absent from
        the log, and a restart recovers a state that never existed."""
        from repro.sqlengine.errors import SqlTypeError

        database = durable_db(tmp_path)
        database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        rows = [(1,), (2,), ("not-an-int",)]
        with pytest.raises(SqlTypeError):
            database.insert_rows("t", rows)
        assert database.row_count("t") == 0
        recovered = durable_db(tmp_path)
        assert recovered.row_count("t") == 0
