"""Tests for the SQL tokenizer."""

from __future__ import annotations

import pytest

from repro.sqlengine.errors import SqlParseError
from repro.sqlengine.lexer import TokenType, tokenize


def kinds(sql: str) -> list[TokenType]:
    return [token.type for token in tokenize(sql)]


def values(sql: str) -> list[str]:
    return [token.value for token in tokenize(sql)[:-1]]


class TestTokenKinds:
    def test_keywords_are_upper_cased(self) -> None:
        tokens = tokenize("select * from customer")
        assert tokens[0].value == "SELECT"
        assert tokens[0].type is TokenType.KEYWORD
        assert tokens[2].value == "FROM"

    def test_identifiers_preserve_case(self) -> None:
        tokens = tokenize("SELECT C_FNAME FROM Customer")
        assert tokens[1].value == "C_FNAME"
        assert tokens[1].type is TokenType.IDENTIFIER
        assert tokens[3].value == "Customer"

    def test_integer_and_float_literals(self) -> None:
        tokens = tokenize("SELECT 42, 3.5")
        assert tokens[1].type is TokenType.INTEGER
        assert tokens[1].value == "42"
        assert tokens[3].type is TokenType.FLOAT
        assert tokens[3].value == "3.5"

    def test_string_literal(self) -> None:
        tokens = tokenize("SELECT 'Canada'")
        assert tokens[1].type is TokenType.STRING
        assert tokens[1].value == "Canada"

    def test_string_literal_with_escaped_quote(self) -> None:
        tokens = tokenize("SELECT 'O''Brien'")
        assert tokens[1].value == "O'Brien"

    def test_parameter_token(self) -> None:
        tokens = tokenize("WHERE c_id = ?")
        assert tokens[-2].type is TokenType.PARAMETER

    def test_operators(self) -> None:
        text = values("a <= b >= c <> d != e = f < g > h")
        assert "<=" in text and ">=" in text and "<>" in text and "!=" in text

    def test_punctuation_and_dot(self) -> None:
        tokens = tokenize("customer.c_id")
        assert [t.value for t in tokens[:-1]] == ["customer", ".", "c_id"]

    def test_line_comment_is_skipped(self) -> None:
        tokens = tokenize("SELECT 1 -- comment here\n , 2")
        literal_values = [t.value for t in tokens if t.type is TokenType.INTEGER]
        assert literal_values == ["1", "2"]

    def test_quoted_identifier(self) -> None:
        tokens = tokenize('SELECT "Weird Name" FROM t')
        assert tokens[1].type is TokenType.IDENTIFIER
        assert tokens[1].value == "Weird Name"

    def test_eof_is_always_last(self) -> None:
        assert kinds("")[-1] is TokenType.EOF
        assert kinds("SELECT 1")[-1] is TokenType.EOF


class TestLexerErrors:
    def test_unterminated_string_raises(self) -> None:
        with pytest.raises(SqlParseError):
            tokenize("SELECT 'oops")

    def test_unexpected_character_raises(self) -> None:
        with pytest.raises(SqlParseError):
            tokenize("SELECT #")

    def test_error_carries_position(self) -> None:
        with pytest.raises(SqlParseError) as excinfo:
            tokenize("SELECT $")
        assert excinfo.value.position == 7
