"""Hypothesis equivalence properties for the columnar engine: batch and
row execution must return identical result multisets and identical EXPLAIN
cardinality estimates on randomized scan/filter/join/aggregate queries —
including under concurrent MVCC writers, where batch scans exercise the
per-row visibility fallback.

Values are integers (and NULLs) throughout: float SUM folds in a
different order per mode, which is rounding noise, not a planner bug.
"""

from __future__ import annotations

import threading

from hypothesis import given, settings, strategies as st

from repro.sqlengine import Database
from repro.sqlengine.planner import PlannerOptions

_BATCH = PlannerOptions(execution_mode="batch", batch_size=97)
_ROW = PlannerOptions(execution_mode="row")

_rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2000),
        st.one_of(st.none(), st.integers(min_value=-50, max_value=50)),
        st.one_of(st.none(), st.integers(min_value=-1000, max_value=1000)),
    ),
    min_size=0,
    max_size=400,
)

_SCAN_QUERIES = [
    "SELECT a, b, c FROM t",
    "SELECT a FROM t WHERE b = ?",
    "SELECT a, c FROM t WHERE b != ? AND c IS NOT NULL",
    "SELECT a FROM t WHERE c > ? ORDER BY a, c DESC",
    "SELECT a FROM t WHERE b IS NULL",
    "SELECT a FROM t WHERE b IN (?, 0, 7)",
    "SELECT a FROM t WHERE b < c",
    "SELECT a FROM t WHERE a + c > ?",
    "SELECT DISTINCT b FROM t WHERE c >= ?",
    "SELECT COUNT(*), COUNT(b), SUM(c), MIN(c), MAX(b) FROM t",
    "SELECT SUM(c) FROM t WHERE b > ?",
    "SELECT a, b FROM t ORDER BY b, a LIMIT 11 OFFSET 3",
]


def _build(rows: list[tuple]) -> Database:
    database = Database()
    database.execute("CREATE TABLE t (a INTEGER, b INTEGER, c INTEGER)")
    database.insert_rows("t", rows)
    return database


def _run_both(
    database: Database, sql: str, params: tuple = ()
) -> None:
    """Execute under both modes; assert identical multisets and identical
    root cardinality estimates."""
    database.set_planner_options(_BATCH)
    batch_rows = database.execute(sql, params).rows
    batch_root = database.explain(sql).splitlines()[1]
    database.set_planner_options(_ROW)
    row_rows = database.execute(sql, params).rows
    row_root = database.explain(sql).splitlines()[1]
    if "ORDER BY" in sql:
        assert batch_rows == row_rows
    else:
        assert sorted(batch_rows, key=repr) == sorted(row_rows, key=repr)
    assert batch_root.rsplit("(rows=", 1)[-1] == row_root.rsplit("(rows=", 1)[-1], (
        batch_root,
        row_root,
    )


class TestScanEquivalence:
    @given(
        rows=_rows_strategy,
        sql=st.sampled_from(_SCAN_QUERIES),
        value=st.integers(min_value=-60, max_value=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_batch_matches_row(
        self, rows: list[tuple], sql: str, value: int
    ) -> None:
        database = _build(rows)
        params = (value,) if "?" in sql else ()
        _run_both(database, sql, params)


class TestJoinEquivalence:
    @given(
        rows=_rows_strategy,
        dimension=st.lists(
            st.tuples(
                st.integers(min_value=-50, max_value=50),
                st.integers(min_value=0, max_value=9),
            ),
            min_size=0,
            max_size=40,
        ),
        threshold=st.integers(min_value=-500, max_value=500),
    )
    @settings(max_examples=40, deadline=None)
    def test_hash_join_and_aggregate_match(
        self,
        rows: list[tuple],
        dimension: list[tuple[int, int]],
        threshold: int,
    ) -> None:
        database = _build(rows)
        database.execute("CREATE TABLE d (k INTEGER, tag INTEGER)")
        database.insert_rows("d", dimension)
        _run_both(
            database,
            "SELECT t.a, d.tag FROM t, d WHERE t.b = d.k AND t.c > ?",
            (threshold,),
        )
        _run_both(
            database,
            "SELECT COUNT(*), SUM(t.c) FROM t, d WHERE t.b = d.k",
        )


class TestConcurrentWriters:
    @given(
        rows=_rows_strategy.filter(lambda r: len(r) >= 50),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=10, deadline=None)
    def test_snapshot_reads_agree_across_modes_under_writes(
        self, rows: list[tuple], seed: int
    ) -> None:
        """A pinned snapshot must read the same rows in both modes while a
        concurrent writer churns the table (forcing the MVCC fallback scan
        path on the batch side)."""
        database = _build(rows)
        stop = threading.Event()
        errors: list[BaseException] = []

        def churn() -> None:
            step = seed
            try:
                while not stop.is_set():
                    database.execute(
                        "UPDATE t SET c = ? WHERE a = ?",
                        (step, step % 2000),
                    )
                    database.execute("DELETE FROM t WHERE a = ?", ((step * 7) % 2000,))
                    database.execute(
                        "INSERT INTO t (a, b, c) VALUES (?, ?, ?)",
                        (step % 2000, step % 50, step),
                    )
                    step += 1
            except BaseException as error:  # pragma: no cover - test plumbing
                errors.append(error)

        reader = database.session()
        reader.begin()
        # Pin the reader's snapshot before the writer starts.
        baseline = sorted(
            reader.execute("SELECT a, b, c FROM t").rows, key=repr
        )
        writer = threading.Thread(target=churn)
        writer.start()
        try:
            for _ in range(4):
                database.set_planner_options(_BATCH)
                batch_rows = sorted(
                    reader.execute("SELECT a, b, c FROM t").rows, key=repr
                )
                batch_sum = reader.execute("SELECT SUM(c), COUNT(*) FROM t").rows
                database.set_planner_options(_ROW)
                row_rows = sorted(
                    reader.execute("SELECT a, b, c FROM t").rows, key=repr
                )
                row_sum = reader.execute("SELECT SUM(c), COUNT(*) FROM t").rows
                assert batch_rows == baseline
                assert row_rows == baseline
                assert batch_sum == row_sum
        finally:
            stop.set()
            writer.join()
            reader.rollback()
            reader.close()
        assert not errors
        # With the writer stopped and the snapshot released, both modes see
        # the (new) committed state identically.
        _run_both(database, "SELECT a, b, c FROM t")
        assert database.stats()["columnar"]["fallback_scans"] >= 1
