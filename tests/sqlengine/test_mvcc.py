"""MVCC snapshot isolation: visibility, conflicts, counters, and the wire.

The engine's concurrency model (see ``docs/transactions.md``): statements
read under a snapshot and never block, writers take row ownership eagerly,
and the *first updater wins* — the second transaction to touch a row aborts
with :class:`TransactionConflictError`.  These tests pin that contract from
every angle a client can observe it: in-process sessions, the dbapi layer,
the network protocol and the concurrency counters.
"""

from __future__ import annotations

import threading

import pytest

from repro.sqlengine import Database, TransactionConflictError
from repro.sqlengine.errors import SqlExecutionError


def make_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE account (id INTEGER PRIMARY KEY, balance INTEGER)")
    db.execute_many(
        "INSERT INTO account (id, balance) VALUES (?, ?)",
        [(1, 1000), (2, 1000), (3, 1000)],
    )
    return db


class TestSnapshotVisibility:
    def test_open_transaction_writes_are_invisible_to_others(self) -> None:
        db = make_db()
        writer = db.session()
        writer.execute("BEGIN")
        writer.execute("UPDATE account SET balance = 0 WHERE id = 1")
        writer.execute("DELETE FROM account WHERE id = 2")
        writer.execute("INSERT INTO account (id, balance) VALUES (9, 9)")
        # Another session sees the last committed state, not the in-flight
        # transaction — including through the primary-key index.
        reader = db.session()
        assert reader.execute(
            "SELECT balance FROM account WHERE id = 1"
        ).rows == [(1000,)]
        assert reader.execute("SELECT id FROM account WHERE id = 2").rows == [(2,)]
        assert reader.execute("SELECT id FROM account WHERE id = 9").rows == []
        assert len(reader.execute("SELECT id FROM account").rows) == 3
        writer.execute("COMMIT")
        assert sorted(reader.execute("SELECT id FROM account").rows) == [
            (1,), (3,), (9,),
        ]

    def test_explicit_transaction_reads_are_repeatable(self) -> None:
        db = make_db()
        reader = db.session()
        reader.execute("BEGIN")
        before = reader.execute("SELECT id, balance FROM account").rows
        # Commits landing after the snapshot stay invisible until the
        # transaction ends, no matter how often it re-reads.
        db.execute("UPDATE account SET balance = 1 WHERE id = 1")
        db.execute("DELETE FROM account WHERE id = 3")
        assert reader.execute("SELECT id, balance FROM account").rows == before
        assert reader.execute(
            "SELECT balance FROM account WHERE id = 1"
        ).rows == [(1000,)]
        reader.execute("COMMIT")
        assert reader.execute(
            "SELECT balance FROM account WHERE id = 1"
        ).rows == [(1,)]

    def test_transaction_sees_its_own_writes(self) -> None:
        db = make_db()
        session = db.session()
        session.execute("BEGIN")
        session.execute("UPDATE account SET balance = 5 WHERE id = 1")
        session.execute("INSERT INTO account (id, balance) VALUES (7, 70)")
        assert session.execute(
            "SELECT balance FROM account WHERE id = 1"
        ).rows == [(5,)]
        assert session.execute(
            "SELECT balance FROM account WHERE id = 7"
        ).rows == [(70,)]
        session.execute("ROLLBACK")
        assert session.execute("SELECT id FROM account WHERE id = 7").rows == []

    def test_rolled_back_insert_never_becomes_visible(self) -> None:
        db = make_db()
        session = db.session()
        session.execute("BEGIN")
        session.execute("INSERT INTO account (id, balance) VALUES (42, 1)")
        session.execute("ROLLBACK")
        assert db.execute("SELECT id FROM account WHERE id = 42").rows == []
        # The slot freed by the rollback is reusable.
        db.execute("INSERT INTO account (id, balance) VALUES (43, 2)")
        assert db.execute("SELECT balance FROM account WHERE id = 43").rows == [(2,)]


class TestNonBlockingReaders:
    def test_reader_thread_is_not_blocked_by_open_write_transaction(self) -> None:
        # The headline behavioural change versus the old readers-writer
        # lock: an open write transaction on one thread must not stall
        # SELECTs on another.
        db = make_db()
        writer = db.session()
        writer.execute("BEGIN")
        writer.execute("UPDATE account SET balance = 0 WHERE id = 1")
        seen: list[object] = []

        def read() -> None:
            seen.append(
                db.session().execute(
                    "SELECT balance FROM account WHERE id = 1"
                ).rows
            )

        thread = threading.Thread(target=read)
        thread.start()
        thread.join(timeout=10)
        assert not thread.is_alive(), "reader blocked behind an open write txn"
        assert seen == [[(1000,)]]
        writer.execute("ROLLBACK")


class TestWriteWriteConflicts:
    def test_second_updater_of_a_row_loses(self) -> None:
        db = make_db()
        first, second = db.session(), db.session()
        first.execute("BEGIN")
        second.execute("BEGIN")
        first.execute("UPDATE account SET balance = balance + 1 WHERE id = 1")
        with pytest.raises(TransactionConflictError):
            second.execute("UPDATE account SET balance = balance + 7 WHERE id = 1")
        second.execute("ROLLBACK")
        first.execute("COMMIT")
        assert db.execute("SELECT balance FROM account WHERE id = 1").rows == [
            (1001,)
        ]

    def test_commit_after_snapshot_conflicts(self) -> None:
        # First updater wins even when it already committed: the second
        # transaction's snapshot predates the commit, so updating on top of
        # it would silently drop the first update.
        db = make_db()
        late = db.session()
        late.execute("BEGIN")
        assert late.execute("SELECT balance FROM account WHERE id = 1").rows == [
            (1000,)
        ]
        db.execute("UPDATE account SET balance = balance + 1 WHERE id = 1")
        with pytest.raises(TransactionConflictError):
            late.execute("UPDATE account SET balance = balance + 7 WHERE id = 1")
        late.execute("ROLLBACK")
        assert db.execute("SELECT balance FROM account WHERE id = 1").rows == [
            (1001,)
        ]

    def test_loser_can_retry_and_succeed(self) -> None:
        db = make_db()
        loser = db.session()
        loser.execute("BEGIN")
        db.execute("UPDATE account SET balance = balance + 1 WHERE id = 1")
        with pytest.raises(TransactionConflictError):
            loser.execute("UPDATE account SET balance = balance + 7 WHERE id = 1")
        loser.execute("ROLLBACK")
        # A fresh transaction sees the winner's commit and applies cleanly.
        loser.execute("BEGIN")
        loser.execute("UPDATE account SET balance = balance + 7 WHERE id = 1")
        loser.execute("COMMIT")
        assert db.execute("SELECT balance FROM account WHERE id = 1").rows == [
            (1008,)
        ]

    def test_autocommit_statements_retry_transparently(self) -> None:
        # Engine-side retry: an auto-commit UPDATE that loses a conflict is
        # re-run against a fresh snapshot instead of surfacing the error.
        db = make_db()
        barrier = threading.Barrier(2, timeout=10)
        errors: list[BaseException] = []

        def bump() -> None:
            session = db.session()
            try:
                barrier.wait()
                for _ in range(50):
                    session.execute(
                        "UPDATE account SET balance = balance + 1 WHERE id = 3"
                    )
            except BaseException as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=bump) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []
        assert db.execute("SELECT balance FROM account WHERE id = 3").rows == [
            (1100,)
        ]

    def test_conflict_propagates_through_dbapi(self) -> None:
        from repro.dbapi import connect

        db = make_db()
        winner = connect(db, auto_commit=False)
        loser = connect(db, auto_commit=False)
        take = winner.prepare_statement(
            "UPDATE account SET balance = balance - 1 WHERE id = 1"
        )
        assert take.execute_update() == 1
        steal = loser.prepare_statement(
            "UPDATE account SET balance = balance - 2 WHERE id = 1"
        )
        with pytest.raises(TransactionConflictError):
            steal.execute_update()
        loser.rollback()
        winner.commit()
        assert db.execute("SELECT balance FROM account WHERE id = 1").rows == [
            (999,)
        ]


class TestConflictOverTheWire:
    def test_conflict_round_trips_as_typed_error(self) -> None:
        from repro import netclient
        from repro.server import SqlServer

        db = make_db()
        with SqlServer(database=db) as server:
            winner = netclient.connect(*server.address, auto_commit=False)
            loser = netclient.connect(*server.address, auto_commit=False)
            try:
                statement = winner.prepare_statement(
                    "UPDATE account SET balance = balance + 1 WHERE id = 2"
                )
                assert statement.execute_update() == 1
                with pytest.raises(TransactionConflictError):
                    loser.prepare_statement(
                        "UPDATE account SET balance = balance + 9 WHERE id = 2"
                    ).execute_update()
                loser.rollback()
                winner.commit()
            finally:
                loser.close()
                winner.close()
        assert db.execute("SELECT balance FROM account WHERE id = 2").rows == [
            (1001,)
        ]


class TestConcurrencyCounters:
    def test_stats_document_shape(self) -> None:
        db = make_db()
        stats = db.stats()["mvcc"]
        for field in (
            "last_committed",
            "active_snapshots",
            "active_write_transactions",
            "oldest_snapshot_age_s",
            "commits",
            "aborts",
            "conflicts",
            "retries",
            "versions_gced",
            "gc_backlog",
        ):
            assert field in stats, field

    def test_commits_aborts_and_conflicts_are_counted(self) -> None:
        db = make_db()
        base = db.stats()["mvcc"]
        session = db.session()
        session.execute("BEGIN")
        session.execute("UPDATE account SET balance = 1 WHERE id = 1")
        open_stats = db.stats()["mvcc"]
        assert open_stats["active_write_transactions"] == 1
        assert open_stats["active_snapshots"] >= 1
        session.execute("ROLLBACK")
        loser = db.session()
        loser.execute("BEGIN")
        db.execute("UPDATE account SET balance = 2 WHERE id = 1")
        with pytest.raises(TransactionConflictError):
            loser.execute("UPDATE account SET balance = 3 WHERE id = 1")
        loser.execute("ROLLBACK")
        stats = db.stats()["mvcc"]
        assert stats["commits"] > base["commits"]
        assert stats["aborts"] >= base["aborts"] + 2
        assert stats["conflicts"] >= base["conflicts"] + 1
        assert stats["active_write_transactions"] == 0
        assert stats["last_committed"] > base["last_committed"]

    def test_superseded_versions_are_garbage_collected(self) -> None:
        db = make_db()
        for _ in range(20):
            db.execute("UPDATE account SET balance = balance + 1 WHERE id = 1")
        stats = db.stats()["mvcc"]
        assert stats["versions_gced"] >= 20
        # With no open snapshots the backlog drains completely.
        data = db.table_data("account")
        assert stats["gc_backlog"] == len(data._versions) == 0

    def test_old_snapshot_pins_versions_until_it_closes(self) -> None:
        db = make_db()
        reader = db.session()
        reader.execute("BEGIN")
        assert reader.execute(
            "SELECT balance FROM account WHERE id = 1"
        ).rows == [(1000,)]
        for _ in range(5):
            db.execute("UPDATE account SET balance = balance + 1 WHERE id = 1")
        # The open snapshot still reads the original version...
        assert reader.execute(
            "SELECT balance FROM account WHERE id = 1"
        ).rows == [(1000,)]
        assert len(db.table_data("account")._versions) > 0
        reader.execute("COMMIT")
        # ...and closing it lets garbage collection reclaim the chain.
        db._mvcc.collect_garbage(limit=1000)
        assert db.table_data("account")._versions == {}

    def test_mvcc_stats_ship_over_server_stats(self) -> None:
        from repro import netclient
        from repro.server import SqlServer

        db = make_db()
        with SqlServer(database=db) as server:
            connection = netclient.connect(*server.address)
            try:
                stats = connection.session.server_stats()
            finally:
                connection.close()
        assert "mvcc" in stats["engine"]
        assert stats["engine"]["mvcc"]["last_committed"] >= 1


class TestExclusiveGateInteractions:
    def test_checkpoint_refuses_open_write_transaction(self, tmp_path) -> None:
        db = Database(data_dir=str(tmp_path / "db"))
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        session = db.session()
        session.execute("BEGIN")
        session.execute("INSERT INTO t (id) VALUES (1)")
        with pytest.raises(SqlExecutionError):
            db.checkpoint()
        session.execute("COMMIT")
        assert db.checkpoint()
        db.close()

    def test_ddl_waits_for_other_threads_write_transaction(self) -> None:
        db = make_db()
        holding = threading.Event()
        release = threading.Event()
        done: list[str] = []

        def writer() -> None:
            session = db.session()
            session.execute("BEGIN")
            session.execute("UPDATE account SET balance = 0 WHERE id = 1")
            holding.set()
            release.wait(timeout=30)
            session.execute("COMMIT")
            done.append("writer")

        thread = threading.Thread(target=writer)
        thread.start()
        assert holding.wait(timeout=10)
        ddl = threading.Thread(
            target=lambda: (
                db.execute("CREATE TABLE other (id INTEGER PRIMARY KEY)"),
                done.append("ddl"),
            )
        )
        ddl.start()
        ddl.join(timeout=0.3)
        # DDL drains open write transactions first...
        assert ddl.is_alive()
        release.set()
        ddl.join(timeout=30)
        thread.join(timeout=30)
        assert not ddl.is_alive() and not thread.is_alive()
        # ...and the writer's commit landed before the catalog change.
        assert done == ["writer", "ddl"]
        assert db.execute("SELECT balance FROM account WHERE id = 1").rows == [(0,)]
