"""Tests for SQL expression compilation/evaluation, including property tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.errors import SqlExecutionError
from repro.sqlengine.expressions import (
    ExpressionCompiler,
    collect_column_refs,
    is_truthy,
    split_conjuncts,
)


def evaluate(expression: ast.Expression, env=None, params=()):
    return ExpressionCompiler().compile(expression)(env or {}, params)


class TestBasicEvaluation:
    def test_literal_and_parameter(self) -> None:
        assert evaluate(ast.Literal(5)) == 5
        assert evaluate(ast.Parameter(0), params=(42,)) == 42

    def test_missing_parameter_raises(self) -> None:
        with pytest.raises(SqlExecutionError):
            evaluate(ast.Parameter(1), params=(42,))

    def test_column_lookup(self) -> None:
        expression = ast.ColumnRef("a", "c_id")
        assert evaluate(expression, {"a.c_id": 7}) == 7

    def test_unknown_column_raises(self) -> None:
        with pytest.raises(SqlExecutionError):
            evaluate(ast.ColumnRef(None, "missing"), {})

    def test_arithmetic(self) -> None:
        expression = ast.BinaryOp(
            "*",
            ast.BinaryOp("-", ast.Literal(10), ast.Literal(4)),
            ast.Literal(0.5),
        )
        assert evaluate(expression) == 3.0

    def test_division_by_zero_raises(self) -> None:
        with pytest.raises(SqlExecutionError):
            evaluate(ast.BinaryOp("/", ast.Literal(1), ast.Literal(0)))

    def test_comparisons(self) -> None:
        assert evaluate(ast.BinaryOp("<", ast.Literal(1), ast.Literal(2))) is True
        assert evaluate(ast.BinaryOp(">=", ast.Literal(1), ast.Literal(2))) is False
        assert evaluate(ast.BinaryOp("=", ast.Literal("x"), ast.Literal("x"))) is True

    def test_null_propagates_through_comparison(self) -> None:
        assert evaluate(ast.BinaryOp("=", ast.Literal(None), ast.Literal(1))) is None

    def test_and_or_with_null(self) -> None:
        false_and_null = ast.BinaryOp("AND", ast.Literal(False), ast.Literal(None))
        assert evaluate(false_and_null) is False
        true_or_null = ast.BinaryOp("OR", ast.Literal(True), ast.Literal(None))
        assert evaluate(true_or_null) is True
        null_and_true = ast.BinaryOp("AND", ast.Literal(None), ast.Literal(True))
        assert evaluate(null_and_true) is None

    def test_not(self) -> None:
        assert evaluate(ast.UnaryOp("NOT", ast.Literal(False))) is True
        assert evaluate(ast.UnaryOp("NOT", ast.Literal(None))) is None

    def test_is_null(self) -> None:
        assert evaluate(ast.IsNull(ast.Literal(None), negated=False)) is True
        assert evaluate(ast.IsNull(ast.Literal(3), negated=True)) is True

    def test_in_list(self) -> None:
        expression = ast.InList(ast.Literal(2), (ast.Literal(1), ast.Literal(2)))
        assert evaluate(expression) is True
        negated = ast.InList(ast.Literal(5), (ast.Literal(1),), negated=True)
        assert evaluate(negated) is True

    def test_like(self) -> None:
        expression = ast.BinaryOp("LIKE", ast.Literal("Widget"), ast.Literal("wid%"))
        assert evaluate(expression) is True
        expression = ast.BinaryOp("LIKE", ast.Literal("Widget"), ast.Literal("w_dget"))
        assert evaluate(expression) is True
        expression = ast.BinaryOp("LIKE", ast.Literal("Widget"), ast.Literal("x%"))
        assert evaluate(expression) is False

    def test_functions(self) -> None:
        assert evaluate(ast.FunctionCall("LOWER", (ast.Literal("AbC"),))) == "abc"
        assert evaluate(ast.FunctionCall("LENGTH", (ast.Literal("abc"),))) == 3
        assert evaluate(ast.FunctionCall("ABS", (ast.Literal(-2),))) == 2
        with pytest.raises(SqlExecutionError):
            evaluate(ast.FunctionCall("NO_SUCH_FN", (ast.Literal(1),)))

    def test_is_truthy(self) -> None:
        assert is_truthy(True) and is_truthy(1) and is_truthy("x")
        assert not is_truthy(None) and not is_truthy(0) and not is_truthy(False)


class TestHelpers:
    def test_collect_column_refs(self) -> None:
        expression = ast.BinaryOp(
            "AND",
            ast.BinaryOp("=", ast.ColumnRef("a", "x"), ast.Literal(1)),
            ast.BinaryOp("=", ast.ColumnRef("b", "y"), ast.ColumnRef(None, "z")),
        )
        refs = collect_column_refs(expression)
        assert {(ref.table, ref.column) for ref in refs} == {("a", "x"), ("b", "y"), (None, "z")}

    def test_split_conjuncts(self) -> None:
        expression = ast.BinaryOp(
            "AND",
            ast.BinaryOp("AND", ast.Literal(1), ast.Literal(2)),
            ast.Literal(3),
        )
        assert len(split_conjuncts(expression)) == 3
        assert split_conjuncts(None) == []


# -- property-based tests -----------------------------------------------------------------

_numbers = st.integers(min_value=-50, max_value=50)


def _literal(draw_value: int) -> ast.Literal:
    return ast.Literal(draw_value)


_arith_expr = st.recursive(
    _numbers.map(_literal),
    lambda children: st.builds(
        ast.BinaryOp,
        st.sampled_from(["+", "-", "*"]),
        children,
        children,
    ),
    max_leaves=8,
)


class TestExpressionProperties:
    @given(expression=_arith_expr)
    @settings(max_examples=60, deadline=None)
    def test_arithmetic_matches_python_semantics(self, expression) -> None:
        """Compiled arithmetic on integer literals agrees with direct
        evaluation of the same tree in Python."""

        def reference(node: ast.Expression) -> int:
            if isinstance(node, ast.Literal):
                return node.value  # type: ignore[return-value]
            assert isinstance(node, ast.BinaryOp)
            left, right = reference(node.left), reference(node.right)
            if node.op == "+":
                return left + right
            if node.op == "-":
                return left - right
            return left * right

        assert evaluate(expression) == reference(expression)

    @given(left=_numbers, right=_numbers, op=st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
    @settings(max_examples=60, deadline=None)
    def test_comparisons_match_python(self, left: int, right: int, op: str) -> None:
        expression = ast.BinaryOp(op, ast.Literal(left), ast.Literal(right))
        python_ops = {
            "=": left == right,
            "!=": left != right,
            "<": left < right,
            "<=": left <= right,
            ">": left > right,
            ">=": left >= right,
        }
        assert evaluate(expression) == python_ops[op]
