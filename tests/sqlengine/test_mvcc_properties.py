"""Property-based MVCC invariants, driven by Hypothesis.

Four properties no interleaving may violate:

* **No dirty reads** — whatever sequence of statements an open transaction
  executes, other sessions keep reading the last committed state.
* **Repeatable snapshot reads** — a transaction's reads are identical no
  matter how many commits land after its snapshot.
* **Exactly one loser** — when two transactions write the same row, the
  first updater wins and exactly the other aborts with
  :class:`TransactionConflictError`.
* **Byte-identical rollback** — ROLLBACK (and ROLLBACK TO SAVEPOINT)
  restores rows, live counts and every index's internal state exactly,
  even when the touched rows carry version chains from earlier commits.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sqlengine import Database, TransactionConflictError
from repro.sqlengine.indexes import HashIndex, OrderedIndex

ROW_IDS = list(range(1, 7))


def make_db(balances: list[int]) -> Database:
    db = Database()
    db.execute(
        "CREATE TABLE account (id INTEGER PRIMARY KEY, owner VARCHAR(32), "
        "balance INTEGER)"
    )
    db.create_index("account", ["owner"], name="idx_owner")
    db.create_index("account", ["balance"], name="idx_balance", ordered=True)
    db.execute_many(
        "INSERT INTO account (id, owner, balance) VALUES (?, ?, ?)",
        [
            (row_id, f"owner-{row_id}", balance)
            for row_id, balance in zip(ROW_IDS, balances)
        ],
    )
    return db


def state_snapshot(db: Database, table: str) -> dict:
    """Rows, live count and full index internals (the byte-identity bar)."""
    data = db.table_data(table)
    state: dict[str, object] = {"rows": list(data._rows), "live": len(data)}
    for name, index in data.indexes().items():
        if isinstance(index, OrderedIndex):
            state[name] = (list(index._keys), list(index._row_ids))
        elif isinstance(index, HashIndex):
            state[name] = {key: sorted(ids) for key, ids in index._entries.items()}
    return state


#: One transactional operation: (kind, row id, value).
_operation = st.tuples(
    st.sampled_from(["update", "delete", "insert", "savepoint", "rollback_to"]),
    st.sampled_from(ROW_IDS + [10, 11, 12]),
    st.integers(min_value=-50, max_value=50),
)

_balances = st.lists(
    st.integers(min_value=0, max_value=100),
    min_size=len(ROW_IDS),
    max_size=len(ROW_IDS),
)


def _apply(session, operations) -> None:
    """Run a generated operation sequence inside the open transaction.

    Individual statements may legitimately fail (duplicate insert, missing
    savepoint); statement-level atomicity keeps the transaction usable, so
    failures are simply skipped.
    """
    defined: list[str] = []
    for kind, row_id, value in operations:
        try:
            if kind == "update":
                session.execute(
                    "UPDATE account SET balance = balance + ? WHERE id = ?",
                    (value, row_id),
                )
            elif kind == "delete":
                session.execute("DELETE FROM account WHERE id = ?", (row_id,))
            elif kind == "insert":
                session.execute(
                    "INSERT INTO account (id, owner, balance) VALUES (?, ?, ?)",
                    (row_id, f"new-{row_id}", value),
                )
            elif kind == "savepoint":
                name = f"sp{len(defined)}"
                session.execute(f"SAVEPOINT {name}")
                defined.append(name)
            elif kind == "rollback_to" and defined:
                session.execute(f"ROLLBACK TO SAVEPOINT {defined[value % len(defined)]}")
        except Exception:  # noqa: BLE001 - failed statements roll back alone
            continue


class TestNoDirtyReads:
    @given(balances=_balances, operations=st.lists(_operation, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_other_sessions_read_committed_state_only(
        self, balances, operations
    ) -> None:
        db = make_db(balances)
        committed = db.execute(
            "SELECT id, owner, balance FROM account ORDER BY id"
        ).rows
        writer = db.session()
        writer.execute("BEGIN")
        _apply(writer, operations)
        # However the in-flight transaction mangled the table, a reader
        # (scan and index path both) sees exactly the committed rows.
        observer = db.session()
        assert (
            observer.execute(
                "SELECT id, owner, balance FROM account ORDER BY id"
            ).rows
            == committed
        )
        for row_id, owner, balance in committed:
            assert observer.execute(
                "SELECT owner, balance FROM account WHERE id = ?", (row_id,)
            ).rows == [(owner, balance)]
        writer.execute("ROLLBACK")


class TestRepeatableReads:
    @given(balances=_balances, operations=st.lists(_operation, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_snapshot_reads_do_not_move(self, balances, operations) -> None:
        db = make_db(balances)
        reader = db.session()
        reader.execute("BEGIN")
        first = reader.execute(
            "SELECT id, owner, balance FROM account ORDER BY id"
        ).rows
        # Apply (and commit) arbitrary churn from another session.
        churn = db.session()
        churn.execute("BEGIN")
        _apply(churn, operations)
        churn.execute("COMMIT")
        assert (
            reader.execute(
                "SELECT id, owner, balance FROM account ORDER BY id"
            ).rows
            == first
        )
        for row_id, owner, balance in first:
            assert reader.execute(
                "SELECT owner, balance FROM account WHERE id = ?", (row_id,)
            ).rows == [(owner, balance)]
        reader.execute("COMMIT")
        # After the snapshot closes, the churn is visible.
        assert (
            db.execute("SELECT id, owner, balance FROM account ORDER BY id").rows
            == churn.execute(
                "SELECT id, owner, balance FROM account ORDER BY id"
            ).rows
        )


class TestExactlyOneLoser:
    @given(
        balances=_balances,
        row_id=st.sampled_from(ROW_IDS),
        first_delta=st.integers(min_value=1, max_value=9),
        second_delta=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=40, deadline=None)
    def test_first_updater_wins_second_aborts(
        self, balances, row_id, first_delta, second_delta
    ) -> None:
        db = make_db(balances)
        start = db.execute(
            "SELECT balance FROM account WHERE id = ?", (row_id,)
        ).rows[0][0]
        first, second = db.session(), db.session()
        first.execute("BEGIN")
        second.execute("BEGIN")
        first.execute(
            "UPDATE account SET balance = balance + ? WHERE id = ?",
            (first_delta, row_id),
        )
        with pytest.raises(TransactionConflictError):
            second.execute(
                "UPDATE account SET balance = balance + ? WHERE id = ?",
                (second_delta, row_id),
            )
        second.execute("ROLLBACK")
        first.execute("COMMIT")
        # Exactly the winner's delta was applied.
        assert db.execute(
            "SELECT balance FROM account WHERE id = ?", (row_id,)
        ).rows == [(start + first_delta,)]


class TestByteIdenticalRollback:
    @given(balances=_balances, operations=st.lists(_operation, max_size=14))
    @settings(max_examples=40, deadline=None)
    def test_rollback_restores_storage_exactly(self, balances, operations) -> None:
        db = make_db(balances)
        # Put version chains on some rows first: committed history must not
        # perturb the rollback restoration of later transactions.
        for row_id in ROW_IDS[:3]:
            db.execute(
                "UPDATE account SET balance = balance + 1 WHERE id = ?", (row_id,)
            )
        before = state_snapshot(db, "account")
        session = db.session()
        session.execute("BEGIN")
        _apply(session, operations)
        session.execute("ROLLBACK")
        db._mvcc.collect_garbage(limit=10_000)
        assert state_snapshot(db, "account") == before

    @given(balances=_balances, operations=st.lists(_operation, max_size=14))
    @settings(max_examples=30, deadline=None)
    def test_savepoint_rollback_then_commit_is_consistent(
        self, balances, operations
    ) -> None:
        db = make_db(balances)
        session = db.session()
        session.execute("BEGIN")
        session.execute("SAVEPOINT base")
        _apply(session, operations)
        session.execute("ROLLBACK TO SAVEPOINT base")
        session.execute(
            "UPDATE account SET balance = balance + 1 WHERE id = ?", (ROW_IDS[0],)
        )
        session.execute("COMMIT")
        db._mvcc.collect_garbage(limit=10_000)
        # Only the post-savepoint survivor landed; indexes agree with rows.
        rows = db.execute(
            "SELECT id, owner, balance FROM account ORDER BY id"
        ).rows
        assert [row[0] for row in rows] == ROW_IDS
        assert rows[0][2] == balances[0] + 1
        for row_id, owner, balance in rows:
            assert db.execute(
                "SELECT balance FROM account WHERE id = ?", (row_id,)
            ).rows == [(balance,)]
