"""Tests for the planner statistics: live row counts, incremental
distinct-key (NDV) tracking, and correctness across transaction ROLLBACK."""

from __future__ import annotations

import pytest

from repro.sqlengine import Database


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.execute(
        "CREATE TABLE account (id INTEGER PRIMARY KEY, owner INTEGER, balance INTEGER)"
    )
    database.create_index("account", ["owner"])
    database.insert_rows(
        "account", [(i, i % 4, i * 100) for i in range(1, 13)]
    )
    return database


class TestIncrementalStatistics:
    def test_snapshot_reflects_rows_and_ndv(self, db: Database) -> None:
        stats = db.table_data("account").statistics()
        assert stats.row_count == 12
        assert stats.distinct("id") == 12
        assert stats.distinct("owner") == 4
        assert stats.distinct("balance") is None  # no index on balance

    def test_insert_and_delete_update_statistics(self, db: Database) -> None:
        db.execute("INSERT INTO account (id, owner, balance) VALUES (13, 9, 0)")
        stats = db.table_data("account").statistics()
        assert stats.row_count == 13
        assert stats.distinct("owner") == 5
        db.execute("DELETE FROM account WHERE id = 13")
        stats = db.table_data("account").statistics()
        assert stats.row_count == 12
        assert stats.distinct("owner") == 4

    def test_update_moves_distinct_counts(self, db: Database) -> None:
        db.execute("UPDATE account SET owner = 0 WHERE id > 0")
        stats = db.table_data("account").statistics()
        assert stats.row_count == 12
        assert stats.distinct("owner") == 1

    def test_ordered_index_tracks_distinct_keys(self) -> None:
        database = Database()
        database.execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, grade INTEGER)"
        )
        database.create_index("t", ["grade"], ordered=True)
        database.insert_rows("t", [(i, i % 3) for i in range(9)])
        assert db_distinct(database, "t", "grade") == 3
        database.execute("DELETE FROM t WHERE grade = 2")
        assert db_distinct(database, "t", "grade") == 2


class TestStatisticsAcrossRollback:
    def test_rollback_restores_row_count_and_ndv(self, db: Database) -> None:
        before = db.table_data("account").statistics()
        session = db.session()
        session.execute("BEGIN")
        session.execute(
            "INSERT INTO account (id, owner, balance) VALUES (100, 50, 1)"
        )
        session.execute(
            "INSERT INTO account (id, owner, balance) VALUES (101, 51, 1)"
        )
        session.execute("UPDATE account SET owner = 99 WHERE id = 1")
        mid = db.table_data("account").statistics()
        assert mid.row_count == 14
        assert mid.distinct("owner") > before.column_distinct["owner"]
        session.execute("ROLLBACK")
        after = db.table_data("account").statistics()
        assert after.row_count == before.row_count
        assert after.column_distinct == before.column_distinct
        assert after.index_distinct == before.index_distinct

    def test_savepoint_rollback_restores_statistics(self, db: Database) -> None:
        session = db.session()
        session.execute("BEGIN")
        session.execute(
            "INSERT INTO account (id, owner, balance) VALUES (200, 60, 1)"
        )
        inside = db.table_data("account").statistics()
        session.execute("SAVEPOINT sp")
        session.execute("DELETE FROM account WHERE owner = 1")
        session.execute("ROLLBACK TO sp")
        assert db.table_data("account").statistics() == inside
        session.execute("COMMIT")
        committed = db.table_data("account").statistics()
        assert committed.row_count == 13
        assert committed.distinct("owner") == 5

    def test_failed_statement_leaves_statistics_intact(self, db: Database) -> None:
        before = db.table_data("account").statistics()
        with pytest.raises(Exception):
            # Second row violates the primary key; statement-level
            # atomicity must undo the first row's statistics too.
            db.execute(
                "INSERT INTO account (id, owner, balance) "
                "VALUES (300, 70, 1), (1, 71, 1)"
            )
        assert db.table_data("account").statistics() == before


def db_distinct(database: Database, table: str, column: str) -> int | None:
    return database.table_data(table).column_distinct(column)
