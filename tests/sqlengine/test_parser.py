"""Tests for the SQL parser."""

from __future__ import annotations

import pytest

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.errors import SqlParseError
from repro.sqlengine.parser import count_parameters, parse_statement


class TestSelectParsing:
    def test_simple_select(self) -> None:
        statement = parse_statement("SELECT c_fname, c_lname FROM customer WHERE c_id = ?")
        assert isinstance(statement, ast.SelectStatement)
        assert len(statement.items) == 2
        assert statement.tables[0].table == "customer"
        assert isinstance(statement.where, ast.BinaryOp)

    def test_select_star(self) -> None:
        statement = parse_statement("SELECT * FROM item")
        assert statement.items[0].star is True

    def test_select_table_star(self) -> None:
        statement = parse_statement("SELECT A.* FROM item AS A")
        assert statement.items[0].table_star == "A"

    def test_aliases_with_and_without_as(self) -> None:
        statement = parse_statement("SELECT i.i_id FROM item i, author AS a")
        assert statement.tables[0].alias == "i"
        assert statement.tables[1].alias == "a"

    def test_column_alias(self) -> None:
        statement = parse_statement("SELECT (A.C_FNAME) AS COL0 FROM customer AS A")
        assert statement.items[0].alias == "COL0"

    def test_where_precedence_or_of_ands(self) -> None:
        statement = parse_statement("SELECT * FROM t WHERE a = 1 AND b = 2 OR c = 3")
        assert isinstance(statement.where, ast.BinaryOp)
        assert statement.where.op == "OR"
        assert statement.where.left.op == "AND"  # type: ignore[union-attr]

    def test_not_parses_tighter_than_and(self) -> None:
        statement = parse_statement("SELECT * FROM t WHERE NOT a = 1 AND b = 2")
        assert statement.where.op == "AND"  # type: ignore[union-attr]
        assert isinstance(statement.where.left, ast.UnaryOp)  # type: ignore[union-attr]

    def test_order_by_and_limit(self) -> None:
        statement = parse_statement(
            "SELECT i_title FROM item ORDER BY i_title DESC, i_id LIMIT 50"
        )
        assert statement.order_by[0].descending is True
        assert statement.order_by[1].descending is False
        assert isinstance(statement.limit, ast.Literal)

    def test_mysql_style_limit_offset_count(self) -> None:
        statement = parse_statement("SELECT i_id FROM item LIMIT 0, 50")
        assert statement.offset == ast.Literal(0)
        assert statement.limit == ast.Literal(50)

    def test_limit_offset_keyword(self) -> None:
        statement = parse_statement("SELECT i_id FROM item LIMIT 10 OFFSET 5")
        assert statement.limit == ast.Literal(10)
        assert statement.offset == ast.Literal(5)

    def test_distinct(self) -> None:
        statement = parse_statement("SELECT DISTINCT i_subject FROM item")
        assert statement.distinct is True

    def test_parameters_are_numbered_in_order(self) -> None:
        statement = parse_statement("SELECT * FROM t WHERE a = ? AND b = ?")
        where = statement.where
        assert where.left.right == ast.Parameter(0)  # type: ignore[union-attr]
        assert where.right.right == ast.Parameter(1)  # type: ignore[union-attr]

    def test_count_parameters(self) -> None:
        assert count_parameters("SELECT * FROM t WHERE a = ? AND b = ? OR c = ?") == 3

    def test_arithmetic_in_select_list(self) -> None:
        statement = parse_statement("SELECT (minbalance - balance) * 0.001 FROM account")
        expression = statement.items[0].expression
        assert isinstance(expression, ast.BinaryOp)
        assert expression.op == "*"

    def test_in_list(self) -> None:
        statement = parse_statement("SELECT * FROM t WHERE a IN (1, 2, 3)")
        assert isinstance(statement.where, ast.InList)
        assert len(statement.where.items) == 3

    def test_is_null_and_is_not_null(self) -> None:
        statement = parse_statement("SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL")
        left = statement.where.left  # type: ignore[union-attr]
        right = statement.where.right  # type: ignore[union-attr]
        assert isinstance(left, ast.IsNull) and left.negated is False
        assert isinstance(right, ast.IsNull) and right.negated is True

    def test_like(self) -> None:
        statement = parse_statement("SELECT * FROM t WHERE name LIKE 'A%'")
        assert statement.where.op == "LIKE"  # type: ignore[union-attr]

    def test_count_star(self) -> None:
        statement = parse_statement("SELECT COUNT(*) FROM item")
        expression = statement.items[0].expression
        assert isinstance(expression, ast.FunctionCall)
        assert expression.star is True

    def test_paper_table5_getname_shape(self) -> None:
        statement = parse_statement(
            "SELECT (A.C_FNAME) AS COL0, (A.C_LNAME) AS COL1 "
            "FROM Customer AS A WHERE ( ( ((A.C_ID) = ?) ) )"
        )
        assert [item.alias for item in statement.items] == ["COL0", "COL1"]
        assert statement.tables[0].binding == "A"


class TestOtherStatements:
    def test_insert(self) -> None:
        statement = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(statement, ast.InsertStatement)
        assert statement.columns == ("a", "b")
        assert len(statement.rows) == 2

    def test_update(self) -> None:
        statement = parse_statement("UPDATE t SET a = ?, b = 2 WHERE id = ?")
        assert isinstance(statement, ast.UpdateStatement)
        assert len(statement.assignments) == 2

    def test_delete(self) -> None:
        statement = parse_statement("DELETE FROM t WHERE id = 3")
        assert isinstance(statement, ast.DeleteStatement)

    def test_create_table(self) -> None:
        statement = parse_statement(
            "CREATE TABLE item (i_id INTEGER PRIMARY KEY, i_title VARCHAR(60) NOT NULL)"
        )
        assert isinstance(statement, ast.CreateTableStatement)
        assert statement.columns[0].primary_key is True
        assert statement.columns[1].length == 60
        assert statement.columns[1].nullable is False

    def test_create_index(self) -> None:
        statement = parse_statement("CREATE UNIQUE INDEX idx_uname ON customer (c_uname)")
        assert isinstance(statement, ast.CreateIndexStatement)
        assert statement.unique is True

    def test_drop_table(self) -> None:
        statement = parse_statement("DROP TABLE item")
        assert isinstance(statement, ast.DropTableStatement)

    def test_transaction_statements(self) -> None:
        for text in ("BEGIN", "COMMIT", "ROLLBACK"):
            statement = parse_statement(text)
            assert isinstance(statement, ast.TransactionStatement)
            assert statement.action == text


class TestParserErrors:
    def test_trailing_garbage_raises(self) -> None:
        with pytest.raises(SqlParseError):
            parse_statement("SELECT 1 FROM t garbage garbage garbage")

    def test_missing_from_raises(self) -> None:
        with pytest.raises(SqlParseError):
            parse_statement("SELECT 1 WHERE a = 2")

    def test_unbalanced_parentheses_raise(self) -> None:
        with pytest.raises(SqlParseError):
            parse_statement("SELECT (1 FROM t")

    def test_empty_statement_raises(self) -> None:
        with pytest.raises(SqlParseError):
            parse_statement("")
