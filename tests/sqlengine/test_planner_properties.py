"""Planner correctness: every access path must return the same rows.

These tests build a small random database with Hypothesis and check that
queries return identical results whether they run through index lookups,
hash joins, index nested-loop joins or plain nested-loop scans — the core
soundness property of the planner.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.sqlengine import Database
from repro.sqlengine.planner import PlannerOptions

_ALL_OPTIONS = [
    PlannerOptions(),
    PlannerOptions(use_indexes=False),
    PlannerOptions(use_index_nested_loop_join=False),
    PlannerOptions(use_hash_join=False),
    PlannerOptions(use_indexes=False, use_index_nested_loop_join=False, use_hash_join=False),
    PlannerOptions(use_cost_model=False),
    PlannerOptions(use_cost_model=False, use_index_nested_loop_join=False),
]


def _build_database(orders: list[tuple[int, int, int]], customers: int) -> Database:
    database = Database()
    database.executescript(
        """
        CREATE TABLE customer (id INTEGER PRIMARY KEY, region INTEGER);
        CREATE TABLE orders (id INTEGER PRIMARY KEY, customer_id INTEGER, amount INTEGER);
        """
    )
    database.insert_rows(
        "customer", [(identifier, identifier % 3) for identifier in range(1, customers + 1)]
    )
    database.insert_rows("orders", orders)
    return database


_orders_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=-100, max_value=100),
    ),
    max_size=30,
    unique_by=lambda row: row[0],
)


class TestPlannerEquivalence:
    @given(orders=_orders_strategy, threshold=st.integers(min_value=-100, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_join_results_identical_across_access_paths(
        self, orders: list[tuple[int, int, int]], threshold: int
    ) -> None:
        database = _build_database(orders, customers=8)
        sql = (
            "SELECT orders.id, customer.region FROM orders, customer "
            "WHERE orders.customer_id = customer.id AND orders.amount >= ? "
            "ORDER BY orders.id"
        )
        results = []
        for options in _ALL_OPTIONS:
            database.set_planner_options(options)
            results.append(database.execute(sql, (threshold,)).rows)
        assert all(rows == results[0] for rows in results)

    @given(orders=_orders_strategy, wanted=st.integers(min_value=1, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_point_lookup_matches_full_scan(
        self, orders: list[tuple[int, int, int]], wanted: int
    ) -> None:
        database = _build_database(orders, customers=8)
        sql = "SELECT id, amount FROM orders WHERE id = ?"
        database.set_planner_options(PlannerOptions())
        with_index = database.execute(sql, (wanted,)).rows
        database.set_planner_options(PlannerOptions(use_indexes=False))
        without_index = database.execute(sql, (wanted,)).rows
        assert with_index == without_index

    @given(
        orders=_orders_strategy,
        threshold=st.integers(min_value=-100, max_value=100),
        region=st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=30, deadline=None)
    def test_cost_based_join_order_matches_greedy_planner(
        self, orders: list[tuple[int, int, int]], threshold: int, region: int
    ) -> None:
        """The statistics-driven join order must never change the result
        set relative to the statistics-free greedy planner."""
        database = _build_database(orders, customers=8)
        queries = [
            (
                "SELECT orders.id, customer.region FROM orders, customer "
                "WHERE orders.customer_id = customer.id AND customer.region = ? "
                "AND orders.amount >= ? ORDER BY orders.id",
                (region, threshold),
            ),
            (
                "SELECT customer.id, orders.amount FROM customer, orders "
                "WHERE customer.id = orders.customer_id "
                "ORDER BY customer.id, orders.amount",
                (),
            ),
        ]
        for sql, params in queries:
            database.set_planner_options(PlannerOptions(use_cost_model=True))
            cost_based = database.execute(sql, params).rows
            database.set_planner_options(PlannerOptions(use_cost_model=False))
            greedy = database.execute(sql, params).rows
            assert cost_based == greedy

    @given(orders=_orders_strategy)
    @settings(max_examples=20, deadline=None)
    def test_or_of_indexed_equalities_matches_naive_plan(
        self, orders: list[tuple[int, int, int]]
    ) -> None:
        """The IndexOrLookupJoin path must agree with the nested-loop plan
        (this is the access path behind the hand-written doGetRelated)."""
        database = _build_database(orders, customers=8)
        sql = (
            "SELECT orders.id FROM customer, orders "
            "WHERE (customer.id = orders.customer_id OR customer.region = orders.amount) "
            "AND customer.id = ? ORDER BY orders.id"
        )
        database.set_planner_options(PlannerOptions())
        fast = database.execute(sql, (3,)).rows
        database.set_planner_options(PlannerOptions(use_indexes=False))
        naive = database.execute(sql, (3,)).rows
        assert fast == naive
