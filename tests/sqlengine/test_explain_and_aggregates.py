"""Tests for ``EXPLAIN SELECT`` surfaced through SQL/dbapi and for the
extended ungrouped aggregates (COUNT/SUM/MIN/MAX/AVG)."""

from __future__ import annotations

import pytest

from repro.dbapi.connection import connect
from repro.sqlengine import Database
from repro.sqlengine.errors import SqlExecutionError, SqlParseError


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.executescript(
        """
        CREATE TABLE item (i_id INTEGER PRIMARY KEY, i_subject VARCHAR(20),
                           i_cost INTEGER, i_stock INTEGER);
        CREATE TABLE author (a_id INTEGER PRIMARY KEY, a_name VARCHAR(20));
        """
    )
    database.insert_rows(
        "item",
        [(i, f"subject{i % 3}", i * 10, None if i == 5 else i) for i in range(1, 11)],
    )
    database.insert_rows("author", [(i, f"author{i}") for i in range(1, 4)])
    return database


class TestExplainStatement:
    def test_explain_select_returns_plan_rows(self, db: Database) -> None:
        result = db.execute("EXPLAIN SELECT i_cost FROM item WHERE i_id = ?")
        assert result.columns == ["query plan"]
        text = "\n".join(str(row[0]) for row in result.rows)
        assert "IndexLookup" in text
        assert "Project" in text

    def test_explain_shows_estimated_rows_and_cost(self, db: Database) -> None:
        result = db.execute("EXPLAIN SELECT i_cost FROM item WHERE i_id = 3")
        text = "\n".join(str(row[0]) for row in result.rows)
        assert "rows=" in text and "cost=" in text

    def test_explain_join_shows_per_node_estimates(self, db: Database) -> None:
        result = db.execute(
            "EXPLAIN SELECT i_id, a_name FROM item, author "
            "WHERE i_cost = a_id AND i_id = 1"
        )
        annotated = [row[0] for row in result.rows if "rows=" in str(row[0])]
        assert len(annotated) >= 2  # every operator node carries estimates

    def test_explain_non_select_is_a_parse_error(self, db: Database) -> None:
        with pytest.raises(SqlParseError):
            db.execute("EXPLAIN INSERT INTO item (i_id) VALUES (99)")

    def test_explain_through_dbapi_statement(self, db: Database) -> None:
        connection = connect(db)
        result = connection.create_statement().execute(
            "EXPLAIN SELECT i_id FROM item WHERE i_id = 1"
        )
        assert result is not None
        lines = []
        while result.next():
            lines.append(result.get_string(1))
        assert any("IndexLookup" in str(line) for line in lines)

    def test_prepared_statement_explain_helper(self, db: Database) -> None:
        connection = connect(db)
        statement = connection.prepare_statement(
            "SELECT i_cost FROM item WHERE i_id = ?"
        )
        plan = statement.explain()
        assert "IndexLookup" in plan and "rows=" in plan


class TestAggregates:
    def test_sum_min_max_avg(self, db: Database) -> None:
        result = db.execute(
            "SELECT COUNT(*) AS n, SUM(i_cost) AS total, MIN(i_cost) AS lo, "
            "MAX(i_cost) AS hi, AVG(i_cost) AS mean FROM item"
        )
        assert result.columns == ["n", "total", "lo", "hi", "mean"]
        assert result.rows == [(10, 550, 10, 100, 55.0)]

    def test_aggregates_skip_nulls(self, db: Database) -> None:
        # i_stock is NULL for i_id = 5: COUNT(col) and AVG must skip it.
        result = db.execute(
            "SELECT COUNT(i_stock), SUM(i_stock), AVG(i_stock) FROM item"
        )
        count, total, mean = result.rows[0]
        assert count == 9
        assert total == sum(i for i in range(1, 11) if i != 5)
        assert mean == total / 9

    def test_aggregates_over_empty_input_yield_null(self, db: Database) -> None:
        result = db.execute(
            "SELECT COUNT(*), SUM(i_cost), MIN(i_cost), MAX(i_cost), AVG(i_cost) "
            "FROM item WHERE i_id > 1000"
        )
        assert result.rows == [(0, None, None, None, None)]

    def test_aggregate_with_filter_and_expression(self, db: Database) -> None:
        result = db.execute(
            "SELECT SUM(i_cost * 2) AS doubled FROM item WHERE i_id <= 3"
        )
        assert result.rows == [(120,)]

    def test_unsupported_aggregate_names_the_function(self, db: Database) -> None:
        with pytest.raises(SqlExecutionError, match="MEDIAN"):
            db.execute("SELECT MEDIAN(i_cost) FROM item")

    def test_sum_star_is_rejected(self, db: Database) -> None:
        with pytest.raises(SqlExecutionError):
            db.execute("SELECT SUM(*) FROM item")

    def test_mixing_aggregate_and_column_is_rejected(self, db: Database) -> None:
        with pytest.raises(SqlExecutionError, match="GROUP BY"):
            db.execute("SELECT i_id, SUM(i_cost) FROM item")
