"""Multi-threaded engine smoke tests: concurrent readers and writers.

The readers-writer lock must let read-only SELECTs from different sessions
run concurrently while transactions stay atomic: a reader can never observe
a transfer transaction half-applied, so the invariant checked inside each
reader thread (the sum of two account balances is constant) must hold on
every single read.
"""

from __future__ import annotations

import threading

from repro.sqlengine import Database
from repro.sqlengine.transactions import ReadWriteLock


def make_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE account (id INTEGER PRIMARY KEY, balance INTEGER)")
    db.execute_many(
        "INSERT INTO account (id, balance) VALUES (?, ?)",
        [(1, 1000), (2, 1000)],
    )
    return db


class TestConcurrentSessions:
    def test_readers_see_consistent_transfers(self) -> None:
        db = make_db()
        rounds = 200
        reader_threads = 4
        stop = threading.Event()
        errors: list[str] = []

        def writer() -> None:
            session = db.session()
            try:
                for index in range(rounds):
                    session.execute("BEGIN")
                    session.execute(
                        "UPDATE account SET balance = balance - 10 WHERE id = 1"
                    )
                    session.execute(
                        "UPDATE account SET balance = balance + 10 WHERE id = 2"
                    )
                    if index % 3 == 2:
                        # Every third transfer aborts: the rollback must be
                        # invisible to readers too.
                        session.execute("ROLLBACK")
                    else:
                        session.execute("COMMIT")
            finally:
                stop.set()

        def reader(worker: int) -> None:
            session = db.session()
            while not stop.is_set():
                rows = session.execute(
                    "SELECT balance FROM account ORDER BY id"
                ).rows
                total = sum(balance for (balance,) in rows)
                if total != 2000:
                    errors.append(f"reader {worker} saw total {total}")
                    return

        threads = [threading.Thread(target=reader, args=(i,)) for i in range(reader_threads)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in threads), "deadlock"
        assert errors == []
        committed = rounds - (rounds + 0) // 3  # every third round rolls back
        rows = dict(db.execute("SELECT id, balance FROM account").rows)
        assert rows[1] == 1000 - 10 * committed
        assert rows[2] == 1000 + 10 * committed

    def test_concurrent_writers_serialise(self) -> None:
        db = make_db()
        increments_per_thread = 100
        writer_threads = 4

        def writer() -> None:
            session = db.session()
            for _ in range(increments_per_thread):
                session.execute(
                    "UPDATE account SET balance = balance + 1 WHERE id = 1"
                )

        threads = [threading.Thread(target=writer) for _ in range(writer_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in threads), "deadlock"
        expected = 1000 + increments_per_thread * writer_threads
        assert db.execute("SELECT balance FROM account WHERE id = 1").rows == [
            (expected,)
        ]

    def test_database_facade_is_thread_safe(self) -> None:
        # Database.execute uses one default session per thread, so
        # concurrent facade writes must serialise like any other sessions.
        db = make_db()
        increments_per_thread = 100

        def writer() -> None:
            for _ in range(increments_per_thread):
                db.execute("UPDATE account SET balance = balance + 1 WHERE id = 2")

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in threads), "deadlock"
        assert db.execute("SELECT balance FROM account WHERE id = 2").rows == [
            (1000 + 4 * increments_per_thread,)
        ]

    def test_same_thread_sessions_do_not_deadlock(self) -> None:
        # Historical single-threaded behaviour: one thread may interleave an
        # open write transaction with reads through other sessions.
        db = make_db()
        session = db.session()
        session.execute("BEGIN")
        session.execute("UPDATE account SET balance = 0 WHERE id = 1")
        # Default-session read on the same thread passes straight through.
        assert len(db.execute("SELECT id FROM account").rows) == 2
        session.execute("ROLLBACK")
        assert db.execute("SELECT balance FROM account WHERE id = 1").rows == [(1000,)]


class TestReadWriteLock:
    def test_readers_run_concurrently(self) -> None:
        lock = ReadWriteLock()
        inside = threading.Barrier(3, timeout=10)

        def reader() -> None:
            lock.acquire_read()
            try:
                inside.wait()  # only reachable if all readers hold the lock
            finally:
                lock.release_read()

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads)

    def test_writer_excludes_readers(self) -> None:
        lock = ReadWriteLock()
        lock.acquire_write()
        observed: list[int] = []

        def reader() -> None:
            lock.acquire_read()
            observed.append(1)
            lock.release_read()

        thread = threading.Thread(target=reader)
        thread.start()
        thread.join(timeout=0.2)
        assert observed == []  # reader blocked while the write lock is held
        lock.release_write()
        thread.join(timeout=30)
        assert observed == [1]

    def test_write_lock_reentrant_for_owner(self) -> None:
        lock = ReadWriteLock()
        lock.acquire_write()
        lock.acquire_write()
        lock.acquire_read()
        lock.release_read()
        lock.release_write()
        lock.release_write()
        # Fully released: another thread can now take the write lock.
        acquired = threading.Event()

        def writer() -> None:
            lock.acquire_write()
            acquired.set()
            lock.release_write()

        thread = threading.Thread(target=writer)
        thread.start()
        thread.join(timeout=30)
        assert acquired.is_set()
