"""Tests for the Database facade: DDL, DML, SELECT planning and execution."""

from __future__ import annotations

import pytest

from repro.sqlengine import Database
from repro.sqlengine.errors import SqlCatalogError, SqlExecutionError
from repro.sqlengine.planner import PlannerOptions


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.executescript(
        """
        CREATE TABLE customer (c_id INTEGER PRIMARY KEY, c_uname VARCHAR(20),
                               c_fname VARCHAR(20), c_lname VARCHAR(20), c_addr_id INTEGER);
        CREATE TABLE address (addr_id INTEGER PRIMARY KEY, addr_city VARCHAR(30), addr_co_id INTEGER);
        CREATE TABLE country (co_id INTEGER PRIMARY KEY, co_name VARCHAR(50));
        """
    )
    database.insert_rows("country", [(1, "Canada"), (2, "Switzerland"), (3, "Japan")])
    database.insert_rows(
        "address",
        [(10, "Ottawa", 1), (11, "Lausanne", 2), (12, "Tokyo", 3), (13, "Geneva", 2)],
    )
    database.insert_rows(
        "customer",
        [
            (100, "alice", "Alice", "Smith", 10),
            (101, "bob", "Bob", "Jones", 11),
            (102, "carol", "Carol", "Kim", 12),
            (103, "dan", "Dan", "Muller", 13),
        ],
    )
    return database


class TestSelect:
    def test_point_query_by_primary_key(self, db: Database) -> None:
        result = db.execute("SELECT c_fname, c_lname FROM customer WHERE c_id = ?", (101,))
        assert result.rows == [("Bob", "Jones")]
        assert result.columns == ["c_fname", "c_lname"]

    def test_point_query_uses_index(self, db: Database) -> None:
        plan = db.explain("SELECT c_fname FROM customer WHERE c_id = ?")
        assert "IndexLookup" in plan

    def test_three_way_join(self, db: Database) -> None:
        result = db.execute(
            "SELECT customer.c_fname, country.co_name FROM customer, address, country "
            "WHERE customer.c_addr_id = address.addr_id "
            "AND address.addr_co_id = country.co_id AND customer.c_uname = ?",
            ("dan",),
        )
        assert result.rows == [("Dan", "Switzerland")]

    def test_join_without_alias_qualification(self, db: Database) -> None:
        result = db.execute(
            "SELECT c_uname, co_name FROM customer, address, country "
            "WHERE c_addr_id = addr_id AND addr_co_id = co_id ORDER BY c_uname"
        )
        assert [row[0] for row in result.rows] == ["alice", "bob", "carol", "dan"]

    def test_order_by_descending_and_limit(self, db: Database) -> None:
        result = db.execute("SELECT c_uname FROM customer ORDER BY c_uname DESC LIMIT 2")
        assert result.rows == [("dan",), ("carol",)]

    def test_limit_offset(self, db: Database) -> None:
        result = db.execute("SELECT c_id FROM customer ORDER BY c_id LIMIT 2 OFFSET 1")
        assert result.rows == [(101,), (102,)]

    def test_distinct(self, db: Database) -> None:
        result = db.execute("SELECT DISTINCT addr_co_id FROM address ORDER BY addr_co_id")
        assert result.rows == [(1,), (2,), (3,)]

    def test_count_star(self, db: Database) -> None:
        result = db.execute("SELECT COUNT(*) AS n FROM customer")
        assert result.rows == [(4,)]

    def test_or_predicate(self, db: Database) -> None:
        result = db.execute(
            "SELECT c_uname FROM customer WHERE c_uname = 'alice' OR c_uname = 'bob' "
            "ORDER BY c_uname"
        )
        assert result.rows == [("alice",), ("bob",)]

    def test_arithmetic_projection(self, db: Database) -> None:
        result = db.execute("SELECT c_id * 2 + 1 FROM customer WHERE c_id = 100")
        assert result.rows == [(201,)]

    def test_table_star_expansion(self, db: Database) -> None:
        result = db.execute("SELECT A.* FROM country AS A WHERE A.co_id = 2")
        assert result.columns == ["co_id", "co_name"]
        assert result.rows == [(2, "Switzerland")]

    def test_select_star_over_join_contains_all_columns(self, db: Database) -> None:
        result = db.execute(
            "SELECT * FROM address, country WHERE addr_co_id = co_id AND addr_id = 10"
        )
        assert len(result.columns) == 5

    def test_unknown_column_raises(self, db: Database) -> None:
        with pytest.raises(SqlCatalogError):
            db.execute("SELECT nonexistent FROM customer")

    def test_unknown_table_raises(self, db: Database) -> None:
        with pytest.raises(SqlCatalogError):
            db.execute("SELECT 1 FROM missing_table")

    def test_missing_parameter_raises(self, db: Database) -> None:
        with pytest.raises(SqlExecutionError):
            db.execute("SELECT c_id FROM customer WHERE c_id = ?")

    def test_result_set_value_by_name(self, db: Database) -> None:
        result = db.execute("SELECT c_fname, c_lname FROM customer WHERE c_id = 100")
        assert result.value(0, "C_LNAME") == "Smith"
        with pytest.raises(KeyError):
            result.column_index("nope")


class TestDml:
    def test_insert_via_sql(self, db: Database) -> None:
        db.execute("INSERT INTO country (co_id, co_name) VALUES (?, ?)", (4, "Peru"))
        assert db.row_count("country") == 4

    def test_update(self, db: Database) -> None:
        db.execute("UPDATE customer SET c_fname = ? WHERE c_id = ?", ("Robert", 101))
        result = db.execute("SELECT c_fname FROM customer WHERE c_id = 101")
        assert result.rows == [("Robert",)]

    def test_update_multiple_rows(self, db: Database) -> None:
        db.execute("UPDATE address SET addr_co_id = 1 WHERE addr_co_id = 2")
        result = db.execute("SELECT COUNT(*) AS n FROM address WHERE addr_co_id = 1")
        assert result.rows == [(3,)]

    def test_delete(self, db: Database) -> None:
        db.execute("DELETE FROM customer WHERE c_id = 103")
        assert db.row_count("customer") == 3

    def test_primary_key_violation_via_sql(self, db: Database) -> None:
        with pytest.raises(SqlExecutionError):
            db.execute("INSERT INTO country (co_id, co_name) VALUES (1, 'Dup')")

    def test_transaction_statements_are_accepted(self, db: Database) -> None:
        db.execute("BEGIN")
        db.execute("COMMIT")
        db.execute("ROLLBACK")


class TestPlannerOptions:
    def test_disabling_indexes_switches_to_seq_scan(self, db: Database) -> None:
        db.set_planner_options(PlannerOptions(use_indexes=False))
        plan = db.explain("SELECT c_fname FROM customer WHERE c_id = ?")
        assert "SeqScan" in plan and "IndexLookup" not in plan

    def test_hash_join_used_when_index_join_disabled(self, db: Database) -> None:
        db.set_planner_options(PlannerOptions(use_index_nested_loop_join=False))
        plan = db.explain(
            "SELECT c_uname, co_name FROM customer, address, country "
            "WHERE c_addr_id = addr_id AND addr_co_id = co_id"
        )
        assert "HashJoin" in plan

    def test_results_identical_across_planner_options(self, db: Database) -> None:
        sql = (
            "SELECT c_uname, co_name FROM customer, address, country "
            "WHERE c_addr_id = addr_id AND addr_co_id = co_id ORDER BY c_uname"
        )
        baseline = db.execute(sql).rows
        for options in (
            PlannerOptions(use_indexes=False),
            PlannerOptions(use_index_nested_loop_join=False),
            PlannerOptions(use_hash_join=False),
            PlannerOptions(use_indexes=False, use_hash_join=False),
        ):
            db.set_planner_options(options)
            assert db.execute(sql).rows == baseline
        db.set_planner_options(PlannerOptions())

    def test_statement_cache_counts_executions(self, db: Database) -> None:
        before = db.statements_executed
        db.execute("SELECT c_id FROM customer WHERE c_id = ?", (100,))
        db.execute("SELECT c_id FROM customer WHERE c_id = ?", (101,))
        assert db.statements_executed == before + 2
