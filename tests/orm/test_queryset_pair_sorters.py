"""Tests for QuerySet, Pair and sorters (Figs. 6-8 of the paper)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.orm import DoubleSorter, FieldSorter, Pair, QuerySet
from repro.orm.queryset import LazyQuery
from repro.orm.sorters import CallableSorter


class TestPair:
    def test_accessors(self) -> None:
        pair = Pair("a", 2)
        assert pair.first == "a" and pair.second == 2
        assert pair.getFirst() == "a" and pair.getSecond() == 2

    def test_equality_and_hash(self) -> None:
        assert Pair(1, "x") == Pair(1, "x")
        assert Pair(1, "x") != Pair(2, "x")
        assert hash(Pair(1, "x")) == hash(Pair(1, "x"))
        assert len({Pair(1, 2), Pair(1, 2), Pair(3, 4)}) == 2

    def test_iteration_and_repr(self) -> None:
        assert list(Pair(1, 2)) == [1, 2]
        assert "Pair" in repr(Pair(1, 2))

    def test_pair_collection(self) -> None:
        pairs = Pair.pair_collection("client", [1, 2, 3])
        assert pairs == [Pair("client", 1), Pair("client", 2), Pair("client", 3)]

    def test_nested_pairs(self) -> None:
        nested = Pair(Pair(1, 2), Pair(3, 4))
        assert nested.getFirst().getSecond() == 2


class _ListQuery(LazyQuery):
    """Lazy query over a fixed list, counting loads and supporting folding."""

    def __init__(self, items, ordered=None, limit=None):
        self.items = list(items)
        self.loads = 0
        self._ordered = ordered
        self._limit = limit

    def load(self):
        self.loads += 1
        items = list(self.items)
        if self._ordered:
            accessors, descending = self._ordered
            items.sort(key=lambda item: getattr(item, accessors[0]), reverse=descending)
        if self._limit is not None:
            items = items[: self._limit]
        return items

    def ordered_by(self, accessors, descending):
        return _ListQuery(self.items, ordered=(accessors, descending), limit=self._limit)

    def limited(self, count):
        return _ListQuery(self.items, ordered=self._ordered, limit=count)

    def describe_sql(self):
        return "LIST"


class TestQuerySet:
    def test_behaves_like_a_collection(self) -> None:
        qs = QuerySet([1, 2, 3])
        assert len(qs) == 3 and qs.size() == 3
        assert 2 in qs and 9 not in qs
        assert list(qs) == [1, 2, 3]
        assert qs[0] == 1
        assert qs == [1, 2, 3]
        assert qs == QuerySet([1, 2, 3])

    def test_add_and_add_all(self) -> None:
        qs: QuerySet[int] = QuerySet()
        assert qs.add(1) is True
        assert qs.addAll([2, 3]) is True
        assert qs.add_all([]) is False
        assert qs.to_list() == [1, 2, 3]

    def test_lazy_materialises_once(self) -> None:
        query = _ListQuery([3, 1, 2])
        qs = QuerySet.lazy(query)
        assert qs.is_lazy
        assert len(qs) == 3
        assert list(qs) == [3, 1, 2]
        assert query.loads == 1
        assert not qs.is_lazy

    def test_describe_sql_delegates(self) -> None:
        qs = QuerySet.lazy(_ListQuery([1]))
        assert qs.describe_sql() == "LIST"
        assert QuerySet([1]).describe_sql() is None

    def test_clear_resets(self) -> None:
        qs = QuerySet.lazy(_ListQuery([1, 2]))
        qs.clear()
        assert len(qs) == 0 and not qs.is_lazy

    def test_sorted_by_string_accessor_in_memory(self) -> None:
        class Item:
            def __init__(self, value):
                self.value = value

        qs = QuerySet([Item(3), Item(1), Item(2)])
        ordered = qs.sorted_by("value")
        assert [item.value for item in ordered] == [1, 2, 3]
        descending = qs.sorted_by("value", descending=True)
        assert [item.value for item in descending] == [3, 2, 1]

    def test_sorted_by_folds_into_lazy_query(self) -> None:
        class Item:
            def __init__(self, value):
                self.value = value

        query = _ListQuery([Item(3), Item(1), Item(2)])
        qs = QuerySet.lazy(query)
        ordered = qs.sorted_by("value")
        assert ordered.is_lazy
        assert [item.value for item in ordered] == [1, 2, 3]

    def test_first_n_folds_into_lazy_query(self) -> None:
        query = _ListQuery([5, 6, 7, 8])
        limited = QuerySet.lazy(query).first_n(2)
        assert limited.is_lazy
        assert limited.to_list() == [5, 6]

    def test_first_n_on_materialised(self) -> None:
        assert QuerySet([1, 2, 3]).firstN(2).to_list() == [1, 2]
        with pytest.raises(ValueError):
            QuerySet([1]).first_n(-1)

    def test_sorted_by_sorter_object_paper_fig8(self) -> None:
        class Account:
            def __init__(self, balance):
                self._balance = balance

            def getBalance(self):
                return self._balance

        class BalanceSorter(DoubleSorter):
            def value(self, val):
                return val.getBalance()

        accounts = QuerySet([Account(10.0), Account(99.0), Account(55.0)])
        top2 = accounts.sortedByDoubleDescending(BalanceSorter()).firstN(2)
        assert [a.getBalance() for a in top2] == [99.0, 55.0]

    def test_sort_handles_none_values(self) -> None:
        class Row:
            def __init__(self, key):
                self.key = key

        qs = QuerySet([Row(None), Row(2), Row(1)])
        assert [r.key for r in qs.sorted_by("key")] == [None, 1, 2]

    @given(st.lists(st.integers(), max_size=30), st.integers(min_value=0, max_value=10))
    @settings(max_examples=50, deadline=None)
    def test_first_n_is_prefix_of_sorted(self, values: list[int], count: int) -> None:
        class Box:
            def __init__(self, value):
                self.value = value

        qs = QuerySet([Box(v) for v in values])
        result = [b.value for b in qs.sorted_by("value").first_n(count)]
        assert result == sorted(values)[:count]


class TestSorters:
    def test_field_sorter_records_chain(self) -> None:
        assert FieldSorter("balance").recorded_accessors() == ("balance",)
        assert FieldSorter("first.title").recorded_accessors() == ("first", "title")

    def test_subclass_sorter_with_getter_is_analysed(self) -> None:
        class S(DoubleSorter):
            def value(self, val):
                return val.getBalance()

        assert S().recorded_accessors() == ("getBalance",)
        assert S().recorded_field() == "getBalance"

    def test_chained_getters_are_analysed(self) -> None:
        class S(DoubleSorter):
            def value(self, val):
                return val.getFirst().getTitle()

        assert S().recorded_accessors() == ("getFirst", "getTitle")

    def test_computed_sorter_is_not_analysed(self) -> None:
        class S(DoubleSorter):
            def value(self, val):
                return val.getMinBalance() - val.getBalance()

        assert S().recorded_accessors() is None

    def test_callable_sorter(self) -> None:
        sorter = CallableSorter(lambda item: item.name)
        assert sorter.recorded_accessors() == ("name",)

    def test_sorter_reading_two_fields_is_rejected(self) -> None:
        class S(DoubleSorter):
            def value(self, val):
                first = val.balance
                return val.name

        assert S().recorded_accessors() is None
