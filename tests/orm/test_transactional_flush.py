"""EntityManager flush runs inside a real transaction.

A failed flush (e.g. an UPDATE violating a unique index) must roll back the
UPDATEs already applied in the same flush, so the database never keeps half
of a unit of work.
"""

from __future__ import annotations

import pytest

from repro.orm import QueryllDatabase
from repro.sqlengine.errors import SqlExecutionError


class TestTransactionalFlush:
    def test_failed_flush_rolls_back_applied_updates(
        self, bank_db: QueryllDatabase
    ) -> None:
        # A unique index over Client.Name makes the second write-back fail.
        bank_db.database.create_index("Client", ["Name"], unique=True)
        em = bank_db.begin_transaction()
        first = em.find("Client", 1000)
        second = em.find("Client", 1001)
        first.name = "Renamed"
        second.name = "Carol"  # collides with client 1002
        with pytest.raises(SqlExecutionError):
            em.commit()
        rows = sorted(
            bank_db.database.execute("SELECT ClientID, Name FROM Client").rows
        )
        # Neither update survived — including the first, already-applied one.
        assert rows == [
            (1000, "Alice"),
            (1001, "Bob"),
            (1002, "Carol"),
            (1003, "Dave"),
        ]
        # The manager is still usable and holds no stale state.
        assert em.dirty_entities == []
        assert em.find("Client", 1000).name == "Alice"

    def test_successful_flush_commits_all_updates(
        self, bank_db: QueryllDatabase
    ) -> None:
        em = bank_db.begin_transaction()
        first = em.find("Client", 1000)
        second = em.find("Client", 1001)
        first.name = "Alicia"
        second.name = "Robert"
        assert em.commit() == 2
        rows = dict(
            bank_db.database.execute(
                "SELECT ClientID, Name FROM Client WHERE ClientID IN (1000, 1001)"
            ).rows
        )
        assert rows == {1000: "Alicia", 1001: "Robert"}

    def test_close_releases_engine_transaction(self, bank_db: QueryllDatabase) -> None:
        em = bank_db.begin_transaction()
        client = em.find("Client", 1000)
        client.name = "Changed"
        em.close()
        # A fresh manager can immediately write (no lock left behind).
        em2 = bank_db.begin_transaction()
        other = em2.find("Client", 1001)
        other.name = "Bobby"
        em2.commit()
        assert bank_db.database.execute(
            "SELECT Name FROM Client WHERE ClientID = 1001"
        ).rows == [("Bobby",)]
