"""Tests for ORM mapping descriptions and validation."""

from __future__ import annotations

import pytest

from repro.errors import OrmError
from repro.orm import EntityMapping, FieldMapping, OrmMapping, RelationshipMapping
from repro.sqlengine.catalog import SqlType


def client_mapping() -> EntityMapping:
    return EntityMapping(
        "Client",
        "Client",
        fields=[
            FieldMapping("clientId", "ClientID", SqlType.INTEGER, primary_key=True),
            FieldMapping("name", "Name", SqlType.TEXT),
        ],
    )


class TestFieldMapping:
    def test_getter_name(self) -> None:
        assert FieldMapping("minBalance", "MinBalance").getter == "getMinBalance"
        assert FieldMapping("name", "Name").getter == "getName"


class TestEntityMapping:
    def test_lookup_by_name_getter_and_column(self) -> None:
        mapping = client_mapping()
        assert mapping.field_by_name("name").column == "Name"
        assert mapping.field_by_accessor("getName").name == "name"
        assert mapping.field_by_column("NAME").name == "name"
        assert mapping.field_by_name("missing") is None

    def test_primary_key(self) -> None:
        assert client_mapping().primary_key.name == "clientId"

    def test_missing_primary_key_raises(self) -> None:
        mapping = EntityMapping("X", "X", fields=[FieldMapping("a", "A")])
        with pytest.raises(OrmError):
            mapping.primary_key

    def test_duplicate_field_rejected(self) -> None:
        with pytest.raises(OrmError):
            EntityMapping(
                "X", "X", fields=[FieldMapping("a", "A"), FieldMapping("a", "B")]
            )

    def test_relationship_field_name_clash_rejected(self) -> None:
        with pytest.raises(OrmError):
            EntityMapping(
                "X",
                "X",
                fields=[FieldMapping("a", "A", primary_key=True)],
                relationships=[RelationshipMapping("a", "Y", "A", "B")],
            )

    def test_to_table_schema(self) -> None:
        schema = client_mapping().to_table_schema()
        assert schema.name == "Client"
        assert schema.primary_key_columns == ["ClientID"]
        assert schema.column("Name").nullable is True

    def test_invalid_relationship_kind(self) -> None:
        with pytest.raises(OrmError):
            RelationshipMapping("x", "Y", "A", "B", kind="many_to_many")


class TestOrmMapping:
    def test_duplicate_entity_rejected(self) -> None:
        mapping = OrmMapping([client_mapping()])
        with pytest.raises(OrmError):
            mapping.add_entity(client_mapping())

    def test_unknown_entity_lookup_raises(self) -> None:
        with pytest.raises(OrmError):
            OrmMapping().entity("Nope")

    def test_entity_for_table(self) -> None:
        mapping = OrmMapping([client_mapping()])
        assert mapping.entity_for_table("client").entity_name == "Client"
        assert mapping.entity_for_table("other") is None

    def test_validate_detects_dangling_relationship(self) -> None:
        entity = EntityMapping(
            "Account",
            "Account",
            fields=[FieldMapping("accountId", "AccountID", SqlType.INTEGER, primary_key=True)],
            relationships=[RelationshipMapping("holder", "Client", "ClientID", "ClientID")],
        )
        mapping = OrmMapping([entity])
        with pytest.raises(OrmError):
            mapping.validate()

    def test_validate_detects_unmapped_fk_column(self) -> None:
        client = client_mapping()
        account = EntityMapping(
            "Account",
            "Account",
            fields=[FieldMapping("accountId", "AccountID", SqlType.INTEGER, primary_key=True)],
            relationships=[
                RelationshipMapping("holder", "Client", "ClientID", "ClientID", "to_one")
            ],
        )
        mapping = OrmMapping([client, account])
        with pytest.raises(OrmError):
            mapping.validate()

    def test_valid_bank_mapping_passes(self, bank_mapping) -> None:
        bank_mapping.validate()
        assert set(bank_mapping.entity_names()) == {"Client", "Account", "Office"}
        assert len(bank_mapping.table_schemas()) == 3
