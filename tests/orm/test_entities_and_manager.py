"""Tests for entity classes, the EntityManager and transactions (Figs. 3-4)."""

from __future__ import annotations

import pytest

from repro.errors import OrmError
from repro.orm import QueryllDatabase


class TestEntityAccess:
    def test_find_by_primary_key(self, bank_db: QueryllDatabase) -> None:
        em = bank_db.begin_transaction()
        client = em.find("Client", 1000)
        assert client is not None
        assert client.name == "Alice"
        assert client.getAddress() == "1 Main Street"

    def test_find_missing_returns_none(self, bank_db: QueryllDatabase) -> None:
        em = bank_db.begin_transaction()
        assert em.find("Client", 999999) is None

    def test_identity_map_returns_same_object(self, bank_db: QueryllDatabase) -> None:
        em = bank_db.begin_transaction()
        assert em.find("Client", 1000) is em.find("Client", 1000)

    def test_java_style_finder_and_all(self, bank_db: QueryllDatabase) -> None:
        em = bank_db.begin_transaction()
        client = em.findClient(1001)
        assert client.country == "Switzerland"
        names = sorted(c.name for c in em.allClient())
        assert names == ["Alice", "Bob", "Carol", "Dave"]

    def test_unknown_dynamic_accessor_raises(self, bank_db: QueryllDatabase) -> None:
        em = bank_db.begin_transaction()
        with pytest.raises(AttributeError):
            em.allUnicorn()

    def test_paper_figure4_usage(self, bank_db: QueryllDatabase) -> None:
        """EntityManager em = db.beginTransaction(); ... db.endTransaction(em, true)"""
        em = bank_db.beginTransaction()
        client = em.find("Client", 1000)
        assert client.getAccounts().size() == 2
        bank_db.endTransaction(em, True)

    def test_entity_equality_and_hash_by_primary_key(self, bank_db: QueryllDatabase) -> None:
        em1 = bank_db.begin_transaction()
        em2 = bank_db.begin_transaction()
        a = em1.find("Client", 1000)
        b = em2.find("Client", 1000)
        assert a == b and hash(a) == hash(b)
        assert a != em1.find("Client", 1001)

    def test_unknown_field_raises(self, bank_db: QueryllDatabase) -> None:
        em = bank_db.begin_transaction()
        client = em.find("Client", 1000)
        with pytest.raises(AttributeError):
            client.favourite_colour


class TestRelationships:
    def test_to_one_navigation(self, bank_db: QueryllDatabase) -> None:
        em = bank_db.begin_transaction()
        account = em.find("Account", 3)
        assert account.holder.name == "Bob"
        assert account.getHolder().getCountry() == "Switzerland"

    def test_to_many_navigation_is_lazy(self, bank_db: QueryllDatabase) -> None:
        em = bank_db.begin_transaction()
        client = em.find("Client", 1000)
        accounts = client.accounts
        assert accounts.is_lazy
        assert sorted(a.accountId for a in accounts) == [1, 2]

    def test_assigning_relationship_directly_is_rejected(self, bank_db) -> None:
        em = bank_db.begin_transaction()
        account = em.find("Account", 1)
        with pytest.raises(OrmError):
            account.holder = em.find("Client", 1001)


class TestQueries:
    def test_all_returns_lazy_queryset_with_sql(self, bank_db: QueryllDatabase) -> None:
        em = bank_db.begin_transaction()
        clients = em.all("Client")
        assert clients.is_lazy
        assert "FROM Client" in clients.describe_sql()
        assert len(clients) == 4
        assert not clients.is_lazy

    def test_all_accepts_entity_class(self, bank_db: QueryllDatabase) -> None:
        em = bank_db.begin_transaction()
        Client = bank_db.entity_class("Client")
        assert len(em.all(Client)) == 4

    def test_all_rejects_unknown_entity(self, bank_db: QueryllDatabase) -> None:
        em = bank_db.begin_transaction()
        with pytest.raises(OrmError):
            em.all("Unicorn")

    def test_queries_executed_counter(self, bank_db: QueryllDatabase) -> None:
        em = bank_db.begin_transaction()
        before = em.queries_executed
        em.find("Client", 1000)
        em.find("Client", 1000)  # identity map: no second query
        assert em.queries_executed == before + 1


class TestPersistence:
    def test_dirty_tracking_and_commit_writes_back(self, bank_db: QueryllDatabase) -> None:
        em = bank_db.begin_transaction()
        client = em.find("Client", 1000)
        client.name = "Alicia"
        client.country = "Portugal"
        assert client in em.dirty_entities
        updates = em.commit()
        assert updates == 1
        rows = bank_db.database.execute(
            "SELECT Name, Country FROM Client WHERE ClientID = 1000"
        ).rows
        assert rows == [("Alicia", "Portugal")]

    def test_java_style_setter(self, bank_db: QueryllDatabase) -> None:
        em = bank_db.begin_transaction()
        client = em.find("Client", 1002)
        client.setName("Caroline")
        em.commit()
        assert bank_db.database.execute(
            "SELECT Name FROM Client WHERE ClientID = 1002"
        ).rows == [("Caroline",)]

    def test_rollback_discards_pending_changes(self, bank_db: QueryllDatabase) -> None:
        em = bank_db.begin_transaction()
        client = em.find("Client", 1000)
        client.name = "Changed"
        em.rollback()
        assert em.dirty_entities == []
        em2 = bank_db.begin_transaction()
        assert em2.find("Client", 1000).name == "Alice"

    def test_persist_inserts_new_entity(self, bank_db: QueryllDatabase) -> None:
        em = bank_db.begin_transaction()
        Client = bank_db.entity_class("Client")
        new_client = Client(clientId=2000, name="Eve", address="5", country="Japan", postalCode="1")
        em.persist(new_client)
        assert bank_db.database.row_count("Client") == 5
        assert em.find("Client", 2000) is new_client

    def test_remove_deletes_row(self, bank_db: QueryllDatabase) -> None:
        em = bank_db.begin_transaction()
        account = em.find("Account", 6)
        em.remove(account)
        assert bank_db.database.row_count("Account") == 5

    def test_transaction_context_manager_commits(self, bank_db: QueryllDatabase) -> None:
        with bank_db.transaction() as em:
            client = em.find("Client", 1003)
            client.postalCode = "NEW"
        assert bank_db.database.execute(
            "SELECT PostalCode FROM Client WHERE ClientID = 1003"
        ).rows == [("NEW",)]

    def test_transaction_context_manager_rolls_back_on_error(self, bank_db) -> None:
        with pytest.raises(ValueError):
            with bank_db.transaction() as em:
                client = em.find("Client", 1003)
                client.postalCode = "SHOULD NOT PERSIST"
                raise ValueError("boom")
        assert bank_db.database.execute(
            "SELECT PostalCode FROM Client WHERE ClientID = 1003"
        ).rows == [("SW1A",)]

    def test_closed_entity_manager_rejects_use(self, bank_db: QueryllDatabase) -> None:
        em = bank_db.begin_transaction()
        em.close()
        with pytest.raises(OrmError):
            em.find("Client", 1000)


class TestOrmTool:
    def test_generated_classes_have_docs_and_mapping(self, bank_db: QueryllDatabase) -> None:
        Client = bank_db.entity_class("Client")
        assert "Generated entity" in (Client.__doc__ or "")
        assert Client._mapping.table == "Client"

    def test_schema_contains_foreign_key_indexes(self, bank_db: QueryllDatabase) -> None:
        data = bank_db.database.table_data("Account")
        index_columns = {tuple(index.columns) for index in data.indexes().values()}
        assert ("ClientID",) in index_columns
