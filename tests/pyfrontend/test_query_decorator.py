"""Tests for the CPython-bytecode frontend (lowering and @query decorator),
covering the paper's Figs. 5-7 written as plain Python."""

from __future__ import annotations

import pytest

from repro.core.tac.instructions import Assign, IfGoto, Return
from repro.errors import UnsupportedQueryError
from repro.orm import Pair, QueryllDatabase, QuerySet
from repro.pyfrontend import lower_function, query


# -- lowering -------------------------------------------------------------------------------


class TestLowering:
    def test_simple_loop_lowering_shape(self) -> None:
        def canadians(em, country):
            result = QuerySet()
            for c in em.all("Client"):
                if c.country == country:
                    result.add(c.name)
            return result

        method = lower_function(canadians)
        assert method.parameters == ["em", "country"]
        kinds = [type(instruction) for instruction in method.instructions]
        assert Return in kinds and IfGoto in kinds and Assign in kinds
        text = " ".join(repr(instruction) for instruction in method.instructions)
        assert "hasNext" in text and "next" in text and "iterator" in text
        method.validate()

    def test_arithmetic_and_tuple_lowering(self) -> None:
        def overdrawn(em):
            result = QuerySet()
            for a in em.all("Account"):
                if a.balance < a.minBalance:
                    result.add((a, (a.minBalance - a.balance) * 0.001))
            return result

        method = lower_function(overdrawn)
        method.validate()

    def test_unsupported_construct_raises(self) -> None:
        def uses_subscript(em):
            result = QuerySet()
            for c in em.all("Client"):
                result.add(c.name[0])
            return result

        with pytest.raises(UnsupportedQueryError):
            lower_function(uses_subscript)

    def test_keyword_arguments_unsupported(self) -> None:
        def with_kwargs(em):
            return em.all(entity="Client")

        with pytest.raises(UnsupportedQueryError):
            lower_function(with_kwargs)


# -- decorator ------------------------------------------------------------------------------


@pytest.fixture()
def bank(bank_db: QueryllDatabase):
    return bank_db


class TestQueryDecorator:
    def test_fig5_selection_is_rewritten(self, bank) -> None:
        @query
        def canadians(em, country):
            result = QuerySet()
            for c in em.all("Client"):
                if c.country == country:
                    result.add(c.name)
            return result

        em = bank.begin_transaction()
        assert canadians.is_rewritable(em)
        sql = canadians.generated_sql(em)
        assert "FROM Client AS A" in sql and "?" in sql
        values = sorted(canadians(em, "Canada").to_list())
        assert values == ["Alice", "Carol"]
        assert canadians.rewritten_calls == 1
        assert canadians.fallback_calls == 0

    def test_rewritten_results_equal_unrewritten(self, bank) -> None:
        @query
        def canadians(em, country):
            result = QuerySet()
            for c in em.all("Client"):
                if c.country == country:
                    result.add(c.name)
            return result

        em = bank.begin_transaction()
        fast = sorted(canadians(em, "Canada").to_list())
        slow = sorted(canadians.original(em, "Canada").to_list())
        assert fast == slow

    def test_rewrite_issues_single_sql_statement(self, bank) -> None:
        @query
        def swiss(em):
            result = QuerySet()
            for c in em.all("Client"):
                if c.country == "Switzerland":
                    result.add(c)
            return result

        em = bank.begin_transaction()
        before = bank.database.statements_executed
        clients = swiss(em).to_list()
        assert len(clients) == 1
        assert bank.database.statements_executed == before + 1

    def test_fig6_projection_with_pair(self, bank) -> None:
        @query
        def overdrawn(em):
            result = QuerySet()
            for a in em.all("Account"):
                if a.balance < a.minBalance:
                    result.add(Pair(a, (a.minBalance - a.balance) * 0.001))
            return result

        em = bank.begin_transaction()
        assert overdrawn.is_rewritable(em)
        penalties = {pair.first.accountId: round(pair.second, 4) for pair in overdrawn(em)}
        assert penalties == {2: 0.05, 4: 0.075, 5: 0.01}

    def test_fig7_join_through_navigation(self, bank) -> None:
        @query
        def swiss_accounts(em):
            result = QuerySet()
            for a in em.all("Account"):
                if a.holder.country == "Switzerland":
                    result.add(Pair(a.holder, a))
            return result

        em = bank.begin_transaction()
        sql = swiss_accounts.generated_sql(em)
        assert "FROM Account AS A, Client AS B" in sql
        pairs = [(p.first.name, p.second.accountId) for p in swiss_accounts(em)]
        assert sorted(pairs) == [("Bob", 3), ("Bob", 4)]

    def test_multiple_conditions_or_paths(self, bank) -> None:
        @query
        def seattle_or_la(em):
            result = QuerySet()
            for office in em.all("Office"):
                if office.name == "Seattle":
                    result.add(office)
                elif office.name == "LA":
                    result.add(office)
            return result

        em = bank.begin_transaction()
        sql = seattle_or_la.generated_sql(em)
        assert " OR " in sql
        assert sorted(o.name for o in seattle_or_la(em)) == ["LA", "Seattle"]

    def test_and_condition(self, bank) -> None:
        @query
        def rich_canadians(em, threshold):
            result = QuerySet()
            for a in em.all("Account"):
                if a.holder.country == "Canada" and a.balance > threshold:
                    result.add(a)
            return result

        em = bank.begin_transaction()
        assert [a.accountId for a in rich_canadians(em, 100.0)] == [1]

    def test_unrewritable_function_falls_back(self, bank) -> None:
        external = []

        @query
        def leaky(em):
            result = QuerySet()
            for c in em.all("Client"):
                external.append(c.name)  # side effect: not translatable
                result.add(c)
            return result

        em = bank.begin_transaction()
        assert not leaky.is_rewritable(em)
        assert leaky.rewrite_reason(em)
        clients = leaky(em)
        assert len(clients) == 4
        assert leaky.fallback_calls == 1
        assert len(external) == 4

    def test_fallback_disabled_raises(self, bank) -> None:
        @query(fallback=False)
        def leaky(em):
            result = QuerySet()
            for c in em.all("Client"):
                print(c)
                result.add(c)
            return result

        em = bank.begin_transaction()
        with pytest.raises(UnsupportedQueryError):
            leaky(em)

    def test_lazy_result_supports_order_and_limit(self, bank) -> None:
        @query
        def all_accounts(em):
            result = QuerySet()
            for a in em.all("Account"):
                if a.balance >= 0.0:
                    result.add(a)
            return result

        em = bank.begin_transaction()
        top = all_accounts(em).sorted_by("balance", descending=True).first_n(2)
        assert [a.accountId for a in top] == [6, 3]

    def test_decorator_rejects_non_functions(self) -> None:
        with pytest.raises(TypeError):
            query(42)  # type: ignore[arg-type]

    def test_call_without_entity_manager_falls_back(self, bank) -> None:
        @query
        def identity(em, country):
            result = QuerySet()
            for c in em.all("Client"):
                if c.country == country:
                    result.add(c)
            return result

        class FakeManager:
            def all(self, name):
                return QuerySet([])

        result = identity(FakeManager(), "Canada")
        assert result.to_list() == []
        assert identity.fallback_calls == 1
