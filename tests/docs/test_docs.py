"""Documentation stays true: fenced ``python`` blocks in README/docs must
run, and intra-repo markdown links must resolve.

Every ```python block is executed doctest-style: blocks of one file run
sequentially in a single shared namespace (so a later block can build on an
earlier one), and any exception fails the test with the file and block
number.  Blocks are real code — when a refactor changes an API, CI points
at the stale document.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

#: The documents under contract.
DOCUMENTS = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda path: path.name,
)

_LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _python_blocks(path: Path) -> list[tuple[int, str]]:
    """(start line, source) of every fenced ``python`` block in ``path``."""
    blocks: list[tuple[int, str]] = []
    lines = path.read_text().splitlines()
    in_block = False
    language = ""
    start = 0
    collected: list[str] = []
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not in_block and stripped.startswith("```"):
            in_block = True
            language = stripped[3:].strip().lower()
            start = number + 1
            collected = []
            continue
        if in_block and stripped == "```":
            in_block = False
            if language == "python":
                blocks.append((start, "\n".join(collected)))
            continue
        if in_block:
            collected.append(line)
    return blocks


@pytest.mark.parametrize(
    "document", DOCUMENTS, ids=[path.name for path in DOCUMENTS]
)
def test_python_code_blocks_run(document: Path) -> None:
    namespace: dict[str, object] = {"__name__": f"docs_{document.stem}"}
    for start_line, source in _python_blocks(document):
        try:
            exec(compile(source, f"{document.name}:{start_line}", "exec"), namespace)
        except Exception as error:  # noqa: BLE001 - report the block that broke
            pytest.fail(
                f"{document.relative_to(REPO_ROOT)} code block at line "
                f"{start_line} no longer runs: {type(error).__name__}: {error}"
            )


@pytest.mark.parametrize(
    "document", DOCUMENTS, ids=[path.name for path in DOCUMENTS]
)
def test_intra_repo_links_resolve(document: Path) -> None:
    broken: list[str] = []
    for target in _LINK_PATTERN.findall(document.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        if not (document.parent / relative).resolve().exists():
            broken.append(target)
    assert not broken, (
        f"{document.relative_to(REPO_ROOT)} has broken intra-repo links: {broken}"
    )


def test_docs_tree_is_complete() -> None:
    """The documents the README links into must exist."""
    names = {path.name for path in DOCUMENTS}
    assert {"README.md", "architecture.md", "sql-engine.md", "optimizer.md"} <= names
