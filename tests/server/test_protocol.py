"""Wire-protocol unit tests: codec round trips, frame robustness, errors.

The codec round-trip property is hypothesis-driven: any message built from
engine-legal values (None/bool/int/float/str) must survive
encode → frame → read_frame → decode bit-exactly.  The frame tests pin the
failure modes a network peer can produce — truncation, oversized length
prefixes, corrupt checksums, garbage — to :class:`ProtocolError` rather
than silent misparsing.
"""

from __future__ import annotations

import io
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server import protocol
from repro.sqlengine.errors import (
    SqlCatalogError,
    SqlExecutionError,
    SqlParseError,
)

# Engine-legal cell values: what SqlType.coerce can produce.  NaN is
# excluded only because it breaks the == comparison, not the codec.
values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),
    st.text(max_size=40),
)
rows = st.lists(st.tuples(values, values, values), max_size=8)
sql_text = st.text(min_size=0, max_size=120)


def _roundtrip_client(payload: bytes) -> protocol.ClientMessage:
    stream = io.BytesIO(protocol.frame(payload))
    return protocol.decode_client_message(protocol.read_frame(stream))


def _roundtrip_server(payload: bytes) -> protocol.ServerMessage:
    stream = io.BytesIO(protocol.frame(payload))
    return protocol.decode_server_message(protocol.read_frame(stream))


class TestClientCodec:
    @given(sql=sql_text, params=st.lists(values, max_size=6), max_rows=st.integers(0, 1 << 20))
    @settings(max_examples=60)
    def test_execute_roundtrip(self, sql, params, max_rows) -> None:
        message = _roundtrip_client(
            protocol.encode_execute(sql, tuple(params), max_rows)
        )
        assert message.op == protocol.EXECUTE
        assert message.sql == sql
        assert message.params == tuple(params)
        assert message.max_rows == max_rows

    @given(stmt_id=st.integers(0, 1 << 30), params=st.lists(values, max_size=6))
    @settings(max_examples=40)
    def test_execute_prepared_roundtrip(self, stmt_id, params) -> None:
        message = _roundtrip_client(
            protocol.encode_execute_prepared(stmt_id, tuple(params), 7)
        )
        assert message.op == protocol.EXECUTE_PREPARED
        assert message.stmt_id == stmt_id
        assert message.params == tuple(params)

    @given(sql=sql_text)
    @settings(max_examples=30)
    def test_prepare_and_explain_roundtrip(self, sql) -> None:
        assert _roundtrip_client(protocol.encode_prepare(sql)).sql == sql
        assert _roundtrip_client(protocol.encode_explain(sql)).sql == sql

    def test_simple_messages_roundtrip(self) -> None:
        for op in (
            protocol.BEGIN, protocol.COMMIT, protocol.ROLLBACK,
            protocol.CHECKPOINT, protocol.SERVER_STATS, protocol.PING,
            protocol.GOODBYE,
        ):
            assert _roundtrip_client(protocol.encode_simple(op)).op == op

    def test_hello_and_autocommit_roundtrip(self) -> None:
        hello = _roundtrip_client(protocol.encode_hello(version=3, client_name="x"))
        assert (hello.op, hello.version, hello.client_name) == (protocol.HELLO, 3, "x")
        assert _roundtrip_client(protocol.encode_set_autocommit(False)).flag is False
        assert _roundtrip_client(protocol.encode_set_autocommit(True)).flag is True

    def test_fetch_and_close_roundtrip(self) -> None:
        fetch = _roundtrip_client(protocol.encode_fetch(5, 100))
        assert (fetch.cursor_id, fetch.max_rows) == (5, 100)
        assert _roundtrip_client(protocol.encode_close_cursor(9)).cursor_id == 9
        assert _roundtrip_client(protocol.encode_close_statement(4)).stmt_id == 4


class TestServerCodec:
    @given(
        columns=st.lists(st.text(min_size=1, max_size=20), max_size=6),
        result_rows=rows,
        rowcount=st.integers(0, 1 << 30),
        cursor_id=st.integers(0, 1 << 20),
        in_transaction=st.booleans(),
        exhausted=st.booleans(),
    )
    @settings(max_examples=60)
    def test_result_roundtrip(
        self, columns, result_rows, rowcount, cursor_id, in_transaction, exhausted
    ) -> None:
        message = _roundtrip_server(protocol.encode_result(
            columns, result_rows, rowcount, cursor_id, in_transaction, exhausted
        ))
        assert message.op == protocol.RESULT
        assert message.columns == tuple(columns)
        assert message.rows == tuple(result_rows)
        assert message.rowcount == rowcount
        assert message.cursor_id == cursor_id
        assert message.in_transaction == in_transaction
        assert message.exhausted == exhausted

    @given(result_rows=rows, in_transaction=st.booleans())
    @settings(max_examples=30)
    def test_rows_roundtrip(self, result_rows, in_transaction) -> None:
        message = _roundtrip_server(
            protocol.encode_rows(result_rows, 3, in_transaction, False)
        )
        assert message.rows == tuple(result_rows)
        assert message.cursor_id == 3
        assert not message.exhausted

    @given(error_class=st.text(min_size=1, max_size=30), text=st.text(max_size=200))
    @settings(max_examples=30)
    def test_error_roundtrip(self, error_class, text) -> None:
        message = _roundtrip_server(protocol.encode_error(error_class, text, True))
        assert message.op == protocol.ERROR
        assert message.error_class == error_class
        assert message.message == text
        assert message.in_transaction

    def test_remaining_messages_roundtrip(self) -> None:
        hello = _roundtrip_server(protocol.encode_hello_ok(banner="srv"))
        assert (hello.version, hello.text) == (protocol.PROTOCOL_VERSION, "srv")
        ok = _roundtrip_server(protocol.encode_ok(True, rowcount=4))
        assert (ok.in_transaction, ok.rowcount) == (True, 4)
        assert _roundtrip_server(protocol.encode_prepared(11, False)).stmt_id == 11
        assert _roundtrip_server(protocol.encode_stats('{"a":1}', False)).text == '{"a":1}'
        assert _roundtrip_server(protocol.encode_explained("plan", False)).text == "plan"


class TestFrameRobustness:
    def test_clean_eof_returns_none(self) -> None:
        assert protocol.read_frame(io.BytesIO(b"")) is None

    def test_truncated_header(self) -> None:
        with pytest.raises(protocol.ProtocolError, match="header"):
            protocol.read_frame(io.BytesIO(b"\x01\x02"))

    def test_truncated_body(self) -> None:
        framed = protocol.frame(protocol.encode_simple(protocol.PING))
        with pytest.raises(protocol.ProtocolError, match="body"):
            protocol.read_frame(io.BytesIO(framed[:-3]))

    def test_oversized_length_prefix_is_rejected_without_allocation(self) -> None:
        huge = struct.pack("<I", protocol.MAX_MESSAGE + 1) + b"x" * 16
        with pytest.raises(protocol.ProtocolError, match="maximum"):
            protocol.read_frame(io.BytesIO(huge))

    def test_corrupt_checksum(self) -> None:
        framed = bytearray(protocol.frame(protocol.encode_simple(protocol.PING)))
        framed[-1] ^= 0xFF
        with pytest.raises(protocol.ProtocolError, match="checksum"):
            protocol.read_frame(io.BytesIO(bytes(framed)))

    def test_corrupt_payload_byte(self) -> None:
        framed = bytearray(protocol.frame(protocol.encode_execute("SELECT 1", ())))
        framed[6] ^= 0x55
        with pytest.raises(protocol.ProtocolError, match="checksum"):
            protocol.read_frame(io.BytesIO(bytes(framed)))

    @given(garbage=st.binary(min_size=1, max_size=64))
    @settings(max_examples=40)
    def test_garbage_never_parses_silently(self, garbage) -> None:
        """Random bytes either fail framing or fail message decoding; they
        never produce a quietly wrong message of a known opcode."""
        try:
            payload = protocol.read_frame(io.BytesIO(garbage))
        except protocol.ProtocolError:
            return
        if payload is None:
            return
        try:
            protocol.decode_client_message(payload)
        except (protocol.ProtocolError, Exception):
            # Any decoding failure is acceptable; silent misparse is not
            # observable here beyond not crashing the frame layer.
            return

    def test_empty_payload_is_rejected(self) -> None:
        with pytest.raises(protocol.ProtocolError, match="empty"):
            protocol.decode_client_message(b"")
        with pytest.raises(protocol.ProtocolError, match="short"):
            protocol.decode_server_message(b"\x82")

    def test_unknown_opcodes_are_rejected(self) -> None:
        with pytest.raises(protocol.ProtocolError, match="unknown client opcode"):
            protocol.decode_client_message(b"\x7f\x00")
        with pytest.raises(protocol.ProtocolError, match="unknown server opcode"):
            protocol.decode_server_message(b"\x70\x00")


class TestErrorRegistry:
    def test_known_engine_classes_roundtrip(self) -> None:
        for exception_type in (SqlParseError, SqlCatalogError, SqlExecutionError):
            with pytest.raises(exception_type, match="boom"):
                protocol.raise_remote_error(exception_type.__name__, "boom")

    def test_unknown_class_degrades_to_remote_server_error(self) -> None:
        with pytest.raises(protocol.RemoteServerError) as info:
            protocol.raise_remote_error("SomethingOdd", "details")
        assert info.value.error_class == "SomethingOdd"
        assert info.value.remote_message == "details"

    def test_error_class_name(self) -> None:
        assert protocol.error_class_name(SqlParseError("x")) == "SqlParseError"
