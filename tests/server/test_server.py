"""Server behaviour: handshake, sessions, cursors, admission control,
idle reaping, stats, shutdown and crash recovery over the network."""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.netclient import (
    ConnectionPool,
    RemoteDatabase,
    WireClient,
    connect,
)
from repro.server import SqlServer, protocol
from repro.sqlengine.durability import DurabilityOptions
from repro.sqlengine.engine import Database
from repro.sqlengine.errors import SqlCatalogError, SqlExecutionError


def make_database(rows: int = 40) -> Database:
    database = Database()
    database.execute(
        "CREATE TABLE item (i_id INTEGER PRIMARY KEY, i_title VARCHAR(60))"
    )
    database.execute_many(
        "INSERT INTO item (i_id, i_title) VALUES (?, ?)",
        [(index, f"title-{index}") for index in range(1, rows + 1)],
    )
    return database


@pytest.fixture()
def server():
    with SqlServer(database=make_database()) as running:
        yield running


class TestHandshake:
    def test_hello_hello_ok(self, server) -> None:
        client = WireClient(*server.address)
        assert client.server_banner == "repro-sql-server"
        client.close()

    def test_protocol_version_mismatch_is_rejected(self, server) -> None:
        sock = socket.create_connection(server.address, timeout=5)
        try:
            sock.sendall(protocol.frame(protocol.encode_hello(version=999)))
            message = protocol.decode_server_message(
                protocol.read_frame(sock.makefile("rb"))
            )
            assert message.op == protocol.ERROR
            assert message.error_class == "ProtocolError"
            assert "version" in message.message
        finally:
            sock.close()

    def test_first_frame_must_be_hello(self, server) -> None:
        sock = socket.create_connection(server.address, timeout=5)
        try:
            sock.sendall(protocol.frame(protocol.encode_simple(protocol.PING)))
            message = protocol.decode_server_message(
                protocol.read_frame(sock.makefile("rb"))
            )
            assert message.op == protocol.ERROR
            assert "HELLO" in message.message
        finally:
            sock.close()


class TestStatementsAndCursors:
    def test_execute_inline_result(self, server) -> None:
        client = WireClient(*server.address)
        message = client.execute("SELECT i_id, i_title FROM item WHERE i_id = ?", (3,))
        assert message.columns == ("i_id", "i_title")
        assert message.rows == ((3, "title-3"),)
        assert message.exhausted and message.cursor_id == 0
        client.close()

    def test_prepared_statement_lifecycle(self, server) -> None:
        client = WireClient(*server.address)
        stmt_id = client.prepare("SELECT i_title FROM item WHERE i_id = ?")
        for index in (1, 2, 3):
            message = client.execute_prepared(stmt_id, (index,))
            assert message.rows == ((f"title-{index}",),)
        client.close_statement(stmt_id)
        with pytest.raises(SqlExecutionError, match="unknown prepared statement"):
            client.execute_prepared(stmt_id, (1,))
        client.close()

    def test_fetch_streams_in_batches(self, server) -> None:
        client = WireClient(*server.address)
        message = client.execute("SELECT i_id FROM item", (), max_rows=10)
        assert len(message.rows) == 10 and not message.exhausted
        cursor_id = message.cursor_id
        total = list(message.rows)
        while True:
            batch = client.fetch(cursor_id, 10)
            total.extend(batch.rows)
            if batch.exhausted:
                break
        assert [row[0] for row in total] == list(range(1, 41))
        # The cursor is gone once drained.
        with pytest.raises(SqlExecutionError, match="unknown cursor"):
            client.fetch(cursor_id, 10)
        client.close()

    def test_close_cursor_discards(self, server) -> None:
        client = WireClient(*server.address)
        message = client.execute("SELECT i_id FROM item", (), max_rows=5)
        client.close_cursor(message.cursor_id)
        with pytest.raises(SqlExecutionError, match="unknown cursor"):
            client.fetch(message.cursor_id, 5)
        client.close()

    def test_error_keeps_connection_usable(self, server) -> None:
        client = WireClient(*server.address)
        with pytest.raises(SqlCatalogError):
            client.execute("SELECT nope FROM item")
        assert client.execute("SELECT COUNT(*) FROM item").rows[0][0] == 40
        client.close()

    def test_undecodable_frame_gets_structured_error(self, server) -> None:
        """A CRC-valid frame with an unknown opcode (or truncated fields)
        is answered with a ProtocolError frame, not a silent hangup."""
        sock = socket.create_connection(server.address, timeout=5)
        try:
            rfile = sock.makefile("rb")
            sock.sendall(protocol.frame(protocol.encode_hello()))
            hello = protocol.decode_server_message(protocol.read_frame(rfile))
            assert hello.op == protocol.HELLO_OK
            sock.sendall(protocol.frame(b"\x7e"))  # unknown opcode, valid CRC
            message = protocol.decode_server_message(protocol.read_frame(rfile))
            assert message.op == protocol.ERROR
            assert message.error_class == "ProtocolError"
        finally:
            sock.close()

    def test_garbage_on_connect_gets_structured_error(self, server) -> None:
        sock = socket.create_connection(server.address, timeout=5)
        try:
            sock.sendall(b"GET / HTTP/1.1\r\n\r\n" + b"\x00" * 64)
            message = protocol.decode_server_message(
                protocol.read_frame(sock.makefile("rb"))
            )
            assert message.op == protocol.ERROR
            assert message.error_class == "ProtocolError"
        finally:
            sock.close()

    def test_oversized_batches_are_split_to_fit_the_frame_limit(
        self, monkeypatch
    ) -> None:
        """Wide rows that would overflow MAX_MESSAGE in one batch are
        halved into smaller FETCH batches instead of producing a frame the
        client must reject."""
        database = Database()
        database.execute("CREATE TABLE wide (id INTEGER PRIMARY KEY, blob VARCHAR(2000))")
        database.execute_many(
            "INSERT INTO wide (id, blob) VALUES (?, ?)",
            [(index, "x" * 600) for index in range(20)],
        )
        monkeypatch.setattr(protocol, "MAX_MESSAGE", 4096)
        with SqlServer(database=database) as server:
            remote = RemoteDatabase(server.address, batch_rows=0)  # "everything"
            session = remote.session()
            rows = session.execute("SELECT id, blob FROM wide").rows
            assert sorted(row[0] for row in rows) == list(range(20))
            assert all(len(row[1]) == 600 for row in rows)
            assert session.client.round_trips > 2  # split into several frames
            session.close()

    def test_cursor_eviction_is_lru_not_fifo(self, server) -> None:
        """An actively FETCHed cursor survives MAX_CURSORS newer abandoned
        cursors; only stale ones are evicted."""
        from repro.server.server import _ClientHandler

        client = WireClient(*server.address)
        active = client.execute("SELECT i_id FROM item", (), max_rows=2)
        collected = list(active.rows)
        cursor_id = active.cursor_id
        for round_number in range(4):
            for _ in range(_ClientHandler.MAX_CURSORS // 2):
                client.execute("SELECT i_id FROM item", (), max_rows=5)
            batch = client.fetch(cursor_id, 2)  # refreshes LRU position
            collected.extend(batch.rows)
            assert not batch.exhausted
        while True:
            batch = client.fetch(cursor_id, 10)
            collected.extend(batch.rows)
            if batch.exhausted:
                break
        assert sorted(row[0] for row in collected) == list(range(1, 41))
        client.close()

    def test_abandoned_cursors_are_bounded_server_side(self, server) -> None:
        """A client that opens cursors and never drains or closes them
        cannot grow the handler's cursor table past MAX_CURSORS."""
        from repro.server.server import _ClientHandler

        client = WireClient(*server.address)
        for _ in range(_ClientHandler.MAX_CURSORS + 10):
            message = client.execute("SELECT i_id FROM item", (), max_rows=5)
            assert message.cursor_id  # left open deliberately
        handler = next(iter(server._handlers))
        assert len(handler._cursors) <= _ClientHandler.MAX_CURSORS
        client.close()

    def test_explain_over_the_wire(self, server) -> None:
        client = WireClient(*server.address)
        plan = client.explain("SELECT i_title FROM item WHERE i_id = 7")
        assert plan == server.database.explain(
            "SELECT i_title FROM item WHERE i_id = 7"
        )
        client.close()


class TestTransactionsOverTheWire:
    def test_explicit_transaction_commit(self, server) -> None:
        client = WireClient(*server.address)
        client.begin()
        assert client.in_transaction
        client.execute("UPDATE item SET i_title = ? WHERE i_id = ?", ("x", 1))
        client.commit()
        assert not client.in_transaction
        assert server.database.execute(
            "SELECT i_title FROM item WHERE i_id = 1"
        ).rows == [("x",)]
        client.close()

    def test_rollback_undoes(self, server) -> None:
        client = WireClient(*server.address)
        client.begin()
        client.execute("DELETE FROM item WHERE i_id = 2")
        client.rollback()
        assert server.database.row_count("item") == 40
        client.close()

    def test_disconnect_rolls_back_open_transaction(self, server) -> None:
        client = WireClient(*server.address)
        client.set_autocommit(False)
        client.execute("DELETE FROM item WHERE i_id = 2")
        assert client.in_transaction
        client._teardown()  # vanish without GOODBYE/ROLLBACK
        deadline = time.monotonic() + 5
        while server.database.row_count("item") != 40:
            assert time.monotonic() < deadline, "server never rolled back"
            time.sleep(0.01)

    def test_checkpoint_rejected_inside_transaction(self, server) -> None:
        client = WireClient(*server.address)
        client.begin()
        with pytest.raises(SqlExecutionError, match="CHECKPOINT"):
            client.checkpoint()
        client.rollback()
        client.close()


class TestAdmissionControlAndIdle:
    def test_connections_over_the_limit_are_rejected(self) -> None:
        with SqlServer(database=make_database(), max_connections=1) as server:
            first = WireClient(*server.address)
            with pytest.raises(SqlExecutionError, match="capacity"):
                WireClient(*server.address)
            assert server.stats.snapshot()["connections_rejected"] == 1
            first.close()
            # The slot frees up once the first client leaves.
            deadline = time.monotonic() + 5
            while True:
                try:
                    second = WireClient(*server.address)
                    break
                except SqlExecutionError:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
            second.close()

    def test_idle_connections_are_reaped(self) -> None:
        with SqlServer(database=make_database(), idle_timeout=0.2) as server:
            client = WireClient(*server.address)
            assert client.ping()
            time.sleep(0.6)
            with pytest.raises(SqlExecutionError):
                client.execute("SELECT COUNT(*) FROM item")


class TestStats:
    def test_server_stats_counters(self, server) -> None:
        client = WireClient(*server.address)
        client.execute("SELECT i_id FROM item")
        stats = client.server_stats()
        server_counters = stats["server"]
        assert server_counters["connections_accepted"] >= 1
        assert server_counters["connections_active"] >= 1
        assert server_counters["statements"] >= 1
        assert server_counters["rows_shipped"] >= 40
        assert server_counters["bytes_in"] > 0
        assert server_counters["bytes_out"] > 0
        assert stats["engine"]["tables"]["item"] == 40
        assert stats["engine"]["statement_cache"]["size"] > 0
        client.close()


class TestShutdown:
    def test_graceful_shutdown_refuses_new_connections(self) -> None:
        server = SqlServer(database=make_database()).start()
        client = WireClient(*server.address)
        server.shutdown()
        with pytest.raises((OSError, SqlExecutionError)):
            WireClient(*server.address)
        with pytest.raises(SqlExecutionError):
            client.execute("SELECT COUNT(*) FROM item")

    def test_shutdown_closes_an_owned_durable_database(self, tmp_path) -> None:
        server = SqlServer(
            data_dir=str(tmp_path),
            durability=DurabilityOptions(fsync="off"),
        ).start()
        client = connect(*server.address)
        statement = client.create_statement()
        statement.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        statement.execute("INSERT INTO t (id) VALUES (1)")
        server.shutdown()
        with Database(data_dir=str(tmp_path)) as reopened:
            assert reopened.row_count("t") == 1

    def test_shutdown_keeps_a_caller_owned_database_open(self) -> None:
        database = make_database()
        server = SqlServer(database=database).start()
        server.shutdown()
        assert database.row_count("item") == 40  # still usable in-process


class TestCrashRecovery:
    def test_kill_mid_transaction_recovers_committed_prefix(self, tmp_path) -> None:
        """The WAL contract over the network: a server killed with a
        transaction in flight recovers every committed transaction and
        nothing of the uncommitted one."""
        server = SqlServer(
            data_dir=str(tmp_path),
            durability=DurabilityOptions(fsync="off"),
        ).start()
        setup = connect(*server.address)
        setup.create_statement().execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)"
        )
        committer = connect(*server.address, auto_commit=False)
        insert = committer.prepare_statement("INSERT INTO t (id, v) VALUES (?, ?)")
        for index in range(10):
            insert.set_int(1, index)
            insert.set_int(2, index * 10)
            insert.execute_update()
            committer.commit()
        # An eleventh, never-committed transaction in flight at the crash.
        insert.set_int(1, 100)
        insert.set_int(2, 1000)
        insert.execute_update()
        assert committer.in_transaction
        server.kill()  # simulated crash: no drain, no database close
        with Database(data_dir=str(tmp_path)) as recovered:
            assert recovered.row_count("t") == 10
            rows = recovered.execute("SELECT id FROM t").rows
            assert (100,) not in rows
            assert sorted(row[0] for row in rows) == list(range(10))

    def test_concurrent_remote_commits_survive_kill(self, tmp_path) -> None:
        server = SqlServer(
            data_dir=str(tmp_path),
            durability=DurabilityOptions(fsync="off"),
        ).start()
        connect(*server.address).create_statement().execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, thread INTEGER)"
        )
        pool = ConnectionPool(server.address, max_size=4)
        errors: list[BaseException] = []

        def worker(thread_index: int) -> None:
            try:
                for i in range(20):
                    with pool.connection(auto_commit=False) as connection:
                        statement = connection.prepare_statement(
                            "INSERT INTO t (id, thread) VALUES (?, ?)"
                        )
                        statement.set_int(1, thread_index * 1000 + i)
                        statement.set_int(2, thread_index)
                        statement.execute_update()
                        connection.commit()
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        server.kill()
        with Database(data_dir=str(tmp_path)) as recovered:
            assert recovered.row_count("t") == 80
        pool.close()


class TestRemoteDatabaseFacade:
    def test_session_factory_and_stats(self, server) -> None:
        remote = RemoteDatabase(server.address)
        session = remote.session()
        assert session.execute("SELECT COUNT(*) FROM item").rows == [(40,)]
        stats = remote.server_stats()
        assert stats["engine"]["tables"]["item"] == 40
        session.close()
