"""SQL rendering: AST back to text, with parameters inlined.

Round-trip property: rendering a parsed statement and re-parsing the text
must produce a semantically identical statement — checked by executing
both against the same engine and comparing results.
"""

from __future__ import annotations

import pytest

from repro.sharding import sqlgen
from repro.sqlengine.engine import Database
from repro.sqlengine.errors import ShardError
from repro.sqlengine.parser import parse_statement


class TestRenderValue:
    def test_scalars(self) -> None:
        assert sqlgen.render_value(None) == "NULL"
        assert sqlgen.render_value(True) == "TRUE"
        assert sqlgen.render_value(False) == "FALSE"
        assert sqlgen.render_value(42) == "42"
        assert sqlgen.render_value(1.5) == "1.5"

    def test_string_quotes_doubled(self) -> None:
        assert sqlgen.render_value("o'brien") == "'o''brien'"

    def test_unrenderable_type_rejected(self) -> None:
        with pytest.raises(ShardError):
            sqlgen.render_value(object())


class TestRenderStatements:
    def _render(self, sql: str, params=()) -> str:
        statement = parse_statement(sql)
        kind = type(statement).__name__
        if kind == "SelectStatement":
            return sqlgen.render_select(statement, params)
        if kind == "InsertStatement":
            return sqlgen.render_insert(statement, params)
        if kind == "UpdateStatement":
            return sqlgen.render_update(statement, params)
        return sqlgen.render_delete(statement, params)

    def test_round_trip_equivalence(self) -> None:
        database = Database()
        database.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT, s VARCHAR)")
        statements = [
            ("INSERT INTO t VALUES (1, 10, 'a'), (2, 20, 'b'), (3, 30, NULL)", ()),
            ("INSERT INTO t (id, v, s) VALUES (?, ?, ?)", (4, 40, "d'd")),
            ("UPDATE t SET v = v + 1 WHERE id IN (1, 3)", ()),
            ("UPDATE t SET s = ? WHERE id = ?", ("zz", 2)),
            ("DELETE FROM t WHERE v > 35 AND s IS NOT NULL", ()),
            ("SELECT id, v FROM t WHERE NOT (v < 0) ORDER BY v DESC LIMIT 2", ()),
            ("SELECT DISTINCT s FROM t WHERE s IS NOT NULL", ()),
            ("SELECT COUNT(*), SUM(v) AS total FROM t", ()),
            ("SELECT t.id, ABS(-1 * v) FROM t AS t ORDER BY t.id LIMIT 10 OFFSET 1", ()),
        ]
        mirror = Database()
        mirror.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT, s VARCHAR)")
        for sql, params in statements:
            rendered = self._render(sql, params)
            want = database.execute(sql, params)
            got = mirror.execute(rendered)  # parameters are inlined
            assert got.rows == want.rows, (sql, rendered)
            assert got.rowcount == want.rowcount
        assert mirror.execute("SELECT * FROM t ORDER BY id").rows == (
            database.execute("SELECT * FROM t ORDER BY id").rows
        )

    def test_parameters_inline_as_literals(self) -> None:
        rendered = self._render("SELECT * FROM t WHERE s = ? AND v = ?", ("x", 3))
        assert "'x'" in rendered and "3" in rendered and "?" not in rendered

    def test_unbound_parameters_keep_placeholder(self) -> None:
        statement = parse_statement("SELECT * FROM t WHERE id = ?")
        rendered = sqlgen.render_select(statement, None)
        assert "?" in rendered  # EXPLAIN renders without bindings

    def test_missing_binding_rejected(self) -> None:
        statement = parse_statement("SELECT * FROM t WHERE id = ?")
        with pytest.raises(ShardError, match="parameter 1"):
            sqlgen.render_select(statement, ())


class TestRewriteHooks:
    def test_limit_offset_overrides(self) -> None:
        statement = parse_statement("SELECT id FROM t ORDER BY id LIMIT 5 OFFSET 2")
        pushed = sqlgen.render_select(statement, (), limit=7, offset=0)
        # The fan-out push: LIMIT limit+offset per shard, no OFFSET.
        assert pushed.endswith("LIMIT 7")
        assert "OFFSET" not in pushed

    def test_drop_order_and_limit(self) -> None:
        statement = parse_statement("SELECT id FROM t ORDER BY id LIMIT 5")
        bare = sqlgen.render_select(statement, (), drop_order=True, drop_limit=True)
        assert "ORDER BY" not in bare and "LIMIT" not in bare

    def test_item_override_appends_hidden_columns(self) -> None:
        statement = parse_statement("SELECT id FROM t ORDER BY v")
        rewritten = sqlgen.render_select(
            statement, (), items=["id", "v AS __ord0"]
        )
        assert "v AS __ord0" in rewritten

    def test_insert_row_subset(self) -> None:
        statement = parse_statement("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        subset = sqlgen.render_insert(statement, (), rows=[statement.rows[1]])
        assert subset == "INSERT INTO t VALUES (2, 'b')"
