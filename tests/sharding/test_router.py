"""Statement classification: the six routes and their edge cases."""

from __future__ import annotations

import pytest

from repro.sharding.router import (
    ANY,
    BROADCAST,
    FANOUT,
    GATHER,
    Router,
    SINGLE,
    SPLIT,
)
from repro.sharding.shardmap import ShardMap
from repro.sqlengine.errors import ShardError
from repro.sqlengine.parser import parse_statement


@pytest.fixture()
def router() -> Router:
    shard_map = ShardMap(
        version=1, num_shards=2, tables={"item": "i_id", "customer": "c_id"}
    )
    schemas = {
        "item": ("i_id", "i_title", "i_stock"),
        "customer": ("c_id", "c_uname"),
        "country": ("co_id", "co_name"),
    }
    return Router(shard_map, schemas)


def _route(router: Router, sql: str, params=()):
    statement = parse_statement(sql)
    kind = type(statement).__name__
    if kind == "SelectStatement":
        return router.route_select(statement, params)
    if kind == "InsertStatement":
        return router.route_insert(statement, params)
    if kind == "UpdateStatement":
        return router.route_update(statement, params)
    return router.route_delete(statement, params)


class TestSelectRouting:
    def test_global_tables_route_any(self, router) -> None:
        route = _route(router, "SELECT co_name FROM country WHERE co_id = 3")
        assert route.kind == ANY

    def test_bound_key_routes_single(self, router) -> None:
        route = _route(router, "SELECT i_title FROM item WHERE i_id = 7")
        assert route.kind == SINGLE
        assert route.shards == (1,)  # 7 % 2
        assert route.key == ("item", "i_id", 7)
        assert "key=item.i_id=7" in route.description

    def test_parameter_key_binds_through_params(self, router) -> None:
        route = _route(router, "SELECT i_title FROM item WHERE i_id = ?", (8,))
        assert route.kind == SINGLE
        assert route.shards == (0,)

    def test_unbound_params_cannot_pin(self, router) -> None:
        # EXPLAIN routes without bindings: the key is unknowable.
        route = _route(router, "SELECT i_title FROM item WHERE i_id = ?", None)
        assert route.kind == FANOUT

    def test_reversed_equality_still_binds(self, router) -> None:
        route = _route(router, "SELECT i_title FROM item WHERE 7 = i_id")
        assert route.kind == SINGLE

    def test_unbound_key_fans_out(self, router) -> None:
        route = _route(router, "SELECT SUM(i_stock) FROM item")
        assert route.kind == FANOUT
        assert route.shards == (0, 1)

    def test_inequality_does_not_pin(self, router) -> None:
        assert _route(router, "SELECT * FROM item WHERE i_id > 5").kind == FANOUT

    def test_or_disjunction_does_not_pin(self, router) -> None:
        route = _route(router, "SELECT * FROM item WHERE i_id = 1 OR i_id = 2")
        assert route.kind == FANOUT

    def test_column_to_column_equality_does_not_pin(self, router) -> None:
        route = _route(router, "SELECT * FROM item WHERE i_id = i_stock")
        assert route.kind == FANOUT

    def test_sharded_join_with_global_table_fans_out(self, router) -> None:
        # Global tables are replicated on every shard: the join runs
        # shard-local and the coordinator only merges.
        route = _route(
            router,
            "SELECT i_title, co_name FROM item, country WHERE i_id = co_id",
        )
        assert route.kind == FANOUT

    def test_two_sharded_tables_gather(self, router) -> None:
        route = _route(
            router,
            "SELECT i_title FROM item, customer WHERE i_id = c_id",
        )
        assert route.kind == GATHER

    def test_join_pinned_to_one_shard_routes_single(self, router) -> None:
        route = _route(
            router,
            "SELECT i_title FROM item, customer "
            "WHERE item.i_id = 2 AND customer.c_id = 4",
        )
        assert route.kind == SINGLE
        assert route.shards == (0,)

    def test_join_pinned_to_different_shards_gathers(self, router) -> None:
        route = _route(
            router,
            "SELECT i_title FROM item, customer "
            "WHERE item.i_id = 2 AND customer.c_id = 3",
        )
        assert route.kind == GATHER

    def test_unqualified_key_ambiguous_in_join_scope(self, router) -> None:
        # `i_id = 2` without a table qualifier only pins when a single
        # table is in scope.
        route = _route(
            router,
            "SELECT i_title FROM item, customer WHERE i_id = 2",
        )
        assert route.kind == GATHER


class TestWriteRouting:
    def test_single_row_insert_routes_single(self, router) -> None:
        route = _route(router, "INSERT INTO item (i_id, i_title) VALUES (4, 'x')")
        assert route.kind == SINGLE
        assert route.shards == (0,)
        assert route.insert_groups == {0: [0]}

    def test_insert_without_column_list_uses_schema(self, router) -> None:
        route = _route(router, "INSERT INTO item VALUES (5, 'y', 10)")
        assert route.kind == SINGLE
        assert route.shards == (1,)

    def test_multi_row_insert_splits_by_owner(self, router) -> None:
        route = _route(
            router,
            "INSERT INTO item (i_id, i_title) VALUES (1, 'a'), (2, 'b'), (3, 'c')",
        )
        assert route.kind == SPLIT
        assert route.insert_groups == {0: [1], 1: [0, 2]}

    def test_insert_missing_partition_key_rejected(self, router) -> None:
        with pytest.raises(ShardError, match="partition key"):
            _route(router, "INSERT INTO item (i_title) VALUES ('x')")

    def test_insert_into_unknown_sharded_schema_rejected(self, router) -> None:
        bare = Router(router.shard_map, {})
        statement = parse_statement("INSERT INTO item VALUES (1, 'a', 2)")
        with pytest.raises(ShardError, match="column order"):
            bare.route_insert(statement, ())

    def test_global_insert_broadcasts(self, router) -> None:
        route = _route(router, "INSERT INTO country (co_id, co_name) VALUES (1, 'x')")
        assert route.kind == BROADCAST
        assert route.shards == (0, 1)

    def test_keyed_update_routes_single(self, router) -> None:
        route = _route(router, "UPDATE item SET i_stock = 0 WHERE i_id = 6")
        assert route.kind == SINGLE
        assert route.shards == (0,)

    def test_unkeyed_update_broadcasts(self, router) -> None:
        route = _route(router, "UPDATE item SET i_stock = 0 WHERE i_stock < 0")
        assert route.kind == BROADCAST

    def test_partition_key_assignment_rejected(self, router) -> None:
        with pytest.raises(ShardError, match="cannot move between shards"):
            _route(router, "UPDATE item SET i_id = 9 WHERE i_id = 6")

    def test_keyed_delete_routes_single(self, router) -> None:
        route = _route(router, "DELETE FROM item WHERE i_id = 11")
        assert route.kind == SINGLE
        assert route.shards == (1,)

    def test_unkeyed_delete_broadcasts(self, router) -> None:
        assert _route(router, "DELETE FROM item").kind == BROADCAST
