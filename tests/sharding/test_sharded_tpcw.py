"""The TPC-W suite, unchanged, pointed at a sharded cluster.

Same trick as ``tests/netclient/test_remote_tpcw.py``: the
query-equivalence and generated-SQL classes are imported verbatim from
``tests/tpcw/test_tpcw.py`` and re-collected with the ``tpcw_db`` fixture
overridden — but here every session lands on a sharding coordinator
fronting two shard servers, each trailed by a WAL-shipping replica behind
a :class:`~repro.netclient.pool.ReplicatedConnectionPool`.  Every
assertion must hold exactly as in-process: routed single-shard lookups,
fanned-out aggregates and merges, cross-shard 2PC commits.

On top of the reused suite, the transactional write mix (randomised
cross-shard stock transfers) runs concurrently with a mid-run shard-node
kill and must preserve the stock-sum invariant.
"""

from __future__ import annotations

import importlib.util
import threading
import time
from pathlib import Path

import pytest

from repro.tpcw.population import PopulationScale
from repro.tpcw.sharded import build_sharded_cluster
from repro.tpcw.workload import ConcurrentDriver

_SUITE_PATH = Path(__file__).resolve().parent.parent / "tpcw" / "test_tpcw.py"
_spec = importlib.util.spec_from_file_location("tpcw_suite_for_sharding", _SUITE_PATH)
_suite = importlib.util.module_from_spec(_spec)
assert _spec.loader is not None
_spec.loader.exec_module(_suite)


@pytest.fixture(scope="module")
def sharded_cluster():
    cluster = build_sharded_cluster(
        PopulationScale.tiny(), num_shards=2, replicas_per_shard=1
    )
    try:
        yield cluster
    finally:
        cluster.stop()


@pytest.fixture()
def tpcw_db(sharded_cluster):
    """Shadow the in-process fixture with the cluster-backed handle."""
    return sharded_cluster.remote()


class TestShardedQueryEquivalence(_suite.TestQueryEquivalence):
    """tests/tpcw TestQueryEquivalence, executed over the sharded cluster."""


class TestShardedGeneratedSql(_suite.TestGeneratedSqlTable5):
    """tests/tpcw TestGeneratedSqlTable5, executed over the sharded cluster."""


class TestShardedSchemaAndPopulation(_suite.TestSchemaAndPopulation):
    """tests/tpcw TestSchemaAndPopulation against the cluster handle."""


class TestShardedTopology:
    def test_population_partitioned_not_duplicated(self, sharded_cluster) -> None:
        """Sharded tables split across shards; global tables are full
        copies on every shard."""
        local = sharded_cluster.local.database
        per_shard = [node.database for node in sharded_cluster.nodes]
        for table in ("item", "customer"):
            counts = [db.row_count(table) for db in per_shard]
            assert sum(counts) == local.row_count(table)
            assert all(count > 0 for count in counts)
        for table in ("address", "country", "author"):
            for db in per_shard:
                assert db.row_count(table) == local.row_count(table)

    def test_aggregates_byte_identical_to_single_node(
        self, sharded_cluster
    ) -> None:
        coordinator = sharded_cluster.coordinator
        local = sharded_cluster.local.database
        for sql in (
            "SELECT COUNT(*), SUM(i_stock), MIN(i_cost), MAX(i_srp), "
            "AVG(i_cost) FROM item",
            "SELECT i_id, i_title FROM item ORDER BY i_title, i_id LIMIT 11 "
            "OFFSET 2",
            "SELECT c_uname FROM customer ORDER BY c_uname DESC LIMIT 5",
            "SELECT i_title, a_lname FROM item, author "
            "WHERE i_a_id = a_id ORDER BY i_id LIMIT 8",
        ):
            want = local.execute(sql)
            got = coordinator.execute(sql)
            assert got.columns == want.columns
            assert got.rows == want.rows

    def test_explain_shows_routing(self, sharded_cluster) -> None:
        coordinator = sharded_cluster.coordinator
        single = coordinator.explain("SELECT i_title FROM item WHERE i_id = 7")
        assert "shards=1 (key=item.i_id=7" in single
        fanout = coordinator.explain("SELECT SUM(i_stock) FROM item")
        assert "shards=2 (fanout+merge" in fanout


class TestShardedWriteMix:
    def test_stock_sum_survives_transfers_and_a_node_kill(
        self, sharded_cluster
    ) -> None:
        """Concurrent cross-shard stock transfers while a shard's replica
        node is killed mid-run: every commit is atomic across shards (2PC)
        and the routed pool absorbs the dead node, so SUM(i_stock) is
        exactly preserved."""
        remote = sharded_cluster.remote()
        engine = remote.database
        before = sum(
            row[0] for row in engine.execute("SELECT i_stock FROM item").rows
        )

        killed = threading.Event()

        def kill_replica_mid_run() -> None:
            time.sleep(0.3)
            sharded_cluster.nodes[1].replicas[0].kill()
            killed.set()

        killer = threading.Thread(target=kill_replica_mid_run)
        killer.start()
        try:
            result = ConcurrentDriver(
                sharded_cluster.local,
                variant="handwritten",
                threads=4,
                interactions_per_thread=40,
                write_fraction=0.4,
                address=sharded_cluster.address,
            ).run()
        finally:
            killer.join()
        assert killed.is_set()
        assert result.writes > 0

        sharded = sharded_cluster.remote()
        after_sharded = sum(
            row[0]
            for row in sharded.database.execute("SELECT i_stock FROM item").rows
        )
        assert after_sharded == before
        # Independently verified per shard, straight off the engines.
        per_shard = sum(
            row[0]
            for node in sharded_cluster.nodes
            for row in node.database.execute("SELECT i_stock FROM item").rows
        )
        assert per_shard == before
        stats = sharded_cluster.coordinator.stats()
        assert stats["transactions_2pc"] > 0
