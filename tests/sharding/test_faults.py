"""Coordinator fault paths: dead shards, a crashed coordinator, stale maps.

The harness runs real :class:`~repro.server.SqlServer` processes-worth of
shard nodes (in-process threads, real sockets) behind connection pools,
so every fault is injected at the same surface production would see it:
a socket that stops answering, a journal left on disk, a shard map one
version behind.
"""

from __future__ import annotations

import pytest

from repro.netclient.client import RemoteDatabase
from repro.netclient.pool import ConnectionPool
from repro.server.server import SqlServer
from repro.sharding import DecisionJournal, ShardMap, ShardedDatabase
from repro.sqlengine.engine import Database
from repro.sqlengine.errors import ShardError, StaleShardMapError


class WireCluster:
    """Two wire shards behind pools, plus a fresh coordinator factory."""

    def __init__(self, data_dir=None):
        self.shard_map = ShardMap(
            version=1, num_shards=2, tables={"acct": "id"}
        )
        self.databases = [Database(), Database()]
        self.servers = [
            SqlServer(database=database, max_connections=32).start()
            for database in self.databases
        ]
        self.pools = []
        self.data_dir = data_dir
        self.coordinator = self.open_coordinator()
        self.coordinator.execute(
            "CREATE TABLE acct (id INT PRIMARY KEY, balance INT)"
        )
        for i in range(10):
            self.coordinator.execute(
                "INSERT INTO acct VALUES (?, ?)", (i, 100)
            )

    def open_coordinator(self, **kwargs) -> ShardedDatabase:
        pools = [
            ConnectionPool(server.address[0], server.address[1], max_size=4)
            for server in self.servers
        ]
        self.pools.extend(pools)
        return ShardedDatabase(
            self.shard_map, pools, data_dir=self.data_dir, **kwargs
        )

    def stop(self) -> None:
        for pool in self.pools:
            try:
                pool.close()
            except Exception:
                pass
        for server in self.servers:
            try:
                server.kill()
            except Exception:
                pass
        for database in self.databases:
            database.close()


@pytest.fixture()
def wire(tmp_path):
    cluster = WireCluster(data_dir=str(tmp_path / "coord"))
    yield cluster
    cluster.coordinator.close()
    cluster.stop()


class TestShardDeathMidFanout:
    def test_fanout_raises_typed_error_with_no_partial_merge(self, wire) -> None:
        wire.servers[0].kill()
        with pytest.raises(ShardError, match="fan-out failed on shard 0"):
            wire.coordinator.execute("SELECT SUM(balance) FROM acct")

    def test_single_shard_route_to_survivor_still_works(self, wire) -> None:
        wire.servers[0].kill()
        # id=1 hashes to shard 1, which is alive.
        assert wire.coordinator.execute(
            "SELECT balance FROM acct WHERE id = 1"
        ).rows == [(100,)]


class TestCoordinatorCrashRecovery:
    def _prepare_on_both_shards(self, wire, gid: str, journal_commit: bool):
        """Drive phase 1 by hand, then vanish before phase 2 — the window a
        coordinator crash between PREPARE and COMMIT leaves behind."""
        sessions = []
        for server, delta in ((wire.servers[0], -40), (wire.servers[1], +40)):
            session = RemoteDatabase(server.address).session(autocommit=False)
            target = 0 if delta < 0 else 1  # ids 0 and 1 live on shards 0 and 1
            session.execute(
                "UPDATE acct SET balance = balance + ? WHERE id = ?",
                (delta, target),
            )
            session.prepare_txn(gid)
            sessions.append(session)
        if journal_commit:
            journal = DecisionJournal(wire.data_dir)
            journal.record(gid, "commit")
            journal.close()
        for session in sessions:
            session.close()  # sockets drop; the prepared batches survive

    def test_journaled_commit_resolved_on_restart(self, wire) -> None:
        before = wire.coordinator.execute("SELECT SUM(balance) FROM acct").rows
        wire.coordinator.close()
        self._prepare_on_both_shards(wire, "crashed-commit", journal_commit=True)
        restarted = wire.open_coordinator()
        try:
            # Construction replayed the journal and completed the commit on
            # both participants.
            assert restarted.stats()["in_doubt_committed"] == 2
            assert (
                restarted.execute("SELECT SUM(balance) FROM acct").rows == before
            )
            assert restarted.execute(
                "SELECT balance FROM acct WHERE id = 0"
            ).rows == [(60,)]
            assert restarted.prepared_gids() == []
        finally:
            restarted.close()

    def test_unjournaled_prepare_presumed_aborted(self, wire) -> None:
        before = wire.coordinator.execute("SELECT SUM(balance) FROM acct").rows
        wire.coordinator.close()
        self._prepare_on_both_shards(wire, "crashed-nodecision", journal_commit=False)
        restarted = wire.open_coordinator()
        try:
            assert restarted.stats()["in_doubt_aborted"] == 2
            assert (
                restarted.execute("SELECT SUM(balance) FROM acct").rows == before
            )
            assert restarted.execute(
                "SELECT balance FROM acct WHERE id = 0"
            ).rows == [(100,)]
        finally:
            restarted.close()


class TestStaleShardMap:
    def test_install_rejects_non_monotonic_version(self, wire) -> None:
        with pytest.raises(StaleShardMapError):
            wire.coordinator.install_map(wire.shard_map)  # same version
        with pytest.raises(StaleShardMapError):
            wire.coordinator.install_map(wire.shard_map.with_version(1))

    def test_install_rejects_shard_count_change(self, wire) -> None:
        grown = ShardMap(version=2, num_shards=3, tables={"acct": "id"})
        with pytest.raises(ShardError, match="shard count"):
            wire.coordinator.install_map(grown)

    def test_transaction_opened_under_old_map_aborts_at_commit(self, wire) -> None:
        session = wire.coordinator.session(autocommit=False)
        try:
            session.execute(
                "UPDATE acct SET balance = balance - 1 WHERE id = 0"
            )
            session.execute(
                "UPDATE acct SET balance = balance + 1 WHERE id = 1"
            )
            wire.coordinator.install_map(wire.shard_map.with_version(2))
            with pytest.raises(StaleShardMapError):
                session.commit()
        finally:
            session.close()
        # Nothing from the aborted transaction leaked.
        assert wire.coordinator.execute(
            "SELECT balance FROM acct WHERE id = 0"
        ).rows == [(100,)]
