"""The sharding coordinator against a single-node oracle.

Every test builds the same population twice — once in a plain engine,
once spread over embedded shard engines behind a
:class:`~repro.sharding.coordinator.ShardedDatabase` — and requires the
coordinator's answers to be byte-identical to the oracle's.
"""

from __future__ import annotations

import pytest

from repro.sharding import ShardMap, ShardedDatabase
from repro.sqlengine.engine import Database
from repro.sqlengine.errors import ShardError, SqlExecutionError

DDL = (
    "CREATE TABLE item (i_id INT PRIMARY KEY, i_title VARCHAR, "
    "i_stock INT, i_cost DOUBLE)",
    "CREATE TABLE customer (c_id INT PRIMARY KEY, c_uname VARCHAR UNIQUE, "
    "c_balance DOUBLE)",
    "CREATE TABLE country (co_id INT PRIMARY KEY, co_name VARCHAR)",
)

ITEMS = [(i, f"title-{i % 7}", 10 + i % 13, float(i % 5) + 0.5) for i in range(40)]
CUSTOMERS = [(i, f"user{i}", 100.0 + i) for i in range(20)]
COUNTRIES = [(1, "GBR"), (2, "USA"), (3, "JPN")]


def _populate(database) -> None:
    for sql in DDL:
        database.execute(sql)
    for i_id, title, stock, cost in ITEMS:
        database.execute(
            "INSERT INTO item VALUES (?, ?, ?, ?)", (i_id, title, stock, cost)
        )
    for c_id, uname, balance in CUSTOMERS:
        database.execute(
            "INSERT INTO customer VALUES (?, ?, ?)", (c_id, uname, balance)
        )
    for co_id, name in COUNTRIES:
        database.execute("INSERT INTO country VALUES (?, ?)", (co_id, name))


@pytest.fixture()
def oracle():
    database = Database()
    _populate(database)
    yield database
    database.close()


@pytest.fixture(params=[2, 3])
def cluster(request):
    shard_map = ShardMap(
        version=1,
        num_shards=request.param,
        tables={"item": "i_id", "customer": "c_id"},
    )
    shards = [Database() for _ in range(request.param)]
    coordinator = ShardedDatabase(shard_map, shards, name="test")
    _populate(coordinator)  # DDL broadcasts, rows route by key
    yield coordinator
    coordinator.close()
    for shard in shards:
        shard.close()


class TestReadEquivalence:
    QUERIES = [
        "SELECT i_title FROM item WHERE i_id = 7",
        "SELECT i_title, i_stock FROM item WHERE i_id = ?",
        "SELECT COUNT(*) FROM item",
        "SELECT COUNT(*), SUM(i_stock), MIN(i_cost), MAX(i_cost), AVG(i_cost) "
        "FROM item",
        "SELECT SUM(i_stock) AS total FROM item WHERE i_cost > 1.0",
        "SELECT AVG(i_cost) FROM item WHERE i_id > 1000",  # empty: NULL
        "SELECT COUNT(i_title) FROM item WHERE i_id < 0",  # empty: 0
        "SELECT i_id, i_title FROM item ORDER BY i_title, i_id DESC LIMIT 9",
        "SELECT i_id FROM item ORDER BY i_cost DESC, i_id LIMIT 5 OFFSET 3",
        "SELECT * FROM item ORDER BY i_id LIMIT 4",
        "SELECT DISTINCT i_title FROM item",
        "SELECT i_stock FROM item WHERE i_title = 'title-3'",
        "SELECT co_name FROM country WHERE co_id = 2",
        "SELECT i_title, co_name FROM item, country "
        "WHERE i_id = co_id ORDER BY i_id",
        "SELECT item.i_title, customer.c_uname FROM item, customer "
        "WHERE item.i_id = customer.c_id ORDER BY item.i_id LIMIT 6",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_byte_identical_to_single_node(self, oracle, cluster, sql) -> None:
        params = (11,) if "?" in sql else ()
        want = oracle.execute(sql, params)
        got = cluster.execute(sql, params)
        assert got.columns == want.columns
        assert sorted(map(repr, got.rows)) == sorted(map(repr, want.rows))
        if "ORDER BY" in sql:
            assert got.rows == want.rows  # order must match exactly


class TestWriteEquivalence:
    def test_keyed_update_and_delete(self, oracle, cluster) -> None:
        for database in (oracle, cluster):
            assert (
                database.execute(
                    "UPDATE item SET i_stock = i_stock + 5 WHERE i_id = 6"
                ).rowcount
                == 1
            )
            assert database.execute("DELETE FROM item WHERE i_id = 13").rowcount == 1
        assert (
            cluster.execute("SELECT SUM(i_stock) FROM item").rows
            == oracle.execute("SELECT SUM(i_stock) FROM item").rows
        )

    def test_broadcast_update_rowcount_sums_across_shards(
        self, oracle, cluster
    ) -> None:
        sql = "UPDATE item SET i_stock = i_stock + 1 WHERE i_cost > 2.0"
        assert cluster.execute(sql).rowcount == oracle.execute(sql).rowcount

    def test_global_broadcast_rowcount_not_multiplied(self, cluster) -> None:
        # The same row changes on every shard; one logical update.
        assert (
            cluster.execute("UPDATE country SET co_name = 'UK' WHERE co_id = 1")
            .rowcount
            == 1
        )
        assert cluster.execute(
            "SELECT co_name FROM country WHERE co_id = 1"
        ).rows == [("UK",)]

    def test_split_insert_places_every_row(self, cluster) -> None:
        result = cluster.execute(
            "INSERT INTO item (i_id, i_title, i_stock, i_cost) "
            "VALUES (100, 'a', 1, 1.0), (101, 'b', 2, 2.0), (102, 'c', 3, 3.0)"
        )
        assert result.rowcount == 3
        for i_id in (100, 101, 102):
            route = cluster.explain(f"SELECT * FROM item WHERE i_id = {i_id}")
            assert "shards=1" in route
            assert cluster.execute(
                "SELECT i_id FROM item WHERE i_id = ?", (i_id,)
            ).rows == [(i_id,)]


class TestTransactions:
    def test_cross_shard_transfer_commits_atomically(self, cluster) -> None:
        before = cluster.execute("SELECT SUM(c_balance) FROM customer").rows
        with cluster.session(autocommit=False) as session:
            session.execute(
                "UPDATE customer SET c_balance = c_balance - 25.0 WHERE c_id = 2"
            )
            session.execute(
                "UPDATE customer SET c_balance = c_balance + 25.0 WHERE c_id = 3"
            )
            session.commit()
        assert cluster.execute("SELECT SUM(c_balance) FROM customer").rows == before
        assert cluster.stats()["transactions_2pc"] >= 1

    def test_rollback_undoes_every_shard(self, cluster) -> None:
        before = cluster.execute(
            "SELECT c_id, c_balance FROM customer ORDER BY c_id"
        ).rows
        with cluster.session(autocommit=False) as session:
            session.execute("UPDATE customer SET c_balance = 0.0 WHERE c_id = 2")
            session.execute("UPDATE customer SET c_balance = 0.0 WHERE c_id = 3")
            session.rollback()
        assert (
            cluster.execute(
                "SELECT c_id, c_balance FROM customer ORDER BY c_id"
            ).rows
            == before
        )

    def test_read_your_writes_inside_transaction(self, cluster) -> None:
        with cluster.session(autocommit=False) as session:
            session.execute(
                "UPDATE customer SET c_balance = 1.25 WHERE c_id = 5"
            )
            assert session.execute(
                "SELECT c_balance FROM customer WHERE c_id = 5"
            ).rows == [(1.25,)]
            session.rollback()

    def test_nested_begin_rejected(self, cluster) -> None:
        with cluster.session(autocommit=False) as session:
            session.execute("BEGIN")
            with pytest.raises(SqlExecutionError, match="already in progress"):
                session.execute("BEGIN")
            session.rollback()

    def test_savepoints_rejected(self, cluster) -> None:
        with cluster.session(autocommit=False) as session:
            session.execute("UPDATE customer SET c_balance = 0.0 WHERE c_id = 2")
            with pytest.raises(ShardError, match="savepoint"):
                session.execute("SAVEPOINT sp1")
            session.rollback()

    def test_prepare_transaction_verb_rejected(self, cluster) -> None:
        session = cluster.session(autocommit=False)
        try:
            with pytest.raises(ShardError, match="not supported on a sharding"):
                session.prepare_transaction("gid-1")
        finally:
            session.close()


class TestExplain:
    def test_single_shard_route_shows_key(self, cluster) -> None:
        plan = cluster.explain("SELECT i_title FROM item WHERE i_id = 7")
        shard = cluster.shard_map.shard_of("item", 7)
        assert f"shards=1 (key=item.i_id=7 -> shard {shard})" in plan
        assert "shard" in plan and "plan:" in plan

    def test_fanout_route_shows_merge(self, cluster) -> None:
        plan = cluster.explain("SELECT SUM(i_stock) FROM item")
        assert f"shards={cluster.num_shards} (fanout+merge" in plan
        assert "re-aggregate partials on coordinator" in plan

    def test_ordered_fanout_shows_kway_merge(self, cluster) -> None:
        plan = cluster.explain("SELECT i_id FROM item ORDER BY i_id LIMIT 3")
        assert "ordered k-way merge" in plan

    def test_explain_statement_flows_through_execute(self, cluster) -> None:
        result = cluster.execute("EXPLAIN SELECT i_title FROM item WHERE i_id = 7")
        assert result.columns == ["query plan"]
        assert any("shards=1" in row[0] for row in result.rows)

    def test_parameterized_explain_reports_fanout(self, cluster) -> None:
        # EXPLAIN carries no bindings; a parameter key cannot pin a shard.
        plan = cluster.explain("SELECT i_title FROM item WHERE i_id = ?")
        assert "fanout" in plan


class TestStats:
    def test_route_and_statement_counters(self, cluster) -> None:
        baseline = cluster.stats()["statements_executed"]
        cluster.execute("SELECT i_title FROM item WHERE i_id = 7")
        cluster.execute("SELECT COUNT(*) FROM item")
        stats = cluster.stats()
        assert stats["statements_executed"] == baseline + 2
        assert stats["routes"]["single"] >= 1
        assert stats["routes"]["fanout"] >= 1
        assert stats["shard_map_version"] == 1
        assert stats["num_shards"] == cluster.num_shards
        assert stats["tables"] == 3
