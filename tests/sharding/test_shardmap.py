"""The shard catalog: hashing, placement and versioning."""

from __future__ import annotations

import zlib

import pytest

from repro.sharding import ShardMap, partition_hash
from repro.sqlengine.errors import ShardError


class TestPartitionHash:
    def test_integers_hash_to_themselves(self) -> None:
        assert partition_hash(0) == 0
        assert partition_hash(41) == 41
        assert partition_hash(-7) == -7

    def test_booleans_collapse_to_int(self) -> None:
        assert partition_hash(True) == 1
        assert partition_hash(False) == 0

    def test_strings_hash_by_crc32(self) -> None:
        assert partition_hash("alice") == zlib.crc32(b"alice")

    def test_null_and_float_keys_rejected(self) -> None:
        with pytest.raises(ShardError):
            partition_hash(None)
        with pytest.raises(ShardError):
            partition_hash(1.5)


class TestShardMap:
    def _map(self, num_shards: int = 2, version: int = 1) -> ShardMap:
        return ShardMap(
            version=version,
            num_shards=num_shards,
            tables={"item": "i_id", "Customer": "C_ID"},
        )

    def test_table_names_and_keys_case_folded(self) -> None:
        shard_map = self._map()
        assert shard_map.is_sharded("ITEM")
        assert shard_map.key_for("customer") == "c_id"
        assert not shard_map.is_sharded("country")
        assert shard_map.key_for("country") is None

    def test_placement_is_modulo_hash(self) -> None:
        shard_map = self._map(num_shards=3)
        for key in (0, 1, 2, 3, 17, "bob"):
            assert shard_map.shard_of("item", key) == partition_hash(key) % 3

    def test_single_shard_owns_everything(self) -> None:
        shard_map = self._map(num_shards=1)
        assert {shard_map.shard_of("item", k) for k in range(50)} == {0}

    def test_validation(self) -> None:
        with pytest.raises(ShardError):
            ShardMap(version=1, num_shards=0, tables={})
        with pytest.raises(ShardError):
            ShardMap(version=0, num_shards=1, tables={})

    def test_with_version_bumps_only_the_version(self) -> None:
        shard_map = self._map(version=3)
        bumped = shard_map.with_version(9)
        assert bumped.version == 9
        assert bumped.num_shards == shard_map.num_shards
        assert bumped.shard_of("item", 7) == shard_map.shard_of("item", 7)
