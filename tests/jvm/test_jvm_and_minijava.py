"""Tests for the mini-JVM substrate and the MiniJava compiler: assembly,
serialisation, verification, interpretation, Jimple conversion, bytecode
re-emission and the classfile rewriter."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import BytecodeError, CompileError
from repro.jvm import (
    BytecodeRewriter,
    ClassFile,
    Interpreter,
    MethodAssembler,
    Opcode,
    method_to_tac,
    tac_to_instructions,
    verify_method,
)
from repro.jvm.classfile import MethodInfo
from repro.jvm.instructions import Instruction
from repro.jvm.runtime import standard_runtime
from repro.jvm.tac_to_bytecode import tac_to_method
from repro.minijava import compile_source
from repro.minijava.parser import MiniJavaParser
from repro.orm import QuerySet
from tests.conftest import make_bank_db, make_bank_mapping

BANK_QUERIES_SOURCE = """
class BankQueries {
    @Query
    QuerySet<String> canadians(EntityManager em, String country) {
        QuerySet<String> result = new QuerySet<String>();
        for (Client c : em.allClient()) {
            if (c.getCountry().equals(country))
                result.add(c.getName());
        }
        return result;
    }

    @Query
    QuerySet<Office> westCoast(EntityManager em, QuerySet<Office> westcoast) {
        for (Office of : em.allOffice()) {
            if (of.getName().equals("Seattle"))
                westcoast.add(of);
            else if (of.getName().equals("LA"))
                westcoast.add(of);
        }
        return westcoast;
    }

    @Query
    QuerySet<Pair<Client, Account>> swissAccounts(EntityManager em) {
        QuerySet<Pair<Client, Account>> swiss = new QuerySet<Pair<Client, Account>>();
        for (Account a : em.allAccount()) {
            if (a.getHolder().getCountry().equals("Switzerland"))
                swiss.add(new Pair<Client, Account>(a.getHolder(), a));
        }
        return swiss;
    }

    double plainHelper(double x) {
        return x * 2.0 + 1.0;
    }
}
"""


# -- assembler / interpreter ------------------------------------------------------------------


def arithmetic_method() -> MethodInfo:
    assembler = MethodAssembler("addOne", ["x"])
    assembler.load("x")
    assembler.ldc(1)
    assembler.emit(Opcode.ADD)
    assembler.areturn()
    return assembler.finish()


class TestAssemblerAndInterpreter:
    def test_arithmetic_method_runs(self) -> None:
        interpreter = Interpreter()
        assert interpreter.run(arithmetic_method(), {"x": 41}) == 42

    def test_branching_with_labels(self) -> None:
        assembler = MethodAssembler("absValue", ["x"])
        assembler.load("x")
        assembler.ldc(0)
        assembler.emit(Opcode.CMPGE)
        assembler.ifne("positive")
        assembler.load("x")
        assembler.emit(Opcode.NEG)
        assembler.areturn()
        assembler.label("positive")
        assembler.load("x")
        assembler.areturn()
        method = assembler.finish()
        verify_method(method)
        interpreter = Interpreter()
        assert interpreter.run(method, {"x": -5}) == 5
        assert interpreter.run(method, {"x": 7}) == 7

    def test_missing_label_raises(self) -> None:
        assembler = MethodAssembler("bad", [])
        assembler.goto("nowhere")
        with pytest.raises(BytecodeError):
            assembler.finish()

    def test_missing_argument_raises(self) -> None:
        with pytest.raises(BytecodeError):
            Interpreter().run(arithmetic_method(), {})

    def test_equals_and_iterator_bridge(self) -> None:
        assembler = MethodAssembler("countMatching", ["items", "wanted"])
        assembler.ldc(0)
        assembler.store("count")
        assembler.load("items")
        assembler.invokevirtual("iterator", 0)
        assembler.store("it")
        assembler.goto("cond")
        assembler.label("body")
        assembler.load("it")
        assembler.invokeinterface("next", 0)
        assembler.store("e")
        assembler.load("e")
        assembler.load("wanted")
        assembler.invokevirtual("equals", 1)
        assembler.ifeq("cond")
        assembler.load("count")
        assembler.ldc(1)
        assembler.emit(Opcode.ADD)
        assembler.store("count")
        assembler.label("cond")
        assembler.load("it")
        assembler.invokeinterface("hasNext", 0)
        assembler.ifne("body")
        assembler.load("count")
        assembler.areturn()
        method = assembler.finish()
        verify_method(method)
        result = Interpreter().run(method, {"items": ["a", "b", "a"], "wanted": "a"})
        assert result == 2


class TestVerifier:
    def test_stack_underflow_detected(self) -> None:
        method = MethodInfo("bad", [], [Instruction(Opcode.POP), Instruction(Opcode.RETURN)])
        with pytest.raises(BytecodeError):
            verify_method(method)

    def test_invalid_branch_target_detected(self) -> None:
        method = MethodInfo("bad", [], [Instruction(Opcode.GOTO, 99)])
        with pytest.raises(BytecodeError):
            verify_method(method)

    def test_fall_off_end_detected(self) -> None:
        method = MethodInfo("bad", [], [Instruction(Opcode.LDC, 1)])
        with pytest.raises(BytecodeError):
            verify_method(method)

    def test_read_before_assignment_detected(self) -> None:
        method = MethodInfo(
            "bad", [], [Instruction(Opcode.LOAD, "x"), Instruction(Opcode.ARETURN)]
        )
        with pytest.raises(BytecodeError):
            verify_method(method)


class TestClassfileSerialisation:
    def test_round_trip_preserves_everything(self) -> None:
        classfile = compile_source(BANK_QUERIES_SOURCE)
        restored = ClassFile.from_bytes(classfile.to_bytes())
        assert set(restored.methods) == set(classfile.methods)
        for name, method in classfile.methods.items():
            other = restored.method(name)
            assert other.parameters == method.parameters
            assert other.annotations == method.annotations
            assert [repr(i) for i in other.instructions] == [
                repr(i) for i in method.instructions
            ]

    def test_bad_magic_rejected(self) -> None:
        with pytest.raises(BytecodeError):
            ClassFile.from_bytes(b"NOPE....")

    @given(
        value=st.one_of(
            st.integers(min_value=-(2**40), max_value=2**40),
            st.floats(allow_nan=False, allow_infinity=False),
            st.text(max_size=30),
            st.booleans(),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_ldc_operand_round_trips(self, value) -> None:
        assembler = MethodAssembler("constant", [])
        assembler.ldc(value)
        assembler.areturn()
        classfile = ClassFile("C")
        classfile.add_method(assembler.finish())
        restored = ClassFile.from_bytes(classfile.to_bytes())
        assert restored.method("constant").instructions[0].operand == value


class TestStackToTacRoundTrip:
    def test_tac_and_back_preserves_behaviour(self) -> None:
        classfile = compile_source(BANK_QUERIES_SOURCE)
        method = classfile.method("plainHelper")
        tac = method_to_tac(method)
        rebuilt = tac_to_method(tac)
        verify_method(rebuilt)
        interpreter = Interpreter()
        assert interpreter.run(method, {"x": 3.0}) == interpreter.run(rebuilt, {"x": 3.0})

    def test_query_method_tac_contains_iterator_protocol(self) -> None:
        classfile = compile_source(BANK_QUERIES_SOURCE)
        tac = method_to_tac(classfile.method("canadians"))
        text = "\n".join(repr(instruction) for instruction in tac.instructions)
        assert "hasNext" in text and "next" in text


# -- MiniJava ------------------------------------------------------------------------------------


class TestMiniJava:
    def test_parser_builds_expected_ast(self) -> None:
        declaration = MiniJavaParser(BANK_QUERIES_SOURCE).parse_class()
        assert declaration.name == "BankQueries"
        assert [m.name for m in declaration.methods] == [
            "canadians", "westCoast", "swissAccounts", "plainHelper",
        ]
        assert declaration.methods[0].annotations == ["Query"]

    def test_undeclared_variable_rejected(self) -> None:
        with pytest.raises(CompileError):
            compile_source(
                "class C { int broken(int x) { return y; } }"
            )

    def test_duplicate_declaration_rejected(self) -> None:
        with pytest.raises(CompileError):
            compile_source(
                "class C { int broken(int x) { int x = 1; return x; } }"
            )

    def test_missing_return_rejected(self) -> None:
        with pytest.raises(CompileError):
            compile_source("class C { int broken(int x) { int y = 1; } }")

    def test_syntax_error_reports_line(self) -> None:
        with pytest.raises(CompileError) as excinfo:
            compile_source("class C {\n int broken( { return 1; } }")
        assert "line 2" in str(excinfo.value)

    def test_query_annotation_lands_on_methodinfo(self) -> None:
        classfile = compile_source(BANK_QUERIES_SOURCE)
        assert classfile.method("canadians").is_query
        assert not classfile.method("plainHelper").is_query
        assert len(classfile.query_methods()) == 3

    def test_compiled_query_runs_unrewritten(self) -> None:
        bank = make_bank_db()
        classfile = compile_source(BANK_QUERIES_SOURCE)
        interpreter = Interpreter(standard_runtime())
        em = bank.begin_transaction()
        result = interpreter.run_class_method(
            classfile, "canadians", {"em": em, "country": "Canada"}
        )
        assert sorted(result.to_list()) == ["Alice", "Carol"]


# -- the bytecode rewriter -----------------------------------------------------------------------


class TestBytecodeRewriter:
    @pytest.fixture()
    def rewritten(self):
        classfile = compile_source(BANK_QUERIES_SOURCE)
        rewriter = BytecodeRewriter(make_bank_mapping())
        return classfile, rewriter.rewrite_classfile(classfile)

    def test_all_query_methods_are_rewritten(self, rewritten) -> None:
        _, result = rewritten
        assert sorted(result.rewritten_method_names) == [
            "canadians", "swissAccounts", "westCoast",
        ]

    def test_generated_sql_matches_paper_fig12(self, rewritten) -> None:
        _, result = rewritten
        sql = result.generated_sql("westCoast")[0]
        assert "FROM Office AS A" in sql
        assert "'Seattle'" in sql and "'LA'" in sql and " OR " in sql

    def test_rewritten_bytecode_contains_runtime_call_and_no_loop(self, rewritten) -> None:
        _, result = rewritten
        instructions = result.classfile.method("canadians").instructions
        text = " ".join(repr(instruction) for instruction in instructions)
        assert "queryllExecuteQuery" in text
        assert "hasNext" not in text

    def test_non_query_methods_untouched(self, rewritten) -> None:
        original, result = rewritten
        assert [repr(i) for i in result.classfile.method("plainHelper").instructions] == [
            repr(i) for i in original.method("plainHelper").instructions
        ]

    def test_rewritten_and_original_agree_on_results(self, rewritten) -> None:
        original, result = rewritten
        bank = make_bank_db()
        slow = Interpreter(standard_runtime())
        fast = Interpreter(standard_runtime())
        for method, arguments in [
            ("canadians", {"country": "Canada"}),
            ("canadians", {"country": "Switzerland"}),
            ("westCoast", {"westcoast": QuerySet()}),
            ("swissAccounts", {}),
        ]:
            slow_result = slow.run_class_method(
                original, method, {"em": bank.begin_transaction(), "westcoast": QuerySet(), **arguments}
                if method == "westCoast"
                else {"em": bank.begin_transaction(), **arguments},
            )
            fast_result = fast.run_class_method(
                result.classfile, method, {"em": bank.begin_transaction(), **arguments},
            )
            assert _normalise(slow_result) == _normalise(fast_result)

    def test_rewritten_query_issues_one_sql_statement(self, rewritten) -> None:
        _, result = rewritten
        bank = make_bank_db()
        interpreter = Interpreter(standard_runtime())
        em = bank.begin_transaction()
        before = bank.database.statements_executed
        interpreter.run_class_method(
            result.classfile, "canadians", {"em": em, "country": "Canada"}
        )
        assert bank.database.statements_executed == before + 1

    def test_rewrite_classfile_bytes_round_trip(self) -> None:
        classfile = compile_source(BANK_QUERIES_SOURCE)
        rewriter = BytecodeRewriter(make_bank_mapping())
        data, result = rewriter.rewrite_classfile_bytes(classfile.to_bytes())
        restored = ClassFile.from_bytes(data)
        assert "queryllExecuteQuery" in " ".join(
            repr(i) for i in restored.method("canadians").instructions
        )
        assert result.rewritten_method_names


def _normalise(queryset: QuerySet) -> list:
    def key(item):
        return repr(item)

    return sorted((repr(item) for item in queryset), key=str)
